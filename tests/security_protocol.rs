//! Adversarial integration tests: every cheat the paper's verifications
//! must catch, executed against the real node/ledger substrates.

use contractshard::consensus::pow;
use contractshard::core::assignment::MinerAssignment;
use contractshard::core::node::{Node, NodeError};
use contractshard::crypto::VrfPublicKey;
use contractshard::prelude::*;
use std::collections::BTreeMap;

const BITS: u32 = 8;

struct TestNet {
    nodes: Vec<Node>,
}

fn genesis(contracts: u32) -> State {
    let mut s = State::new();
    for u in 0..32 {
        s.fund_user(Address::user(u), Amount::from_coins(50));
    }
    for c in 0..contracts {
        s.register_contract(SmartContract::unconditional(
            ContractId::new(c),
            Address::user(500 + c as u64),
        ));
        s.fund_user(Address::user(500 + c as u64), Amount::ZERO);
    }
    s
}

/// One node per shard (contracts 0..n plus MaxShard), with keys actually
/// assigned to those shards by the epoch randomness.
fn build(contracts: u32) -> TestNet {
    let groups = contracts + 1;
    let base = 100 / groups;
    let extra = 100 % groups;
    let mut fractions: Vec<(ShardId, u32)> = (0..contracts)
        .map(|i| (ShardId::new(i), base + u32::from(i < extra)))
        .collect();
    fractions.push((ShardId::MAX_SHARD, base + u32::from(contracts < extra)));
    let assignment = MinerAssignment::new(sha256(b"sec-epoch"), &fractions);

    let mut wanted: Vec<ShardId> = (0..contracts).map(ShardId::new).collect();
    wanted.push(ShardId::MAX_SHARD);
    let mut roster: BTreeMap<MinerId, VrfPublicKey> = BTreeMap::new();
    let mut picks = Vec::new();
    let mut seed = 0u64;
    for (i, target) in wanted.iter().enumerate() {
        loop {
            let vrf = Vrf::from_seed(seed.to_be_bytes());
            seed += 1;
            if assignment.shard_of(vrf.public_key()) == *target {
                roster.insert(MinerId::new(i as u32), vrf.public_key());
                picks.push((*target, vrf));
                break;
            }
        }
    }
    let nodes = picks
        .into_iter()
        .enumerate()
        .map(|(i, (shard, vrf))| {
            Node::new(
                MinerId::new(i as u32),
                vrf,
                shard,
                genesis(contracts),
                assignment.clone(),
                roster.clone(),
                BITS,
                10,
            )
        })
        .collect();
    TestNet { nodes }
}

#[test]
fn cross_shard_double_spend_is_impossible_by_construction() {
    // User 1 only ever calls contract 0, so ONLY shard 0 pools its txs;
    // there is no second shard that could confirm a conflicting spend.
    let mut net = build(2);
    let spend_a = Transaction::call(
        Address::user(1),
        0,
        ContractId::new(0),
        Amount::from_coins(30),
        Amount::from_raw(5),
    );
    let spend_b = Transaction::call(
        Address::user(1),
        0,
        ContractId::new(0),
        Amount::from_coins(30),
        Amount::from_raw(9),
    );
    for node in net.nodes.iter_mut() {
        let _ = node.submit_transaction(spend_a.clone());
        let _ = node.submit_transaction(spend_b.clone());
    }
    // Only shard-0's node pooled them; both spends conflict, so a mined
    // block contains exactly one.
    assert_eq!(net.nodes[0].mempool_len(), 2);
    assert_eq!(net.nodes[1].mempool_len(), 0);
    let block = net.nodes[0]
        .mine_block(SimTime::from_secs(60))
        .expect("test-scale difficulty");
    assert_eq!(block.transactions.len(), 1);
    assert_eq!(
        block.transactions[0].fee,
        Amount::from_raw(9),
        "higher fee wins"
    );
    net.nodes[0].receive_block(block).unwrap();
    // The loser can never confirm anywhere: no other shard pools user 1.
    assert_eq!(
        net.nodes[0].chain().state().balance_of(Address::user(500)),
        Amount::from_coins(30)
    );
}

#[test]
fn forged_shard_id_rejected_by_every_receiver() {
    let mut net = build(2);
    net.nodes[0]
        .submit_transaction(Transaction::call(
            Address::user(2),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(5),
        ))
        .unwrap();
    let mut forged = net.nodes[0]
        .mine_block(SimTime::from_secs(60))
        .expect("test-scale difficulty");
    forged.header.shard = ShardId::new(1);
    pow::mine(&mut forged).unwrap();
    for node in net.nodes.iter_mut() {
        let err = node.receive_block(forged.clone()).unwrap_err();
        assert!(
            matches!(err, NodeError::ShardClaimMismatch { .. }),
            "{}: {err:?}",
            node.shard()
        );
    }
}

#[test]
fn insufficient_pow_rejected() {
    let mut net = build(1);
    let mut block = net.nodes[0]
        .mine_block(SimTime::from_secs(60))
        .expect("test-scale difficulty");
    // Tamper after mining: hash no longer meets the difficulty.
    block.header.timestamp = SimTime::from_secs(61);
    let err = net.nodes[0].receive_block(block).unwrap_err();
    assert!(
        matches!(
            err,
            NodeError::Ledger(contractshard::ledger::LedgerError::InsufficientWork { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn replayed_transaction_rejected_across_blocks() {
    let mut net = build(1);
    let tx = Transaction::call(
        Address::user(3),
        0,
        ContractId::new(0),
        Amount::from_coins(1),
        Amount::from_raw(5),
    );
    net.nodes[0].submit_transaction(tx.clone()).unwrap();
    let b1 = net.nodes[0]
        .mine_block(SimTime::from_secs(60))
        .expect("test-scale difficulty");
    net.nodes[0].receive_block(b1.clone()).unwrap();

    // An attacker re-broadcasts the same transaction in a hand-built block.
    let mut replay = Block::assemble(
        b1.hash(),
        2,
        net.nodes[0].shard(),
        MinerId::new(0),
        SimTime::from_secs(120),
        BITS,
        vec![tx],
    );
    pow::mine(&mut replay).unwrap();
    let err = net.nodes[0].receive_block(replay).unwrap_err();
    assert!(
        matches!(
            err,
            NodeError::Ledger(contractshard::ledger::LedgerError::BadNonce { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn condition_violating_contract_call_never_confirms() {
    // A conditional contract: pay user 9 only while their balance < 1 coin.
    let mut s = genesis(0);
    s.register_contract(SmartContract::conditional(
        ContractId::new(0),
        Address::user(9),
        Condition::BalanceBelow(Address::user(9), Amount::from_coins(1)),
    ));
    let tx_ok = Transaction::call(
        Address::user(1),
        0,
        ContractId::new(0),
        Amount::from_coins(2),
        Amount::from_raw(1),
    );
    // First call: user 9 holds 50 coins at genesis → condition fails.
    assert!(matches!(
        s.validate_transaction(&tx_ok),
        Err(contractshard::ledger::LedgerError::ConditionNotMet(_))
    ));
    // Drain user 9 below the threshold and the same call becomes valid.
    let drain = Transaction::direct(
        Address::user(9),
        0,
        Address::user(10),
        Amount::from_coins(50) - Amount::from_raw(10),
        Amount::from_raw(10),
    );
    s.apply_transaction(&drain, Address::SYSTEM).unwrap();
    assert!(s.validate_transaction(&tx_ok).is_ok());
}

#[test]
fn unification_rejects_non_equilibrium_blocks_fleet_wide() {
    // Five replicas hold the same broadcast; all five agree a sixth
    // miner's claimed selection is bogus.
    let params = UnifiedParameters::from_randomness(
        sha256(b"fleet-epoch"),
        (0..6).map(MinerId::new).collect(),
        GameInputs::Select {
            shard: ShardId::new(0),
            fees: (1..=30).collect(),
            config: SelectionConfig {
                capacity: 3,
                max_rounds: 500,
            },
        },
    );
    let truth = params.selection_outcome().expect("selection inputs");
    let foreign = (0..30)
        .find(|j| !truth.assignments[5].contains(j))
        .expect("some tx is not miner 5's");
    for _replica in 0..5 {
        let verdict = params.verify_selection_block(5, &[foreign]);
        assert!(verdict.is_err(), "a replica accepted the bogus block");
    }
}
