//! The paper's headline claims, asserted as integration tests (quick-mode
//! experiment settings; the full sweeps live in the `experiments` binary
//! and EXPERIMENTS.md).

use cshard_bench::experiments;

fn series<'a>(r: &'a cshard_bench::ExperimentResult, name: &str) -> &'a cshard_bench::Series {
    r.series
        .iter()
        .find(|s| s.name.contains(name))
        .unwrap_or_else(|| panic!("series {name} missing from {}", r.id))
}

#[test]
fn claim_throughput_grows_near_linearly_with_shards() {
    // "System throughput has increased by 7.2x with only nine shards."
    // Our simulator reproduces the winner and the linear growth; the
    // absolute factor lands lower (see EXPERIMENTS.md).
    let r = experiments::run("fig3a", true).unwrap();
    let pts = &series(&r, "our sharding").points;
    assert!(pts[8].1 > 2.5, "9-shard improvement {:.2}", pts[8].1);
    assert!(pts[8].1 > 2.0 * pts[1].1 / 1.55, "growth too flat");
}

#[test]
fn claim_merging_reduces_empty_blocks_substantially() {
    // "The number of empty blocks has been reduced by 90%."
    let r = experiments::run("fig3c", true).unwrap();
    let before = series(&r, "before").mean_y();
    let after = series(&r, "after").mean_y();
    assert!(
        after < before * 0.6,
        "reduction too weak: {after:.2} vs {before:.2}"
    );
}

#[test]
fn claim_our_merging_beats_randomized_merging() {
    // "11% higher throughput improvement … 59% more new shards … 4% less
    // empty blocks" — we assert the directions.
    let g = experiments::run("fig3g", true).unwrap();
    assert!(series(&g, "our").mean_y() >= series(&g, "randomized").mean_y());
    let f = experiments::run("fig3f", true).unwrap();
    assert!(series(&f, "our").mean_y() <= series(&f, "randomized").mean_y() * 1.05);
}

#[test]
fn claim_selection_improves_large_shard_throughput() {
    // "The system throughput is further improved by 3x" (average, Fig. 3h).
    let r = experiments::run("fig3h", true).unwrap();
    let pts = &series(&r, "equilibrium").points;
    assert!(pts[8].1 > 1.6, "9-miner improvement {:.2}", pts[8].1);
}

#[test]
fn claim_zero_cross_shard_communication() {
    // "Our sharding design has zero communication cost when validating
    // transactions, while the communication cost in ChainSpace correlates
    // with the number of transactions linearly."
    let r = experiments::run("fig4b", true).unwrap();
    assert!(series(&r, "our").points.iter().all(|&(_, y)| y == 0.0));
    let cs = &series(&r, "ChainSpace").points;
    assert!(cs.last().unwrap().1 > 100.0, "ChainSpace cost missing");
}

#[test]
fn claim_merging_communication_is_constant() {
    // "Our sharding design only incurs O(1) communication cost during the
    // merging process" — exactly 2 per participating shard.
    let r = experiments::run("fig4c", true).unwrap();
    for &(x, y) in &series(&r, "unification").points {
        if x > 0.0 {
            assert_eq!(y, 2.0, "at {x} small shards");
        }
    }
}

#[test]
fn claim_33_percent_resilience() {
    // "It resists adversaries who occupy at most 33% of the computation
    // power": both corruption probabilities stay below 1% at f = 0.33.
    let r = experiments::run("sec4d", true).unwrap();
    for s in &r.series {
        let at33 = s.points.last().unwrap();
        assert!(at33.1 < 0.01, "{} at f=0.33: {:.2e}", s.name, at33.1);
    }
}

#[test]
fn claim_large_scale_merging_near_optimal() {
    // "Our shard merging algorithm is near-optimal, with 20% throughput
    // loss on average" — ≥ 40% of optimal asserted at quick scale.
    let r = experiments::run("fig5a", true).unwrap();
    let ours = series(&r, "our").mean_y();
    let opt = series(&r, "optimal").mean_y();
    assert!(ours >= 0.4 * opt, "{ours:.1} vs optimal {opt:.1}");
    assert!(ours <= opt + 1e-9);
}
