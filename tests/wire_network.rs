//! Byte-level network integration: full nodes exchanging blocks as wire
//! bytes over a gossip graph — codec + gossip + node + chain working as
//! one stack, the closest this repository gets to a deployed network.

use contractshard::core::assignment::MinerAssignment;
use contractshard::core::node::{Node, NodeError};
use contractshard::crypto::VrfPublicKey;
use contractshard::ledger::codec;
use contractshard::network::{GossipNet, LatencyModel};
use contractshard::prelude::*;
use std::collections::BTreeMap;

const BITS: u32 = 8;

/// Builds `n` nodes **all in the same shard** (single-shard network):
/// fractions put 100% on shard 0, so every drawn key lands there.
fn same_shard_nodes(n: usize) -> Vec<Node> {
    same_shard_nodes_at(n, BITS)
}

fn same_shard_nodes_at(n: usize, bits: u32) -> Vec<Node> {
    let mut genesis = State::new();
    for u in 0..64 {
        genesis.fund_user(Address::user(u), Amount::from_coins(100));
    }
    genesis.register_contract(SmartContract::unconditional(
        ContractId::new(0),
        Address::user(500),
    ));
    genesis.fund_user(Address::user(500), Amount::ZERO);

    let fractions = vec![(ShardId::new(0), 100u32)];
    let assignment = MinerAssignment::new(sha256(b"wire-epoch"), &fractions);
    let mut roster: BTreeMap<MinerId, VrfPublicKey> = BTreeMap::new();
    let vrfs: Vec<Vrf> = (0..n as u64)
        .map(|i| Vrf::from_seed(i.to_be_bytes()))
        .collect();
    for (i, vrf) in vrfs.iter().enumerate() {
        roster.insert(MinerId::new(i as u32), vrf.public_key());
    }
    vrfs.into_iter()
        .enumerate()
        .map(|(i, vrf)| {
            Node::new(
                MinerId::new(i as u32),
                vrf,
                ShardId::new(0),
                genesis.clone(),
                assignment.clone(),
                roster.clone(),
                bits,
                10,
            )
        })
        .collect()
}

#[test]
fn block_gossips_as_bytes_and_every_node_accepts() {
    let mut nodes = same_shard_nodes(8);
    // Inject transactions at node 0 (the miner this round).
    for u in 1..=5 {
        nodes[0]
            .submit_transaction(Transaction::call(
                Address::user(u),
                0,
                ContractId::new(0),
                Amount::from_coins(1),
                Amount::from_raw(u),
            ))
            .unwrap();
    }
    let block = nodes[0]
        .mine_block(SimTime::from_secs(60))
        .expect("test-scale difficulty");
    assert_eq!(block.transactions.len(), 5);

    // Serialize once; gossip the bytes; every node decodes and validates.
    let bytes = codec::encode_block(&block);
    let net = GossipNet::random(8, 2, LatencyModel::wide_area(), 3);
    let deliveries = net.broadcast(0, block.hash().leading_u64());
    assert_eq!(deliveries.len(), 8);

    // Deliver in arrival order (origin first).
    let mut order: Vec<usize> = (0..8).collect();
    order.sort_by_key(|&i| deliveries[i]);
    for &i in &order {
        let decoded = codec::decode_block(&bytes).expect("wire bytes decode");
        assert_eq!(decoded.hash(), block.hash(), "hash survives the wire");
        nodes[i].receive_block(decoded).unwrap();
        assert_eq!(nodes[i].chain().height(), 1);
    }

    // All replicas reached the same state.
    let tips: std::collections::HashSet<Hash32> = nodes.iter().map(|n| n.chain().tip()).collect();
    assert_eq!(tips.len(), 1, "network converged on one tip");
}

#[test]
fn corrupted_wire_bytes_never_panic_and_never_apply() {
    // 18-bit PoW: the chance that any single byte flip still satisfies the
    // difficulty is ~100 · 2⁻¹⁸ ≈ 0.04%, so a corrupted block reliably
    // fails validation (at toy difficulties a lucky nonce flip could pass).
    let mut nodes = same_shard_nodes_at(2, 18);
    nodes[0]
        .submit_transaction(Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(9),
        ))
        .unwrap();
    let block = nodes[0]
        .mine_block(SimTime::from_secs(60))
        .expect("test-scale difficulty");
    let bytes = codec::encode_block(&block).to_vec();

    // Flip every byte one at a time: decode either fails cleanly or the
    // decoded block fails node validation (PoW/root/linkage); the chain
    // never advances with corrupted data, and nothing panics.
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xFF;
        if let Ok(decoded) = codec::decode_block(&corrupt) {
            match nodes[1].receive_block(decoded) {
                Ok(()) => panic!("corrupted block accepted (flip at byte {i})"),
                Err(NodeError::Ledger(_))
                | Err(NodeError::ShardClaimMismatch { .. })
                | Err(NodeError::UnknownPacker(_))
                | Err(NodeError::NotOurShard(_)) => {}
                Err(e) => panic!("unexpected rejection {e:?}"),
            }
        }
        assert_eq!(nodes[1].chain().height(), 0);
    }

    // The pristine bytes still work afterwards.
    nodes[1]
        .receive_block(codec::decode_block(&bytes).unwrap())
        .unwrap();
    assert_eq!(nodes[1].chain().height(), 1);
}

#[test]
fn chain_of_blocks_transported_over_the_wire() {
    let mut nodes = same_shard_nodes(3);
    // Three rounds of mining at rotating miners, all transported as bytes.
    for round in 0..3u64 {
        let miner_idx = (round % 3) as usize;
        nodes[miner_idx]
            .submit_transaction(Transaction::call(
                Address::user(10 + round),
                0,
                ContractId::new(0),
                Amount::from_coins(1),
                Amount::from_raw(round + 1),
            ))
            .unwrap();
        // Everyone else must also pool the tx (it is broadcast), or their
        // mempool misses it; simulate the tx broadcast too.
        for (i, node) in nodes.iter_mut().enumerate() {
            if i != miner_idx {
                let _ = node.submit_transaction(Transaction::call(
                    Address::user(10 + round),
                    0,
                    ContractId::new(0),
                    Amount::from_coins(1),
                    Amount::from_raw(round + 1),
                ));
            }
        }
        let block = nodes[miner_idx]
            .mine_block(SimTime::from_secs(60 * (round + 1)))
            .expect("test-scale difficulty");
        let bytes = codec::encode_block(&block);
        for node in nodes.iter_mut() {
            node.receive_block(codec::decode_block(&bytes).unwrap())
                .unwrap();
        }
    }
    for node in &nodes {
        assert_eq!(node.chain().height(), 3);
        assert_eq!(node.chain().confirmed_tx_ids().len(), 3);
        assert_eq!(node.mempool_len(), 0, "confirmed txs drained everywhere");
    }
}
