//! Cross-crate integration: the full pipeline from workload generation
//! through formation, merging, selection and simulation.

use contractshard::core::system::{MinerAllocation, SystemConfig};
use contractshard::prelude::*;

const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

#[test]
fn full_pipeline_is_deterministic_end_to_end() {
    let run = || {
        let w = Workload::with_small_shards(200, 9, 4, &[2, 5, 7, 3], FEES, 11);
        let cfg = SystemConfig {
            runtime: RuntimeConfig {
                seed: 11,
                ..RuntimeConfig::default()
            },
            merging: Some(MergingConfig {
                lower_bound: 12,
                ..MergingConfig::default()
            }),
            selection: Some(500),
            allocation: MinerAllocation::PerShard(3),
            placement: PlacementConfig::disabled(),
            epoch: 11,
        };
        let report = ShardingSystem::new(cfg).run(&w).expect("valid config");
        (
            report.run.completion,
            report.shard_sizes.clone(),
            report.run.total_blocks(),
            report.comm.total(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn every_transaction_is_confirmed_exactly_once() {
    let w = Workload::uniform_contracts(300, 5, FEES, 3);
    let report = ShardingSystem::testbed(RuntimeConfig {
        seed: 3,
        ..RuntimeConfig::default()
    })
    .run(&w)
    .expect("valid config");
    assert_eq!(report.run.total_txs(), 300);
    let confirmed: usize = report.run.shards.iter().map(|s| s.confirmed).sum();
    assert_eq!(confirmed, 300);
    // Shard sizes partition the workload.
    let partition: u64 = report.shard_sizes.iter().map(|&(_, s)| s).sum();
    assert_eq!(partition, 300);
}

#[test]
fn merging_and_selection_compose() {
    // Both mechanisms on at once: small shards merge, multi-miner shards
    // run the selection game, and the result still confirms everything
    // faster than Ethereum.
    let w = Workload::with_small_shards(400, 9, 5, &[3, 4, 5, 6, 7], FEES, 5);
    let runtime = RuntimeConfig {
        seed: 5,
        ..RuntimeConfig::default()
    };
    let report = ShardingSystem::new(SystemConfig {
        runtime: runtime.clone(),
        merging: Some(MergingConfig {
            lower_bound: 15,
            ..MergingConfig::default()
        }),
        selection: Some(500),
        allocation: MinerAllocation::PerShard(4),
        placement: PlacementConfig::disabled(),
        epoch: 5,
    })
    .run(&w)
    .expect("valid config");
    let merge = report.merge.expect("merging enabled");
    assert_eq!(merge.small_shards, 5);
    assert!(report.run.shards.iter().all(|s| s.confirmed == s.txs));

    let ethereum = simulate_ethereum(w.fees(), 1, &runtime).expect("valid config");
    let imp = throughput_improvement(&ethereum, &report.run);
    assert!(imp > 2.0, "combined system improvement {imp:.2}");
}

#[test]
fn ledger_validates_a_simulated_workload_for_real() {
    // The statistical runtime and the real ledger agree on validity: every
    // generated transaction applies cleanly in order on the real state
    // machine, and the resulting balances conserve value.
    let w = Workload::uniform_contracts(150, 4, FEES, 9);
    let mut state = w.genesis.clone();
    let supply = state.total_balance();
    for tx in &w.transactions {
        state
            .apply_transaction(tx, Address::miner(0))
            .expect("workloads are valid by construction");
    }
    assert_eq!(state.total_balance(), supply, "fees move, never vanish");
    // Contract invocation counters saw every call.
    let calls: u64 = (0..state.contract_count() as u32)
        .map(|c| state.contract(ContractId::new(c)).unwrap().invocations)
        .sum();
    assert_eq!(calls as usize, 150 - w.maxshard_tx_count());
}

#[test]
fn formation_plus_assignment_route_consistently() {
    // The shard a transaction lands in (formation) and the shard a miner
    // verifies for it (assignment) use the same id space: every active
    // shard receives a positive miner fraction and at least one miner in a
    // large roster.
    use contractshard::core::assignment::MinerAssignment;
    let w = Workload::uniform_contracts(200, 8, FEES, 2);
    let plan = ShardPlan::build(&w.transactions, &CallGraph::new());
    let fractions = plan.fractions_percent();
    let assignment = MinerAssignment::new(sha256(b"itest"), &fractions);
    let roster: Vec<(MinerId, _)> = (0..3000u64)
        .map(|i| {
            (
                MinerId::new(i as u32),
                Vrf::from_seed(i.to_be_bytes()).public_key(),
            )
        })
        .collect();
    let counts = assignment.shard_miner_counts(&roster);
    for (shard, _) in plan.shard_sizes() {
        assert!(
            counts.get(&shard).copied().unwrap_or(0) > 0,
            "{shard} received no miners"
        );
    }
    // Proportionality: the MaxShard (24/200 = 12%) gets ~12% of miners.
    let maxshard_share = counts[&ShardId::MAX_SHARD] as f64 / 3000.0;
    assert!(
        (maxshard_share - 0.12).abs() < 0.04,
        "MaxShard share {maxshard_share:.3}"
    );
}

#[test]
fn unified_parameters_run_the_system_games_identically_across_replicas() {
    // Simulate three miners receiving the same broadcast and driving their
    // own ShardingSystem instances: identical outputs (Sec. IV-C).
    let w = Workload::with_small_shards(200, 9, 3, &[4, 5, 6], FEES, 13);
    let mk = || {
        ShardingSystem::new(SystemConfig {
            runtime: RuntimeConfig {
                seed: 13,
                ..RuntimeConfig::default()
            },
            merging: Some(MergingConfig {
                lower_bound: 14,
                ..MergingConfig::default()
            }),
            selection: None,
            allocation: MinerAllocation::OnePerShard,
            placement: PlacementConfig::disabled(),
            epoch: 99,
        })
        .run(&w)
        .expect("valid config")
    };
    let a = mk();
    let b = mk();
    let c = mk();
    assert_eq!(a.shard_sizes, b.shard_sizes);
    assert_eq!(b.shard_sizes, c.shard_sizes);
    assert_eq!(a.run.completion, c.run.completion);
}
