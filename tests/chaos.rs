//! The chaos suite: fault injection must be surgical.
//!
//! Three contracts, end to end:
//!
//! 1. **Transparency** — a zero-fault [`FaultPlan`] is bit-invisible: the
//!    wrapped runtime reproduces the pre-fault golden fingerprints and all
//!    twelve checked-in quick-mode experiment JSONs byte-identically.
//! 2. **Recovery** — a crashed (or equivocating) epoch leader is replaced
//!    via the VRF failover ranking within one epoch interval, and the
//!    takeover verifies against public data.
//! 3. **Bounds** — the corrupted-shard fraction measured under an
//!    injected adversary stays within sampling noise of the Sec. IV-D
//!    analytic prediction.

use contractshard::prelude::*;
use std::path::Path;

/// Deterministic fee vector matching `tests/golden_fingerprints.rs`.
fn fees(n: usize, salt: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| 1 + (salt * 131 + i * 29) % 100)
        .collect()
}

/// The two `simulate`-shaped golden battery entries, run through the
/// fault harness with a zero-fault plan: the wrappers must reproduce the
/// pre-refactor fingerprints exactly (same hashes as
/// `tests/golden_fingerprints.rs` pins for the unwrapped runtime).
#[test]
fn zero_fault_plan_reproduces_the_golden_battery_fingerprints() {
    for &threads in &[1usize, 4] {
        let cfg = RuntimeConfig {
            seed: 13,
            scheduler: SchedulerConfig::new(threads),
            ..RuntimeConfig::default()
        };
        let specs: Vec<ShardSpec> = (0..9)
            .map(|s| ShardSpec::solo_greedy(ShardId::new(s), fees(12, s as u64)))
            .collect();
        let faulted = run_with_faults(&specs, &cfg, &FaultPlan::none(0)).expect("valid");
        assert_eq!(
            faulted.run.fingerprint().to_string(),
            "0x1411acaa59d31b418e6928c8b8aa5efb86c59ea1aa22a70f345d2ebbb5977272",
            "sharded_greedy golden diverged under a zero-fault wrapper (threads={threads})"
        );
        assert!(faulted.faults.is_clean());

        let cfg = RuntimeConfig {
            seed: 14,
            scheduler: SchedulerConfig::new(threads),
            ..RuntimeConfig::default()
        };
        let specs: Vec<ShardSpec> = (0..2)
            .map(|s| ShardSpec {
                shard: ShardId::new(s),
                fees: fees(30, 14 + s as u64),
                miners: 6,
                strategy: SelectionStrategy::Equilibrium { max_rounds: 64 },
            })
            .collect();
        let faulted = run_with_faults(&specs, &cfg, &FaultPlan::none(0)).expect("valid");
        assert_eq!(
            faulted.run.fingerprint().to_string(),
            "0x546f8363442551473becc93ae2f3bdaadcdd5d26694a51c9e4bfe7534dc6c257",
            "equilibrium golden diverged under a zero-fault wrapper (threads={threads})"
        );
    }
}

/// Every checked-in golden JSON regenerates byte-identically in quick
/// mode with the fault subsystem merged — the propagation-model rewrite
/// (Window/Latency/Partition) changed no observable schedule.
#[test]
fn all_twelve_golden_jsons_regenerate_byte_identically() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/golden");
    let mut ids: Vec<String> = std::fs::read_dir(&golden_dir)
        .expect("results/golden exists")
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_suffix(".json").map(str::to_string)
        })
        .collect();
    ids.sort();
    assert_eq!(ids.len(), 12, "expected the 12 golden JSONs, got {ids:?}");
    for id in &ids {
        let result = cshard_bench::experiments::run(id, true)
            .unwrap_or_else(|| panic!("golden id {id} is not a known experiment"));
        let expected = std::fs::read_to_string(golden_dir.join(format!("{id}.json")))
            .expect("golden file readable");
        assert_eq!(
            result.to_json(),
            expected,
            "{id}: quick-mode JSON diverged from results/golden/{id}.json"
        );
    }
}

/// A partition-mid-epoch plan through the lifecycle scheduler: the run —
/// including the fault accounting — is bit-identical at 1 worker, 4
/// workers and one-per-core, with a small per-turn event budget forcing
/// every shard through the `Running → Pending → Running` re-enqueue path.
/// Worker scheduling order must never leak into results.
#[test]
fn partitioned_runs_are_identical_across_scheduler_configs() {
    let specs: Vec<ShardSpec> = (0..6u32)
        .map(|s| ShardSpec {
            shard: ShardId::new(s),
            fees: fees(80, 31 + s as u64),
            miners: 2,
            strategy: SelectionStrategy::IdenticalGreedy,
        })
        .collect();
    let plan = FaultPlan::none(5)
        .with_partition(
            ShardId::new(2),
            SimTime::from_secs(90),
            SimTime::from_secs(400),
        )
        .with_partition(
            ShardId::new(4),
            SimTime::from_secs(30),
            SimTime::from_secs(200),
        );
    let run_at = |scheduler: SchedulerConfig| {
        let cfg = RuntimeConfig {
            seed: 23,
            scheduler,
            ..RuntimeConfig::default()
        };
        run_with_faults(&specs, &cfg, &plan).expect("valid faulted run")
    };
    let sequential = run_at(SchedulerConfig::sequential());
    let pooled = run_at(SchedulerConfig::new(4).with_turn_events(4));
    let per_core = run_at(SchedulerConfig::per_core().with_turn_events(4));
    assert_eq!(
        sequential.run.fingerprint(),
        pooled.run.fingerprint(),
        "partitioned run: sequential vs 4 workers"
    );
    assert_eq!(
        sequential.run.fingerprint(),
        per_core.run.fingerprint(),
        "partitioned run: sequential vs per-core"
    );
    assert_eq!(sequential.faults, pooled.faults);
    assert_eq!(sequential.faults, per_core.faults);
}

/// Leader crashes recover through the VRF ranking within one epoch: depth
/// k costs k broadcast timeouts, every takeover verifies from public
/// data, and the run is a pure function of its seed.
#[test]
fn leader_crash_recovers_via_vrf_failover_within_one_epoch() {
    let mut plan = LeaderFaultPlan::healthy(8, SimTime::from_secs(10), SimTime::from_secs(120));
    plan.crashed_ranks.insert(1, 1);
    plan.crashed_ranks.insert(3, 2);
    plan.crashed_ranks.insert(5, 3);
    plan.equivocators.insert(6);
    let report = run_leader_faults(20, 80, &plan, 0xC0FFEE).expect("valid plan");
    assert_eq!(report.stalled_epochs, 0);
    assert!(
        report.recovered_within(SimTime::from_secs(120)),
        "worst recovery {} exceeded the epoch interval",
        report.max_recovery_latency()
    );
    assert!(report.outcomes.iter().all(|o| o.failover_verified));
    assert_eq!(report.outcomes[3].failover_depth, 2);
    assert!(report.outcomes[6].equivocation_detected);
    assert!(
        report.outcomes[6].failover_depth >= 1,
        "equivocator demoted"
    );
    let replay = run_leader_faults(20, 80, &plan, 0xC0FFEE).expect("valid plan");
    assert_eq!(report, replay);
}

/// The corrupted-shard fraction measured under a quarter adversary lands
/// within sampling noise of `1 − shard_safety(n, f, Majority)` — the
/// empirical face of the paper's Eq. (3)–(6) corruption inputs.
#[test]
fn measured_corruption_stays_within_the_papers_analytic_bounds() {
    let m = measure_corruption(60, 0.25, 20, 100, 0xBEEF).expect("valid inputs");
    assert!(m.shard_epochs > 0);
    assert!(
        m.within_sigmas(4.0),
        "measured {} vs analytic {} (sigma {}, {} shard-epochs)",
        m.measured_corruption,
        m.analytic_corruption,
        m.sampling_sigma(),
        m.shard_epochs
    );
    // Uniform VRF lottery: malicious leadership tracks the realized f.
    let f = m.realized_fraction();
    let sigma = (f * (1.0 - f) / m.epochs as f64).sqrt();
    assert!(
        (m.measured_leader_fraction - f).abs() <= 4.0 * sigma + 1.0 / m.epochs as f64,
        "leader fraction {} vs f {f}",
        m.measured_leader_fraction
    );
    // And the endpoints pin exactly.
    let honest = measure_corruption(60, 0.0, 5, 80, 1).expect("valid");
    assert_eq!(honest.measured_corruption, 0.0);
    let byzantine = measure_corruption(20, 1.0, 3, 60, 1).expect("valid");
    assert_eq!(byzantine.measured_corruption, 1.0);
}

/// Kitchen-sink fault run: crash + recovery, partition, deadline — the
/// machinery fires, the accounting matches the plan, and the run still
/// confirms its workload after healing.
#[test]
fn faulted_shards_heal_and_finish_their_workload() {
    let specs: Vec<ShardSpec> = (0..3u32)
        .map(|s| ShardSpec {
            shard: ShardId::new(s),
            fees: fees(120, s as u64),
            miners: 2,
            strategy: SelectionStrategy::IdenticalGreedy,
        })
        .collect();
    let cfg = RuntimeConfig {
        seed: 77,
        ..RuntimeConfig::default()
    };
    // Crash and recovery must land inside the shard's active lifetime: a
    // control scheduled past completion never fires (the run is over).
    let plan = FaultPlan::none(9)
        .with_crash(
            ShardId::new(0),
            0,
            SimTime::from_secs(60),
            Some(SimTime::from_secs(240)),
        )
        .with_partition(
            ShardId::new(1),
            SimTime::from_secs(50),
            SimTime::from_secs(300),
        );
    let run = run_with_faults(&specs, &cfg, &plan).expect("valid");
    assert_eq!(run.faults.total_crashes(), 1);
    assert_eq!(run.faults.total_recoveries(), 1);
    assert_eq!(
        run.faults.max_recovery_latency(),
        Some(SimTime::from_secs(180)),
        "downtime = recover_at − crash_at"
    );
    assert!(
        run.faults.total_suppressed() > 0,
        "crashed miner kept mining?"
    );
    assert_eq!(run.faults.timed_out_shards(), 0);
    assert_eq!(
        run.unconfirmed_fraction(),
        0.0,
        "faults healed, workload done"
    );
}

/// The epoch layer rejects duplicate leader broadcasts as equivocation
/// only when the content differs (digest mismatch), never on gossip
/// duplicates of identical parameters.
#[test]
fn equivocation_needs_conflicting_content() {
    // Digest sensitivity is pinned in cshard-games; here just check the
    // epoch path accepts a run where the "equivocator" never conflicts.
    let plan = LeaderFaultPlan::healthy(3, SimTime::from_secs(5), SimTime::from_secs(60));
    let report = run_leader_faults(6, 40, &plan, 3).expect("valid");
    assert!(report.outcomes.iter().all(|o| !o.equivocation_detected));
}
