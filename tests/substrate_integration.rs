//! Integration across the newer substrates: snapshots, traces, the compact
//! classifier, epochs and proportional allocation working together.

use contractshard::core::system::{MinerAllocation, SystemConfig};
use contractshard::ledger::{CompactClassifier, StateSnapshot};
use contractshard::prelude::*;
use contractshard::workload::{mainnet_shaped, Trace};

const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

#[test]
fn snapshot_sync_joins_a_running_shard() {
    // A shard runs for a while; a new miner syncs from a snapshot and can
    // validate the next block without replaying history.
    let w = Workload::uniform_contracts(40, 1, FEES, 1);
    let mut state = w.genesis.clone();
    for tx in &w.transactions[..20] {
        state.apply_transaction(tx, Address::miner(0)).unwrap();
    }

    // Checkpoint: snapshot + digest travel to the newcomer.
    let snap = StateSnapshot::capture(&state);
    let digest = snap.digest();
    let json = snap.to_json();

    // Newcomer restores and verifies the commitment.
    let received = StateSnapshot::from_json(&json).unwrap();
    assert_eq!(received.digest(), digest, "commitment pins the snapshot");
    let mut synced = received.restore();

    // Both the original and the synced node apply the remaining txs and
    // end in identical states.
    for tx in &w.transactions[20..] {
        state.apply_transaction(tx, Address::miner(0)).unwrap();
        synced.apply_transaction(tx, Address::miner(0)).unwrap();
    }
    assert_eq!(
        StateSnapshot::capture(&state).digest(),
        StateSnapshot::capture(&synced).digest()
    );
}

#[test]
fn trace_export_replay_runs_identically_through_the_system() {
    let original = Workload::with_small_shards(150, 6, 2, &[3, 4], FEES, 2);
    let replayed = Trace::from_workload(&original).replay();

    let run = |w: &Workload| {
        ShardingSystem::testbed(RuntimeConfig {
            seed: 5,
            ..RuntimeConfig::default()
        })
        .run(w)
        .expect("valid config")
    };
    let a = run(&original);
    let b = run(&replayed);
    assert_eq!(a.shard_sizes, b.shard_sizes, "formation identical");
    assert_eq!(a.run.completion, b.run.completion, "simulation identical");
}

#[test]
fn compact_classifier_agrees_with_callgraph_on_real_workloads() {
    let w = mainnet_shaped(3_000, 30, 0.15, FEES, 3);
    let mut graph = CallGraph::new();
    let mut compact = CompactClassifier::new();
    graph.observe_all(w.transactions.iter());
    compact.observe_all(w.transactions.iter());
    for tx in &w.transactions {
        assert_eq!(
            graph.isolable_contract(tx),
            compact.isolable_contract(tx),
            "divergence on {tx:?}"
        );
    }
    assert_eq!(graph.sender_count(), compact.sender_count());
}

#[test]
fn mainnet_shaped_workload_through_the_full_system() {
    let w = mainnet_shaped(1_000, 16, 0.1, FEES, 4);
    let report = ShardingSystem::new(SystemConfig {
        runtime: RuntimeConfig {
            seed: 4,
            mean_block_interval: SimTime::from_millis(500),
            propagation: PropagationModel::Window(SimTime::from_millis(500)),
            ..RuntimeConfig::default()
        },
        merging: Some(MergingConfig {
            lower_bound: 10,
            ..MergingConfig::default()
        }),
        selection: Some(500),
        allocation: MinerAllocation::Proportional { total: 40 },
        placement: PlacementConfig::disabled(),
        epoch: 4,
    })
    .run(&w)
    .expect("valid config");
    assert_eq!(report.run.total_txs(), 1_000);
    assert!(report.run.shards.iter().all(|s| s.confirmed == s.txs));
    // The dominant contract shard exists and is the biggest.
    let max_size = report.shard_sizes.iter().map(|&(_, s)| s).max().unwrap();
    assert!(max_size > 1_000 / 16);
}

#[test]
fn epoch_manager_drives_node_verification() {
    use contractshard::core::epoch::EpochManager;
    // The epoch outcome's assignment rule is exactly what nodes verify
    // block shard-claims against.
    let mut mgr = EpochManager::with_miner_count(40);
    let w = Workload::uniform_contracts(100, 3, FEES, 6);
    let out = mgr.run_epoch(&w.transactions);
    for (id, shard) in out.shard_of.iter().take(10) {
        let pk = mgr.public_key(*id).unwrap();
        assert!(out.assignment.verify_claim(pk, *shard));
        // A forged claim to any other shard fails.
        for other in out.assignment.shards() {
            if other != shard {
                assert!(!out.assignment.verify_claim(pk, *other));
            }
        }
    }
}
