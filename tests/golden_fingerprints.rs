//! Golden run-report fingerprints captured *before* the event-driven
//! runtime refactor.
//!
//! Each entry pins the full `RunReport::fingerprint()` (per-shard txs,
//! confirmations, block/empty/stale counts, completion times and event
//! counts) of one representative configuration. The unified
//! `ProtocolDriver` runtime must reproduce every one of these hashes
//! byte-for-byte, at any thread count: `PropagationModel::Window` is the
//! legacy conflict-window semantics and schedules no extra events.

use contractshard::prelude::*;

/// Deterministic fee vector without touching any RNG stream.
fn fees(n: usize, salt: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| 1 + (salt * 131 + i * 29) % 100)
        .collect()
}

fn workload(txs: usize, contracts: usize, seed: u64) -> Workload {
    let dist = FeeDistribution::Uniform { lo: 1, hi: 100 };
    Workload::uniform_contracts(txs, contracts, dist, seed)
}

/// Every configuration in the battery, run at the given thread count.
fn battery(threads: usize) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();

    // Vanilla Ethereum, single miner: the Table I baseline shape.
    let cfg = RuntimeConfig {
        seed: 11,
        scheduler: SchedulerConfig::new(threads),
        ..RuntimeConfig::default()
    };
    out.push((
        "ethereum_solo",
        simulate_ethereum(fees(60, 11), 1, &cfg)
            .expect("valid config")
            .fingerprint()
            .to_string(),
    ));

    // Vanilla Ethereum, five miners: exercises the contended-stale path.
    let cfg = RuntimeConfig {
        seed: 12,
        scheduler: SchedulerConfig::new(threads),
        ..RuntimeConfig::default()
    };
    out.push((
        "ethereum_contended",
        simulate_ethereum(fees(40, 12), 5, &cfg)
            .expect("valid config")
            .fingerprint()
            .to_string(),
    ));

    // Nine independent greedy shards (the Fig. 3 sharded shape).
    let cfg = RuntimeConfig {
        seed: 13,
        scheduler: SchedulerConfig::new(threads),
        ..RuntimeConfig::default()
    };
    let specs: Vec<ShardSpec> = (0..9)
        .map(|s| ShardSpec::solo_greedy(ShardId::new(s), fees(12, s as u64)))
        .collect();
    out.push((
        "sharded_greedy",
        simulate(&specs, &cfg)
            .expect("valid config")
            .fingerprint()
            .to_string(),
    ));

    // Equilibrium selection with competing miners (Alg. 2 path).
    let cfg = RuntimeConfig {
        seed: 14,
        scheduler: SchedulerConfig::new(threads),
        ..RuntimeConfig::default()
    };
    let specs: Vec<ShardSpec> = (0..2)
        .map(|s| ShardSpec {
            shard: ShardId::new(s),
            fees: fees(30, 14 + s as u64),
            miners: 6,
            strategy: SelectionStrategy::Equilibrium { max_rounds: 64 },
        })
        .collect();
    out.push((
        "equilibrium",
        simulate(&specs, &cfg)
            .expect("valid config")
            .fingerprint()
            .to_string(),
    ));

    // The end-to-end system: formation + allocation + runtime.
    let report = ShardingSystem::builder()
        .shards(9)
        .seed(15)
        .threads(threads)
        .build()
        .expect("valid config")
        .run(&workload(120, 8, 15))
        .expect("run completes");
    out.push(("system_default", report.run.fingerprint().to_string()));

    // Merging + proportional miners + capped idle drain in one run.
    let report = ShardingSystem::builder()
        .shards(12)
        .seed(16)
        .threads(threads)
        .merging(40)
        .total_miners(24)
        .empty_block_window(SimTime::from_secs(212))
        .conflict_window(SimTime::from_secs(30))
        .build()
        .expect("valid config")
        .run(&workload(150, 11, 16))
        .expect("run completes");
    out.push(("system_merged", report.run.fingerprint().to_string()));

    out
}

/// Captured from the pre-refactor implementation (commit 943f28c).
const GOLDEN: &[(&str, &str)] = &[
    (
        "ethereum_solo",
        "0x5ce2b4367543d1fba20079263b69ca1f93b54500988e698d81efb6b71b402524",
    ),
    (
        "ethereum_contended",
        "0xb066618d80c6cb15711c378af0052504f32e26bd706a3f84c6a4c8ef68cbcedc",
    ),
    (
        "sharded_greedy",
        "0x1411acaa59d31b418e6928c8b8aa5efb86c59ea1aa22a70f345d2ebbb5977272",
    ),
    (
        "equilibrium",
        "0x546f8363442551473becc93ae2f3bdaadcdd5d26694a51c9e4bfe7534dc6c257",
    ),
    (
        "system_default",
        "0xffcf2ba81d1c1801d9477b10f6b388d23b7d00876c0d05d36e966f39473bc916",
    ),
    (
        "system_merged",
        "0xb8c0cce5161146aa5288302c0c928b70261ec648976ce4c63506c768eb5e5e66",
    ),
];

#[test]
fn fingerprints_match_pre_refactor_goldens() {
    for &threads in &[1usize, 4, 0] {
        let got = battery(threads);
        assert_eq!(got.len(), GOLDEN.len());
        for ((name, hash), (gname, ghash)) in got.iter().zip(GOLDEN) {
            assert_eq!(name, gname);
            assert_eq!(
                hash,
                ghash,
                "{name} (threads={threads}) diverged from pre-refactor golden\n\
                 all actuals: {:#?}",
                battery(threads)
            );
        }
    }
}
