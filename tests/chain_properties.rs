//! Property tests over the chain's fork behaviour: random block DAGs must
//! preserve the ledger invariants no matter how adversarially branches are
//! interleaved.

use contractshard::prelude::*;
use proptest::prelude::*;

fn genesis() -> State {
    let mut s = State::new();
    for u in 0..8 {
        s.fund_user(Address::user(u), Amount::from_coins(1000));
    }
    s.register_contract(SmartContract::unconditional(
        ContractId::new(0),
        Address::user(99),
    ));
    s
}

/// A scripted operation: extend the block at index `parent_pick` (modulo
/// the number of known blocks, 0 = genesis) with `tx_user`'s next valid
/// transaction (nonce derived from that branch's state).
#[derive(Clone, Debug)]
struct Op {
    parent_pick: usize,
    tx_user: u64,
    fee: u64,
    empty: bool,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<usize>(), 0u64..8, 1u64..100, any::<bool>()).prop_map(
            |(parent_pick, tx_user, fee, empty)| Op {
                parent_pick,
                tx_user,
                fee,
                empty,
            },
        ),
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_forks_preserve_every_invariant(ops in arb_ops()) {
        let mut chain = Chain::new(ShardId::new(0), 0, genesis());
        // Known block hashes with their heights; genesis is ZERO at 0.
        let mut known: Vec<(Hash32, u64)> = vec![(Hash32::ZERO, 0)];
        let mut accepted = 0usize;

        for op in &ops {
            let (parent, parent_height) = known[op.parent_pick % known.len()];
            // Build the branch-consistent transaction (nonce from the
            // parent state).
            let txs = if op.empty {
                vec![]
            } else {
                let state = chain.state_at(parent);
                let sender = Address::user(op.tx_user);
                vec![Transaction::call(
                    sender,
                    state.nonce_of(sender),
                    ContractId::new(0),
                    Amount::from_coins(1),
                    Amount::from_raw(op.fee),
                )]
            };
            let block = Block::assemble(
                parent,
                parent_height + 1,
                ShardId::new(0),
                MinerId::new((op.tx_user % 4) as u32),
                SimTime::from_millis((accepted as u64 + 1) * 1000),
                0,
                txs,
            );
            let hash = block.hash();
            match chain.accept_block(block) {
                Ok(()) => {
                    known.push((hash, parent_height + 1));
                    accepted += 1;
                }
                Err(e) => {
                    // The only legitimate rejection in this script is a
                    // duplicate (same parent + same tx + same timestamp can
                    // recur when ops repeat).
                    prop_assert!(
                        matches!(e, contractshard::ledger::LedgerError::DuplicateBlock(_)),
                        "unexpected rejection: {e}"
                    );
                }
            }

            // Invariant 1: the tip is a maximal-height block.
            let max_height = known.iter().map(|&(_, h)| h).max().unwrap();
            prop_assert_eq!(chain.height(), max_height);

            // Invariant 2: canonical chain links genesis → tip with
            // heights 1..=tip.
            let canonical = chain.canonical_blocks();
            prop_assert_eq!(canonical.len() as u64, chain.height());
            let mut prev = Hash32::ZERO;
            for (i, b) in canonical.iter().enumerate() {
                prop_assert_eq!(b.header.parent, prev);
                prop_assert_eq!(b.header.height, i as u64 + 1);
                prev = b.hash();
            }
            if let Some(last) = canonical.last() {
                prop_assert_eq!(last.hash(), chain.tip());
            }

            // Invariant 3: replaying the canonical chain from genesis
            // reproduces the cached tip state (value conservation + nonces).
            let mut replay = genesis();
            for b in &canonical {
                replay.apply_block(b).expect("canonical blocks are valid");
            }
            prop_assert_eq!(replay.total_balance(), chain.state().total_balance());
            for u in 0..8 {
                prop_assert_eq!(
                    replay.nonce_of(Address::user(u)),
                    chain.state().nonce_of(Address::user(u))
                );
            }

            // Invariant 4: conservation — balances = genesis + minted.
            let base = genesis().total_balance();
            prop_assert_eq!(
                chain.state().total_balance(),
                base + chain.state().minted()
            );
        }
    }
}
