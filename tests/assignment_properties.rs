//! Property tests for miner assignment: any valid fraction vector must
//! tile the group space, assign every key somewhere, verify honestly and
//! reject every forged claim.

use contractshard::core::assignment::MinerAssignment;
use contractshard::prelude::*;
use proptest::prelude::*;

/// Arbitrary fraction vectors: 1..=8 shards with positive percentages
/// summing to exactly 100 (largest-remainder style normalisation).
fn arb_fractions() -> impl Strategy<Value = Vec<(ShardId, u32)>> {
    proptest::collection::vec(1u32..50, 1..8).prop_map(|weights| {
        let total: u32 = weights.iter().sum();
        let mut out: Vec<(ShardId, u32)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (ShardId::new(i as u32), w * 100 / total))
            .collect();
        let assigned: u32 = out.iter().map(|&(_, p)| p).sum();
        out[0].1 += 100 - assigned; // dump the remainder on shard 0
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_key_lands_in_exactly_one_verifiable_shard(
        fractions in arb_fractions(),
        randomness_seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let assignment = MinerAssignment::new(
            sha256(randomness_seed.to_be_bytes()),
            &fractions,
        );
        for key in keys {
            let pk = Vrf::from_seed(key.to_be_bytes()).public_key();
            let shard = assignment.shard_of(pk);
            // The shard is one of the declared shards…
            prop_assert!(assignment.shards().contains(&shard));
            // …with a positive fraction (zero-fraction shards get nobody).
            let pct = fractions.iter().find(|&&(s, _)| s == shard).unwrap().1;
            prop_assert!(pct > 0, "{shard} has 0% but got a miner");
            // The honest claim verifies; every other claim fails.
            prop_assert!(assignment.verify_claim(pk, shard));
            for &other in assignment.shards() {
                if other != shard {
                    prop_assert!(!assignment.verify_claim(pk, other));
                }
            }
        }
    }

    #[test]
    fn assignment_distribution_tracks_fractions(
        fractions in arb_fractions(),
        randomness_seed in any::<u64>(),
    ) {
        let assignment = MinerAssignment::new(
            sha256(randomness_seed.to_be_bytes()),
            &fractions,
        );
        let roster: Vec<(MinerId, _)> = (0..1500u64)
            .map(|i| {
                (
                    MinerId::new(i as u32),
                    Vrf::from_seed((i ^ randomness_seed).to_be_bytes()).public_key(),
                )
            })
            .collect();
        let counts = assignment.shard_miner_counts(&roster);
        let total: usize = counts.values().sum();
        prop_assert_eq!(total, 1500);
        for &(shard, pct) in &fractions {
            let got = *counts.get(&shard).unwrap_or(&0) as f64 / 1500.0;
            let want = pct as f64 / 100.0;
            // Binomial noise bound: generous 6 sigma at n=1500.
            let sigma = (want * (1.0 - want) / 1500.0).sqrt();
            prop_assert!(
                (got - want).abs() <= 6.0 * sigma + 0.01,
                "{shard}: got {got:.3}, want {want:.3}"
            );
        }
    }
}
