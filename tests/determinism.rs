//! Parallel execution is bit-identical to sequential execution.
//!
//! Each shard's RNG stream is derived from `(master_seed, shard_id)` via
//! the crypto PRF, so a shard's trajectory does not depend on which thread
//! runs it, in which order, or how many other shards share the run. These
//! tests pin that property across seeds, scales and thread counts by
//! comparing full run fingerprints (see `RunReport::fingerprint`).

use contractshard::prelude::*;

const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

fn report_for(seed: u64, shards: usize, threads: usize) -> SystemReport {
    let contracts = shards - 1; // plus the MaxShard
    let w = Workload::uniform_contracts(4 * shards, contracts, FEES, seed);
    ShardingSystem::builder()
        .shards(shards)
        .seed(seed)
        .threads(threads)
        .build()
        .expect("valid builder config")
        .run(&w)
        .expect("run completes")
}

#[test]
fn parallel_matches_sequential_across_seeds_and_scales() {
    for &seed in &[1u64, 42, 1337] {
        for &shards in &[9usize, 100] {
            let sequential = report_for(seed, shards, 1);
            let pooled = report_for(seed, shards, 4);
            let auto = report_for(seed, shards, 0);

            assert_eq!(
                sequential.run.fingerprint(),
                pooled.run.fingerprint(),
                "seed {seed}, {shards} shards: 1 thread vs 4 threads"
            );
            assert_eq!(
                sequential.run.fingerprint(),
                auto.run.fingerprint(),
                "seed {seed}, {shards} shards: 1 thread vs all cores"
            );

            // The fingerprint covers the deterministic fields; spot-check
            // the headline numbers directly too.
            assert_eq!(sequential.run.completion, pooled.run.completion);
            assert_eq!(sequential.run.total_blocks(), pooled.run.total_blocks());
            assert_eq!(sequential.run.total_txs(), pooled.run.total_txs());
            assert_eq!(sequential.shard_sizes, pooled.shard_sizes);
            for (s, p) in sequential.run.shards.iter().zip(&pooled.run.shards) {
                assert_eq!(s.shard, p.shard);
                assert_eq!(s.confirmed, p.confirmed);
                assert_eq!(s.blocks, p.blocks);
                assert_eq!(s.empty_blocks, p.empty_blocks);
                assert_eq!(s.completion, p.completion);
                assert_eq!(s.events_processed, p.events_processed);
            }
        }
    }
}

#[test]
fn shard_streams_do_not_depend_on_peer_shards() {
    // A shard's trajectory is a function of (seed, shard id, injected
    // transactions) only: the stream derivation never mixes in the peer
    // set, so the same spec produces the same chain whether it runs next
    // to 8 peers or 99. Run the identical first 9 specs in both systems.
    let mk_spec = |s: u32| {
        let fees: Vec<u64> = (0..20)
            .map(|i| 1 + (s as u64 * 37 + i * 13) % 100)
            .collect();
        ShardSpec::solo_greedy(ShardId::new(s), fees)
    };
    let cfg = RuntimeConfig {
        seed: 42,
        scheduler: SchedulerConfig::per_core(),
        ..RuntimeConfig::default()
    };
    let small: Vec<ShardSpec> = (0..9).map(mk_spec).collect();
    let large: Vec<ShardSpec> = (0..100).map(mk_spec).collect();
    let small_run = simulate(&small, &cfg).expect("valid config");
    let large_run = simulate(&large, &cfg).expect("valid config");
    // Block totals include the idle-drain phase, which runs until the
    // *global* completion and so legitimately differs between the two
    // systems; the confirmation trajectory itself must not.
    for (s, l) in small_run.shards.iter().zip(&large_run.shards) {
        assert_eq!(s.shard, l.shard);
        assert_eq!(
            s.completion, l.completion,
            "{} diverged across system sizes",
            s.shard
        );
        assert_eq!(s.confirmed, l.confirmed);
    }
}

/// Fault injection preserves the bit-identity contract: a faulted run is
/// a pure function of `(shards, config, plan)` — the same at any thread
/// count, and across replays — including the fault accounting itself.
#[test]
fn faulted_runs_are_bit_identical_across_thread_counts() {
    let specs: Vec<ShardSpec> = (0..6u32)
        .map(|s| ShardSpec {
            shard: ShardId::new(s),
            fees: (1..=40 + s as u64).collect(),
            miners: 2,
            strategy: SelectionStrategy::IdenticalGreedy,
        })
        .collect();
    let plan = FaultPlan::none(21)
        .with_crash(
            ShardId::new(0),
            1,
            SimTime::from_secs(90),
            Some(SimTime::from_secs(500)),
        )
        .with_partition(
            ShardId::new(3),
            SimTime::from_secs(40),
            SimTime::from_secs(250),
        )
        .with_drops(ShardId::new(4), 0.5, SimTime::ZERO, SimTime::MAX);
    let run_at = |threads: usize| {
        let cfg = RuntimeConfig {
            seed: 99,
            scheduler: SchedulerConfig::new(threads),
            ..RuntimeConfig::default()
        };
        run_with_faults(&specs, &cfg, &plan).expect("valid faulted run")
    };
    let sequential = run_at(1);
    let pooled = run_at(4);
    let auto = run_at(0);
    assert_eq!(
        sequential.run.fingerprint(),
        pooled.run.fingerprint(),
        "faulted run: 1 thread vs 4 threads"
    );
    assert_eq!(
        sequential.run.fingerprint(),
        auto.run.fingerprint(),
        "faulted run: 1 thread vs all cores"
    );
    assert_eq!(sequential.faults, pooled.faults);
    assert_eq!(sequential.faults, auto.faults);
    // Replaying the identical `(config, plan)` reproduces everything.
    let replay = run_at(1);
    assert_eq!(sequential.run.fingerprint(), replay.run.fingerprint());
    assert_eq!(sequential.faults, replay.faults);
}

#[test]
fn fingerprint_reacts_to_seed_and_scale() {
    // Guard against a degenerate fingerprint: different runs must differ.
    let a = report_for(1, 9, 0);
    let b = report_for(2, 9, 0);
    let c = report_for(1, 10, 0);
    assert_ne!(a.run.fingerprint(), b.run.fingerprint(), "seed ignored");
    assert_ne!(a.run.fingerprint(), c.run.fingerprint(), "scale ignored");
}
