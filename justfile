# Development workflow for contractshard. `just verify` is the gate CI runs.

# Build, test, format-check and lint the whole workspace.
verify:
    cargo fmt --check
    cargo build --release --workspace
    cargo test -q --workspace
    cargo clippy --workspace --all-targets -- -D warnings

# Determinism & safety lint over every workspace crate (policy.toml is the
# policy table; exit 1 on findings, each printed as `file:line: RULE message`
# followed by the source→…→sink call chain for the reachability rules).
audit:
    cargo run --release -p cshard-audit

# Audit plus the stable JSON report, gated against the committed baseline
# (any new finding or a >2% call-resolution drop fails). This is what CI runs.
audit-json:
    cargo run --release -p cshard-audit -- \
        --json /tmp/AUDIT_report.json \
        --baseline results/audit/AUDIT_baseline.json
    @echo "wrote /tmp/AUDIT_report.json"

# Regenerate the committed audit baseline after deliberately accepting a new
# finding or call-graph shape. Review the diff before committing.
audit-baseline:
    -cargo run --release -p cshard-audit -- \
        --json results/audit/AUDIT_baseline.json
    git diff --stat results/audit/AUDIT_baseline.json

# Quick-mode run of the golden experiments, diffed against results/golden.
# fig4a exercises the ChainSpace driver with settlement disabled: the diff
# pins the settle subsystem bit-invisible on the unbatched path.
golden:
    cargo run --release -p cshard-bench --bin experiments -- \
        table1 fig3a fig4a --quick --json /tmp/golden-smoke
    diff results/golden/table1.json /tmp/golden-smoke/table1.json
    diff results/golden/fig3a.json /tmp/golden-smoke/fig3a.json
    diff results/golden/fig4a.json /tmp/golden-smoke/fig4a.json

# Fault-injection gate: the chaos suite (zero-fault transparency, VRF
# failover, corruption bounds) plus the faults experiment grid as JSON.
chaos:
    cargo test -q --test chaos
    cargo run --release -p cshard-bench --bin experiments -- \
        faults --quick --json /tmp/chaos

# Pipeline instrumentation grid: cold vs warm iteration counts and
# per-stage timing, written as BENCH_pipeline.json.
bench-pipeline:
    cargo run --release -p cshard-bench --bin experiments -- \
        pipeline --quick --json /tmp/bench-pipeline
    @echo "wrote /tmp/bench-pipeline/BENCH_pipeline.json"

# Scheduler lifecycle grid: launch throughput and scheduled/skipped task
# counts on a sparse 10→2000-shard workload, written as BENCH_sched.json.
bench-sched:
    cargo run --release -p cshard-bench --bin experiments -- \
        sched --quick --json /tmp/bench-sched
    @echo "wrote /tmp/bench-sched/BENCH_sched.json"

# Streaming scale grid: epochs/sec and reclassified fraction, accounts
# 10^3 -> 10^6 under steady/bursty/spam mixes, as BENCH_scale.json.
bench-scale:
    cargo run --release -p cshard-bench --bin experiments -- \
        scale --quick --json /tmp/bench-scale
    @echo "wrote /tmp/bench-scale/BENCH_scale.json"

# Settlement grid: messages per cross-shard tx, per-tx 2PC baseline vs a
# crosslink batch-cap sweep on the fig4(b) point, as BENCH_settle.json.
bench-settle:
    cargo run --release -p cshard-bench --bin experiments -- \
        settle --quick --json /tmp/bench-settle
    @echo "wrote /tmp/bench-settle/BENCH_settle.json"

# Migration grid: cross-shard messages per tx, static placement vs the
# cross-epoch placement engine (>= 2x reduction asserted in the grid), as
# BENCH_migrate.json.
bench-migrate:
    cargo run --release -p cshard-bench --bin experiments -- \
        migrate --quick --json /tmp/bench-migrate
    @echo "wrote /tmp/bench-migrate/BENCH_migrate.json"

# Fast feedback loop: tests only.
test:
    cargo test -q --workspace

# Undefined-behaviour check on the leaf crates (requires nightly + miri
# component; heavy statistical tests are gated off under the interpreter).
miri:
    cargo +nightly miri test -p cshard-primitives -p cshard-crypto

# Regenerate every paper figure/table (quick mode; drop --quick for full scale).
experiments:
    cargo run --release -p cshard-bench --bin experiments -- all --quick

# Sequential-vs-parallel sanity: identical results, only wall-clock differs.
determinism:
    cargo test -q --test determinism
