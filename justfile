# Development workflow for contractshard. `just verify` is the gate CI runs.

# Build, test and lint the whole workspace.
verify:
    cargo build --release --workspace
    cargo test -q --workspace
    cargo clippy --workspace --all-targets -- -D warnings

# Fast feedback loop: tests only.
test:
    cargo test -q --workspace

# Regenerate every paper figure/table (quick mode; drop --quick for full scale).
experiments:
    cargo run --release -p cshard-bench --bin experiments -- all --quick

# Sequential-vs-parallel sanity: identical results, only wall-clock differs.
determinism:
    cargo test -q --test determinism
