//! Property tests for the shard-lifecycle work scheduler: the invariants
//! the runtime's two-phase harness leans on.
//!
//! * **Lifecycle** — a slot is never stepped while another worker holds it
//!   (`Running` is exclusive), an admitted slot is stepped at least once
//!   (no `Pending → Idle` shortcut), and a skipped slot is never stepped.
//! * **Determinism** — results, errors and [`DrainStats`] (including the
//!   per-slot turn counts) are identical at 1 worker, 4 workers and
//!   one-per-core, for arbitrary work vectors and turn budgets. Worker
//!   scheduling order must never leak into anything observable.
//! * **Error order** — when several slots fail, the lowest slot index wins
//!   at any thread count.

use cshard_sim::{DrainStats, SchedulerConfig, Turn, WorkScheduler};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A slot counting down `work` steps; `stepped` records how often the
/// scheduler actually ran it.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Counter {
    work: u64,
    stepped: u64,
}

/// Drains `works` with one step of work per turn, returning the finished
/// slots and stats.
fn drain_counters(works: &[u64], config: SchedulerConfig) -> (Vec<Counter>, DrainStats) {
    let slots: Vec<Counter> = works
        .iter()
        .map(|&work| Counter { work, stepped: 0 })
        .collect();
    WorkScheduler::new(config)
        .drain(
            slots,
            |c: &Counter| c.work > 0,
            |_, c| {
                c.stepped += 1;
                c.work -= 1;
                Ok::<_, std::convert::Infallible>(if c.work == 0 {
                    Turn::Done
                } else {
                    Turn::Yield
                })
            },
        )
        .expect("infallible drain")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Admitted slots are stepped exactly `work` times (never zero, never
    /// while idle); skipped slots are never stepped; the counters add up.
    #[test]
    fn admitted_slots_drain_fully_and_skipped_slots_are_untouched(
        works in proptest::collection::vec(0u64..6, 1..40),
        threads in 0usize..6,
    ) {
        let (out, stats) = drain_counters(&works, SchedulerConfig::new(threads));
        let busy = works.iter().filter(|&&w| w > 0).count() as u64;
        prop_assert_eq!(stats.scheduled, busy);
        prop_assert_eq!(stats.skipped, works.len() as u64 - busy);
        prop_assert_eq!(stats.turns, works.iter().sum::<u64>());
        for (i, (c, &w)) in out.iter().zip(&works).enumerate() {
            prop_assert_eq!(c.work, 0, "slot {} not drained", i);
            prop_assert_eq!(c.stepped, w, "slot {} stepped a wrong number of times", i);
            prop_assert_eq!(stats.per_slot_turns[i], w);
        }
    }

    /// The full observable surface — results, per-slot turn counts, drain
    /// stats — is identical at every worker count.
    #[test]
    fn drains_are_identical_across_thread_counts(
        works in proptest::collection::vec(0u64..8, 1..32),
    ) {
        let sequential = drain_counters(&works, SchedulerConfig::sequential());
        for threads in [2usize, 4, 0] {
            let parallel = drain_counters(&works, SchedulerConfig::new(threads));
            prop_assert_eq!(&sequential, &parallel, "threads={}", threads);
        }
    }

    /// When several slots error, the lowest slot index wins — the
    /// first-input-order error, not the first error in wall-clock order —
    /// and every thread count agrees on it.
    #[test]
    fn lowest_slot_error_wins_at_any_thread_count(
        fail in proptest::collection::vec(proptest::bool::ANY, 2..24),
        forced in 0usize..24,
        threads in 0usize..6,
    ) {
        // Guarantee at least one failing slot without discarding cases.
        let mut fail = fail;
        let forced = forced % fail.len();
        fail[forced] = true;
        let run = |config: SchedulerConfig| {
            WorkScheduler::new(config)
                .drain(
                    fail.clone(),
                    |_| true,
                    |i, f| if *f { Err(i) } else { Ok(Turn::Done) },
                )
                .expect_err("some slot fails")
        };
        let expected = fail.iter().position(|&f| f).expect("one forced failure");
        prop_assert_eq!(run(SchedulerConfig::sequential()), expected);
        prop_assert_eq!(run(SchedulerConfig::new(threads)), expected);
    }
}

/// `Running` is exclusive: with many workers and yielding slots, no slot
/// is ever stepped by two workers at once (the entry/exit flag would
/// trip), and re-enqueued slots keep draining to completion.
#[test]
fn no_slot_runs_twice_concurrently_under_yields() {
    const SLOTS: usize = 24;
    const TURNS_PER_SLOT: u64 = 16;
    let in_step: Vec<AtomicBool> = (0..SLOTS).map(|_| AtomicBool::new(false)).collect();
    let total_steps = AtomicU64::new(0);
    let slots: Vec<u64> = vec![TURNS_PER_SLOT; SLOTS];
    let (out, stats) = WorkScheduler::new(SchedulerConfig::new(8))
        .drain(
            slots,
            |&remaining| remaining > 0,
            |i, remaining| {
                let was = in_step[i].swap(true, Ordering::SeqCst);
                assert!(!was, "slot {i} entered by two workers at once");
                total_steps.fetch_add(1, Ordering::SeqCst);
                *remaining -= 1;
                in_step[i].store(false, Ordering::SeqCst);
                Ok::<_, std::convert::Infallible>(if *remaining == 0 {
                    Turn::Done
                } else {
                    Turn::Yield
                })
            },
        )
        .expect("infallible drain");
    assert!(out.iter().all(|&r| r == 0), "every slot drained");
    assert_eq!(
        total_steps.load(Ordering::SeqCst),
        SLOTS as u64 * TURNS_PER_SLOT
    );
    assert_eq!(stats.turns, SLOTS as u64 * TURNS_PER_SLOT);
    assert_eq!(stats.scheduled, SLOTS as u64);
    assert_eq!(stats.skipped, 0);
}
