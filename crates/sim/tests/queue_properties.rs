//! Property tests for the event queue: the two invariants the shared
//! runtime harness leans on.
//!
//! * Events pop in nondecreasing time order, and events scheduled for the
//!   **same** timestamp fire in insertion (FIFO) order — this is what makes
//!   every run of a [`cshard_sim::EventQueue`]-driven simulation
//!   deterministic regardless of heap internals.
//! * `schedule_in` saturates at `SimTime::MAX` instead of overflowing, so
//!   a pathological delay near the end of representable time schedules an
//!   event "at the end of time" rather than panicking mid-run.

use cshard_primitives::SimTime;
use cshard_sim::EventQueue;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pops_are_time_ordered_and_same_time_is_fifo(
        times in proptest::collection::vec(0u64..1_000, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (pair[0], pair[1]);
            prop_assert!(t0 <= t1, "time went backwards: {t0} then {t1}");
            if t0 == t1 {
                // Same timestamp → insertion order (seq) breaks the tie.
                prop_assert!(i0 < i1, "tie at {t0} fired {i0} after {i1}");
            }
        }
        // The popped payloads are a permutation of the scheduled ones.
        let mut ids: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..times.len()).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_saturates_instead_of_overflowing(
        start in 1u64..=u64::MAX,
        delay in 1u64..=u64::MAX,
    ) {
        // Advance the clock to `start`…
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(start), "warp");
        q.pop();
        prop_assert_eq!(q.now(), SimTime::from_millis(start));
        // …then ask for a delay that may shoot past u64::MAX.
        q.schedule_in(SimTime::from_millis(delay), "later");
        let (at, _) = q.pop().unwrap();
        let expected = start.checked_add(delay).map_or(SimTime::MAX, SimTime::from_millis);
        prop_assert_eq!(at, expected);
        prop_assert!(at <= SimTime::MAX);
    }

    #[test]
    fn interleaved_reschedules_stay_deterministic(
        seedlings in proptest::collection::vec((0u64..500, 0u64..100), 1..16),
    ) {
        // Two queues driven by the same schedule/pop/reschedule script
        // produce identical traces.
        let run = || {
            let mut q = EventQueue::new();
            for (i, &(t, _)) in seedlings.iter().enumerate() {
                q.schedule(SimTime::from_millis(t), i);
            }
            let mut trace = Vec::new();
            while let Some((t, i)) = q.pop() {
                trace.push((t.as_millis(), i));
                if trace.len() < 256 {
                    if let Some(&(_, redelay)) = seedlings.get(i) {
                        if redelay > 0 && trace.len() % 3 == 0 {
                            q.schedule_in(SimTime::from_millis(redelay), i);
                        }
                    }
                }
            }
            trace
        };
        prop_assert_eq!(run(), run());
    }
}
