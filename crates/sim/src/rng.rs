//! Seeded randomness for simulations.

use cshard_primitives::SimTime;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream for one simulation run.
///
/// Wraps `ChaCha8Rng` (small, fast, reproducible across platforms) and adds
/// the distributions the block-production model needs: exponential
/// inter-block times (PoW is a Poisson process), uniform picks, and
/// Bernoulli trials for the game layer's coin tosses.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Creates a stream from a full 256-bit seed — e.g. a PRF output, so a
    /// shard's stream is a pure function of `(master seed, shard id)` and
    /// independent of any other shard's draws.
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        SimRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Derives an independent sub-stream, e.g. one per shard, so that
    /// adding events to one shard never perturbs another's draws.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label into a fresh seed drawn from this stream.
        let base = self.inner.next_u64();
        SimRng::new(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn coin(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// A sample from Exp(rate) — mean `1/rate` — via inverse CDF.
    ///
    /// Used for PoW inter-block times: a miner with hash rate `rate`
    /// blocks-per-second finds blocks as a Poisson process.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        // 1 - unit() is in (0, 1], avoiding ln(0).
        -(1.0 - self.unit()).ln() / rate
    }

    /// An exponential inter-event delay as a `SimTime` (mean `mean`).
    pub fn exp_delay(&mut self, mean: SimTime) -> SimTime {
        let mean_s = mean.as_secs_f64();
        assert!(mean_s > 0.0, "mean delay must be positive");
        SimTime::from_secs_f64(self.exponential(1.0 / mean_s))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks one element uniformly; `None` for an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Raw access for `rand` distribution adapters.
    pub fn raw(&mut self) -> &mut ChaCha8Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mk = || {
            let mut root = SimRng::new(42);
            let mut f0 = root.fork(0);
            let mut f1 = root.fork(1);
            (f0.unit(), f1.unit())
        };
        let (a0, a1) = mk();
        let (b0, b1) = mk();
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
        assert_ne!(a0, a1);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(3);
        let rate = 1.0 / 60.0; // one block per minute
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 60.0).abs() < 2.0,
            "sample mean {mean} too far from 60"
        );
    }

    #[test]
    fn exp_delay_has_positive_times() {
        let mut rng = SimRng::new(4);
        for _ in 0..100 {
            let d = rng.exp_delay(SimTime::from_secs(60));
            assert!(d.as_millis() < 60_000 * 100);
        }
    }

    #[test]
    fn coin_respects_probability() {
        let mut rng = SimRng::new(5);
        let heads = (0..10_000).filter(|_| rng.coin(0.3)).count();
        assert!((2_700..3_300).contains(&heads), "heads={heads}");
        assert!(!rng.coin(0.0));
        assert!(rng.coin(1.0));
    }

    #[test]
    fn below_and_between_bounds() {
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.between(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(rng.between(4, 4), 4);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn pick_handles_empty_and_singleton() {
        let mut rng = SimRng::new(9);
        let empty: [u32; 0] = [];
        assert_eq!(rng.pick(&empty), None);
        assert_eq!(rng.pick(&[42]), Some(&42));
    }
}
