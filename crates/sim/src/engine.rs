//! The event queue at the heart of the simulator.

use cshard_primitives::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a point in simulated time.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion sequence — ties in `time` fire in insertion
    /// order, which keeps runs deterministic.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` is in the past — a simulation must never rewind.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after a delay from the current time.
    ///
    /// The target time saturates at [`SimTime::MAX`] rather than
    /// overflowing, so a pathological delay (e.g. an astronomically
    /// unlucky exponential draw) schedules "at the end of time" instead
    /// of panicking mid-run.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the earliest event and advances the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some((ev.time, ev.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Peeks at the time of the next event without popping it.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime::from_millis(5), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.next_time(), Some(SimTime::from_millis(100)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(50), 1u32);
        q.pop();
        q.schedule_in(SimTime::from_millis(25), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(75));
        assert_eq!(e, 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(100), ());
        q.pop();
        q.schedule(SimTime::from_millis(50), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Drive two identical queues with the same operations; outcomes match.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_millis(10), 0u32);
            q.schedule(SimTime::from_millis(10), 1u32);
            while let Some((t, e)) = q.pop() {
                out.push((t.as_millis(), e));
                if e < 4 {
                    q.schedule_in(SimTime::from_millis(5), e + 2);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
