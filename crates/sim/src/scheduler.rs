//! The shard-lifecycle work scheduler.
//!
//! The old `Executor` (since removed) fanned a *fixed* task set out: every shard
//! paid a task slot per phase whether or not it had queued work. This
//! scheduler replaces that with shard-granular lifecycle scheduling, the
//! shape execution-sharding designs (Katana-style engines, Shard
//! Scheduler) use to reach thousands of shards:
//!
//! * every slot (one shard's task) carries an atomic lifecycle state,
//!   `Idle → Pending → Running`;
//! * only slots that *have work* (the caller's admission predicate) are
//!   enqueued onto the ready queue — idle shards are skipped and counted,
//!   never scheduled;
//! * a worker pool sized to the machine (`threads: 0` = one worker per
//!   core) drains the queue; a slot whose turn ends with more work
//!   outstanding ([`Turn::Yield`]) is re-enqueued (`Running → Pending`),
//!   one that finishes ([`Turn::Done`]) goes back to `Idle`;
//! * per-slot scheduled-turn counters and the skipped count come back in
//!   [`DrainStats`], so idle-shard savings are a measured number.
//!
//! # Determinism
//!
//! The scheduler preserves the workspace's bit-identity contract the same
//! way the executor did, by construction: slots never share mutable
//! state, so a slot's trajectory is a pure function of its own inputs and
//! cannot observe which worker ran it, when, or in what interleaving.
//! Worker scheduling order decides only *wall-clock* placement. The
//! sequential path (`threads <= 1`) steps slots in index order on the
//! caller's thread and runs the *same* step code, so any thread count
//! yields bit-identical slot states — and identical [`DrainStats`], since
//! turn counts are per-slot functions of the step logic, not of the
//! interleaving.
//!
//! Within one [`WorkScheduler::drain`] call, "new work arrival" is the
//! slot's own doing (its step scheduled further events and yielded);
//! cross-slot work injection would break slot independence and is exactly
//! what the determinism contract forbids.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How a run is scheduled: worker pool size and turn granularity.
///
/// This is the one configuration surface the whole workspace threads
/// through — `RuntimeConfig`, `SystemBuilder::scheduler`, and the bench
/// grids all consume it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads: `1` runs slots inline on the caller's thread
    /// (sequential, the default), `0` uses one worker per available core,
    /// any other value is an explicit pool size. Results are bit-identical
    /// across all settings.
    pub threads: usize,
    /// Maximum events a slot processes per scheduled turn before it yields
    /// the worker and re-enters the ready queue (`0` = no budget: a slot
    /// runs to phase completion in one turn). Smaller budgets exercise the
    /// `Running → Pending` re-enqueue path and interleave slots more
    /// fairly; the outputs are bit-identical at any setting.
    pub turn_events: usize,
}

impl SchedulerConfig {
    /// A scheduler over `threads` workers with no turn budget.
    pub fn new(threads: usize) -> Self {
        SchedulerConfig {
            threads,
            turn_events: 0,
        }
    }

    /// The sequential scheduler (slots step inline, in index order).
    pub fn sequential() -> Self {
        SchedulerConfig::new(1)
    }

    /// One worker per available core.
    pub fn per_core() -> Self {
        SchedulerConfig::new(0)
    }

    /// Sets the per-turn event budget (see [`SchedulerConfig::turn_events`]).
    pub fn with_turn_events(mut self, turn_events: usize) -> Self {
        self.turn_events = turn_events;
        self
    }

    /// The worker count this configuration resolves to (`0` → the number
    /// of available cores).
    pub fn worker_count(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::sequential()
    }
}

/// What a slot's scheduled turn decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Turn {
    /// The slot has more work: re-enqueue it (`Running → Pending`).
    Yield,
    /// The slot's work for this drain is finished (`Running → Idle`).
    Done,
}

/// What one [`WorkScheduler::drain`] measured. Deliberately sim-clock-free
/// and wall-clock-free (audit rule ND001): pure scheduling arithmetic,
/// identical at any thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Slots admitted to the ready queue (they had work).
    pub scheduled: u64,
    /// Slots whose admission predicate was false: never enqueued, never
    /// stepped — the idle-shard saving, as a number.
    pub skipped: u64,
    /// Total scheduled turns across all slots (≥ `scheduled`; each
    /// [`Turn::Yield`] adds one).
    pub turns: u64,
    /// Scheduled turns per slot, in slot order (`0` = the slot was
    /// skipped).
    pub per_slot_turns: Vec<u64>,
}

// Lifecycle encoding for the per-slot atomic.
const IDLE: u8 = 0;
const PENDING: u8 = 1;
const RUNNING: u8 = 2;

/// One resident slot: the caller's item plus its lifecycle atomics.
struct Slot<T> {
    item: Mutex<T>,
    state: AtomicU8,
    turns: AtomicU64,
}

/// The shard-lifecycle scheduler: a ready queue of `Pending` slots drained
/// by a fixed worker pool. See the module docs for the lifecycle and the
/// determinism argument.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkScheduler {
    config: SchedulerConfig,
}

impl WorkScheduler {
    /// A scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        WorkScheduler { config }
    }

    /// The configuration this scheduler runs under.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// The resolved worker count (see [`SchedulerConfig::worker_count`]).
    pub fn workers(&self) -> usize {
        self.config.worker_count()
    }

    /// Drains every slot that has work, returning the slots (in input
    /// order) and the drain's scheduling statistics.
    ///
    /// * `admit` is evaluated once per slot, up front, in slot order: a
    ///   `true` slot enters the ready queue `Pending`; a `false` slot is
    ///   counted skipped and never stepped.
    /// * `step` runs one scheduled turn of a slot. [`Turn::Yield`]
    ///   re-enqueues the slot; [`Turn::Done`] retires it to `Idle`. The
    ///   step owns the turn-budget policy (the scheduler does not count
    ///   the slot's events — only its turns).
    ///
    /// # Errors
    ///
    /// A step error retires the slot (no early abort: every other admitted
    /// slot still drains, exactly as the old executor ran every task
    /// before reporting) and the drain returns the erroring slot with the
    /// *lowest index* — deterministic at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the lifecycle invariant is violated (a slot claimed from
    /// the ready queue that is not `Pending` — a scheduler bug, not a
    /// caller condition).
    pub fn drain<T, E, A, F>(
        &self,
        slots: Vec<T>,
        admit: A,
        step: F,
    ) -> Result<(Vec<T>, DrainStats), E>
    where
        T: Send,
        E: Send,
        A: Fn(&T) -> bool,
        F: Fn(usize, &mut T) -> Result<Turn, E> + Sync,
    {
        let n = slots.len();
        let workers = self.workers();
        if workers <= 1 || n <= 1 {
            return Self::drain_sequential(slots, admit, step);
        }

        let slots: Vec<Slot<T>> = slots
            .into_iter()
            .map(|item| Slot {
                item: Mutex::new(item),
                state: AtomicU8::new(IDLE),
                turns: AtomicU64::new(0),
            })
            .collect();

        // Admission, in slot order: only slots with work enter the queue.
        let mut stats = DrainStats {
            per_slot_turns: vec![0; n],
            ..DrainStats::default()
        };
        let mut ready = std::collections::VecDeque::with_capacity(n);
        for (i, slot) in slots.iter().enumerate() {
            let has_work = admit(&slot.item.lock().expect("slot lock"));
            if has_work {
                slot.state.store(PENDING, Ordering::SeqCst);
                ready.push_back(i);
                stats.scheduled += 1;
            } else {
                stats.skipped += 1;
            }
        }

        // `live` counts slots still Pending or Running; the drain is over
        // when the queue is empty *and* nothing is running (a running slot
        // may still yield new queue entries).
        let admitted = ready.len();
        let live = AtomicUsize::new(admitted);
        let queue = Mutex::new(ready);
        let available = Condvar::new();
        let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());

        if admitted > 0 {
            let slots = &slots;
            let step = &step;
            let live = &live;
            let queue = &queue;
            let available = &available;
            let errors = &errors;
            let pool = workers.min(admitted);
            std::thread::scope(|scope| {
                for _ in 0..pool {
                    scope.spawn(move || loop {
                        // Claim the next Pending slot, or exit once the
                        // drain is over.
                        let i = {
                            let mut q = queue.lock().expect("ready-queue lock");
                            loop {
                                if let Some(i) = q.pop_front() {
                                    break i;
                                }
                                if live.load(Ordering::SeqCst) == 0 {
                                    return;
                                }
                                q = available.wait(q).expect("ready-queue wait");
                            }
                        };
                        let slot = &slots[i];
                        // Pending → Running. Exactly one worker pops a
                        // given queue entry, and a slot is re-enqueued
                        // only after its previous turn stored a non-
                        // Running state, so this CAS cannot race.
                        slot.state
                            .compare_exchange(PENDING, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
                            .unwrap_or_else(|s| {
                                panic!("slot {i} claimed while in state {s} (not Pending)")
                            });
                        slot.turns.fetch_add(1, Ordering::SeqCst);
                        let outcome = {
                            let mut item = slot.item.lock().expect("slot lock");
                            step(i, &mut item)
                        };
                        match outcome {
                            Ok(Turn::Yield) => {
                                // Running → Pending: more work, back in line.
                                slot.state.store(PENDING, Ordering::SeqCst);
                                let mut q = queue.lock().expect("ready-queue lock");
                                q.push_back(i);
                                available.notify_one();
                            }
                            Ok(Turn::Done) | Err(_) => {
                                if let Err(e) = outcome {
                                    errors.lock().expect("error lock").push((i, e));
                                }
                                // Running → Idle; if this was the last live
                                // slot, wake every parked worker to exit.
                                // Taking the queue lock orders the wake
                                // against workers between their failed pop
                                // and their wait.
                                slot.state.store(IDLE, Ordering::SeqCst);
                                if live.fetch_sub(1, Ordering::SeqCst) == 1 {
                                    let _q = queue.lock().expect("ready-queue lock");
                                    available.notify_all();
                                }
                            }
                        }
                    });
                }
            });
        }

        let mut errors = errors.into_inner().expect("error lock");
        if !errors.is_empty() {
            errors.sort_by_key(|(i, _)| *i);
            let (_, first) = errors.swap_remove(0);
            return Err(first);
        }
        let mut out = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            stats.per_slot_turns[i] = slot.turns.into_inner();
            stats.turns += stats.per_slot_turns[i];
            out.push(slot.item.into_inner().expect("slot lock"));
        }
        Ok((out, stats))
    }

    /// The inline path: slots step in index order on the caller's thread,
    /// through the same admission/turn logic as the pool, so the results
    /// (and the [`DrainStats`]) are bit-identical.
    fn drain_sequential<T, E, A, F>(
        mut slots: Vec<T>,
        admit: A,
        step: F,
    ) -> Result<(Vec<T>, DrainStats), E>
    where
        A: Fn(&T) -> bool,
        F: Fn(usize, &mut T) -> Result<Turn, E>,
    {
        let mut stats = DrainStats {
            per_slot_turns: vec![0; slots.len()],
            ..DrainStats::default()
        };
        let mut first_error: Option<(usize, E)> = None;
        for (i, slot) in slots.iter_mut().enumerate() {
            if !admit(slot) {
                stats.skipped += 1;
                continue;
            }
            stats.scheduled += 1;
            loop {
                stats.per_slot_turns[i] += 1;
                stats.turns += 1;
                match step(i, slot) {
                    Ok(Turn::Yield) => continue,
                    Ok(Turn::Done) => break,
                    Err(e) => {
                        // Record and keep draining the remaining slots —
                        // the pool path runs every admitted slot too.
                        if first_error.is_none() {
                            first_error = Some((i, e));
                        }
                        break;
                    }
                }
            }
        }
        match first_error {
            Some((_, e)) => Err(e),
            None => Ok((slots, stats)),
        }
    }

    /// Applies `task` to every item, returning results in input order —
    /// the old `Executor::run` shape, expressed as a drain where every
    /// item is one single-turn slot. Grid sweeps (independent experiment
    /// points) use this.
    ///
    /// # Panics
    /// A panicking task aborts the whole run (the panic propagates).
    pub fn map<T, R, F>(&self, items: Vec<T>, task: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        enum MapSlot<T, R> {
            Input(T),
            Output(R),
            Taken,
        }
        let slots: Vec<MapSlot<T, R>> = items.into_iter().map(MapSlot::Input).collect();
        let run = self.drain(
            slots,
            |_| true,
            |i, slot| {
                let MapSlot::Input(item) = std::mem::replace(slot, MapSlot::Taken) else {
                    unreachable!("map slot stepped twice");
                };
                *slot = MapSlot::Output(task(i, item));
                Ok::<Turn, std::convert::Infallible>(Turn::Done)
            },
        );
        let (slots, _) = match run {
            Ok(done) => done,
            Err(never) => match never {},
        };
        slots
            .into_iter()
            .map(|slot| match slot {
                MapSlot::Output(r) => r,
                _ => unreachable!("map slot never produced"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A slot that needs `work` turns to finish and records each step.
    struct Counter {
        work: u64,
        stepped: u64,
    }

    fn drain_counters(threads: usize, work: &[u64]) -> (Vec<u64>, DrainStats) {
        let slots: Vec<Counter> = work
            .iter()
            .map(|&w| Counter {
                work: w,
                stepped: 0,
            })
            .collect();
        let sched = WorkScheduler::new(SchedulerConfig::new(threads));
        let (slots, stats) = sched
            .drain(
                slots,
                |c| c.work > 0,
                |_, c| {
                    c.stepped += 1;
                    Ok::<Turn, std::convert::Infallible>(if c.stepped < c.work {
                        Turn::Yield
                    } else {
                        Turn::Done
                    })
                },
            )
            .expect("infallible");
        (slots.into_iter().map(|c| c.stepped).collect(), stats)
    }

    #[test]
    fn skipped_slots_are_never_stepped_and_counted() {
        let work = [3, 0, 1, 0, 0, 5];
        let (stepped, stats) = drain_counters(4, &work);
        assert_eq!(stepped, vec![3, 0, 1, 0, 0, 5]);
        assert_eq!(stats.scheduled, 3);
        assert_eq!(stats.skipped, 3);
        assert_eq!(stats.turns, 9);
        assert_eq!(stats.per_slot_turns, vec![3, 0, 1, 0, 0, 5]);
    }

    #[test]
    fn stats_are_identical_across_thread_counts() {
        let work: Vec<u64> = (0..40).map(|i| i % 7).collect();
        let seq = drain_counters(1, &work);
        for threads in [2, 4, 8, 0] {
            assert_eq!(drain_counters(threads, &work), seq, "threads={threads}");
        }
    }

    #[test]
    fn first_slot_order_error_wins_at_any_thread_count() {
        for threads in [1, 4, 0] {
            let sched = WorkScheduler::new(SchedulerConfig::new(threads));
            let err = sched
                .drain(
                    vec![0u32; 16],
                    |_| true,
                    |i, _| {
                        if i % 3 == 1 {
                            Err(i)
                        } else {
                            Ok(Turn::Done)
                        }
                    },
                )
                .unwrap_err();
            assert_eq!(err, 1, "threads={threads}");
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let sched = WorkScheduler::new(SchedulerConfig::new(4));
        let out = sched.map((0..100).collect(), |i, x: u64| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let sched = WorkScheduler::new(SchedulerConfig::per_core());
        let empty: Vec<u32> = sched.map(Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(sched.map(vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn zero_resolves_to_machine_width() {
        assert!(SchedulerConfig::per_core().worker_count() >= 1);
        assert_eq!(SchedulerConfig::new(3).worker_count(), 3);
    }

    #[test]
    fn all_slots_idle_is_a_no_op_drain() {
        let (stepped, stats) = drain_counters(4, &[0, 0, 0, 0]);
        assert_eq!(stepped, vec![0; 4]);
        assert_eq!(stats.scheduled, 0);
        assert_eq!(stats.skipped, 4);
        assert_eq!(stats.turns, 0);
    }

    #[test]
    fn more_workers_than_slots() {
        let (stepped, stats) = drain_counters(64, &[2, 1]);
        assert_eq!(stepped, vec![2, 1]);
        assert_eq!(stats.turns, 3);
    }
}
