//! The legacy fixed-fan-out executor, now a thin wrapper over the
//! shard-lifecycle [`WorkScheduler`](crate::scheduler::WorkScheduler).
//!
//! Kept only for source compatibility: every task becomes a single-turn
//! scheduler slot, so the semantics (input-order results, inline
//! execution at one worker, bit-identical outputs at any thread count)
//! are unchanged. New code should construct a
//! [`SchedulerConfig`](crate::scheduler::SchedulerConfig) and use the
//! scheduler — or, for protocol runs, `Runtime::builder()` in
//! `cshard-runtime` — directly.

use crate::scheduler::{SchedulerConfig, WorkScheduler};

/// Runs independent tasks across a fixed pool of scoped threads.
#[deprecated(
    note = "use cshard_sim::WorkScheduler with a SchedulerConfig (or Runtime::builder() for protocol runs)"
)]
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    inner: WorkScheduler,
}

#[allow(deprecated)]
impl Executor {
    /// An executor over `threads` workers. `0` means "use the machine":
    /// one worker per available core.
    pub fn new(threads: usize) -> Self {
        Executor {
            inner: WorkScheduler::new(SchedulerConfig::new(threads)),
        }
    }

    /// A single-threaded executor (runs tasks inline, in order).
    pub fn sequential() -> Self {
        Executor {
            inner: WorkScheduler::new(SchedulerConfig::sequential()),
        }
    }

    /// The worker count this executor resolves to.
    pub fn threads(&self) -> usize {
        self.inner.workers()
    }

    /// Applies `task` to every item, returning results in input order.
    ///
    /// `task` receives `(index, item)`. With one worker (or one item) the
    /// tasks run inline on the caller's thread — the parallel and
    /// sequential paths execute the same task code, so a deterministic
    /// task yields bit-identical results either way.
    ///
    /// # Panics
    /// A panicking task aborts the whole run (the panic propagates).
    pub fn run<T, R, F>(&self, items: Vec<T>, task: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.inner.map(items, task)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let ex = Executor::new(4);
        let out = ex.run((0..100).collect(), |i, x: u64| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let work = |_: usize, x: u64| -> u64 {
            // A deterministic but non-trivial computation.
            (0..1000).fold(x, |acc, k| {
                acc.wrapping_mul(6364136223846793005).wrapping_add(k)
            })
        };
        let seq = Executor::sequential().run((0..32).collect(), work);
        let par = Executor::new(8).run((0..32).collect(), work);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_resolves_to_machine_width() {
        let ex = Executor::new(0);
        assert!(ex.threads() >= 1);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let ex = Executor::new(4);
        let empty: Vec<u32> = ex.run(Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(ex.run(vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_tasks() {
        let ex = Executor::new(64);
        assert_eq!(ex.run(vec![1u8, 2], |_, x| x), vec![1, 2]);
    }
}
