//! A work-stealing-style executor for independent simulation tasks.
//!
//! Sharded runs decompose into per-shard tasks with no shared mutable
//! state (each shard owns its event queue and PRF-derived RNG streams), so
//! they can run on any number of threads. The executor preserves *output
//! determinism*: results are returned in input order, and because tasks do
//! not communicate, the values themselves are independent of thread count
//! and scheduling. Tasks are claimed dynamically from a shared index —
//! cheap work-stealing without a deque per worker — so a few slow tasks
//! (large shards, 1000-player games) don't idle the other workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs independent tasks across a fixed pool of scoped threads.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor over `threads` workers. `0` means "use the machine":
    /// one worker per available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Executor { threads }
    }

    /// A single-threaded executor (runs tasks inline, in order).
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// The worker count this executor resolves to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `task` to every item, returning results in input order.
    ///
    /// `task` receives `(index, item)`. With one worker (or one item) the
    /// tasks run inline on the caller's thread — the parallel and
    /// sequential paths execute the same task code, so a deterministic
    /// task yields bit-identical results either way.
    ///
    /// # Panics
    /// A panicking task aborts the whole run (the panic propagates).
    pub fn run<T, R, F>(&self, items: Vec<T>, task: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect();
        }

        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        {
            let task = &task;
            let slots = &slots;
            let results = &results;
            let next = &next;
            std::thread::scope(|scope| {
                for _ in 0..self.threads.min(n) {
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("task slot lock")
                            .take()
                            .expect("each slot is claimed exactly once");
                        let out = task(i, item);
                        *results[i].lock().expect("result slot lock") = Some(out);
                    });
                }
            });
        }

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result lock")
                    .expect("every task completed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let ex = Executor::new(4);
        let out = ex.run((0..100).collect(), |i, x: u64| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let work = |_: usize, x: u64| -> u64 {
            // A deterministic but non-trivial computation.
            (0..1000).fold(x, |acc, k| {
                acc.wrapping_mul(6364136223846793005).wrapping_add(k)
            })
        };
        let seq = Executor::sequential().run((0..32).collect(), work);
        let par = Executor::new(8).run((0..32).collect(), work);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_resolves_to_machine_width() {
        let ex = Executor::new(0);
        assert!(ex.threads() >= 1);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let ex = Executor::new(4);
        let empty: Vec<u32> = ex.run(Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(ex.run(vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_tasks() {
        let ex = Executor::new(64);
        assert_eq!(ex.run(vec![1u8, 2], |_, x| x), vec![1, 2]);
    }
}
