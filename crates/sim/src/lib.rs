//! Deterministic discrete-event simulation engine.
//!
//! Replaces the paper's AWS testbed: block discovery, propagation and
//! injection become timestamped events on a priority queue. Everything is
//! seeded, so a run is a pure function of its configuration — the property
//! the parameter-unification scheme (Sec. IV-C) also relies on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod rng;
pub mod scheduler;

pub use engine::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use scheduler::{DrainStats, SchedulerConfig, Turn, WorkScheduler};
