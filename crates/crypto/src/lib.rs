//! Cryptographic primitives for ContractShard, implemented from scratch.
//!
//! * [`sha256`](mod@sha256) — a complete FIPS 180-4 SHA-256, used for block hashes,
//!   transaction ids and all derived randomness.
//! * [`prf`] — a keyed pseudo-random function built on SHA-256.
//! * [`vrf`] — a *simulated* verifiable random function. The paper uses the
//!   VRF of Micali et al. for leader election (Sec. III-B); the evaluation
//!   only relies on the VRF contract (unpredictable output + public
//!   verification), which we provide via a keyed hash under an
//!   honest-key-registry model. See DESIGN.md §2 for the substitution note.
//! * [`beacon`] — a RandHound-style randomness beacon: maps each miner's
//!   public key plus the leader's randomness into one of 100 groups, exactly
//!   the interface Sec. III-B consumes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod beacon;
pub mod prf;
pub mod sha256;
pub mod vrf;

pub use beacon::RandomnessBeacon;
pub use prf::Prf;
pub use sha256::{sha256, sha256_concat, Sha256};
pub use vrf::{elect_leader, rank_leaders, Vrf, VrfProof, VrfPublicKey, VrfSecretKey};
