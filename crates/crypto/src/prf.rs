//! A keyed pseudo-random function built on SHA-256.
//!
//! Construction: `PRF_k(domain, msg) = SHA256(len(k) ‖ k ‖ len(domain) ‖
//! domain ‖ msg)`. The explicit length framing prevents ambiguity between
//! `(k="ab", m="c")` and `(k="a", m="bc")`; the domain string separates
//! independent uses of the same key (leader election vs. group assignment
//! vs. initial-choice derivation).

use crate::sha256::Sha256;
use cshard_primitives::Hash32;

/// A keyed PRF instance.
#[derive(Clone, Debug)]
pub struct Prf {
    key: Vec<u8>,
}

impl Prf {
    /// Creates a PRF keyed by `key`.
    pub fn new(key: impl AsRef<[u8]>) -> Self {
        Prf {
            key: key.as_ref().to_vec(),
        }
    }

    /// Evaluates the PRF on `(domain, msg)`.
    pub fn eval(&self, domain: &str, msg: impl AsRef<[u8]>) -> Hash32 {
        let msg = msg.as_ref();
        let mut h = Sha256::new();
        h.update((self.key.len() as u64).to_be_bytes());
        h.update(&self.key);
        h.update((domain.len() as u64).to_be_bytes());
        h.update(domain.as_bytes());
        h.update(msg);
        h.finalize()
    }

    /// Evaluates the PRF and reduces the output to `0..n`.
    pub fn eval_mod(&self, domain: &str, msg: impl AsRef<[u8]>, n: u64) -> u64 {
        self.eval(domain, msg).mod_u64(n)
    }

    /// Evaluates the PRF to a uniform `f64` in `[0, 1)`.
    ///
    /// Uses 53 bits of the digest, matching `f64` mantissa precision.
    pub fn eval_unit(&self, domain: &str, msg: impl AsRef<[u8]>) -> f64 {
        let bits = self.eval(domain, msg).leading_u64() >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let prf = Prf::new(b"key");
        assert_eq!(prf.eval("d", b"m"), prf.eval("d", b"m"));
    }

    #[test]
    fn key_domain_and_message_all_matter() {
        let a = Prf::new(b"key-a");
        let b = Prf::new(b"key-b");
        assert_ne!(a.eval("d", b"m"), b.eval("d", b"m"));
        assert_ne!(a.eval("d1", b"m"), a.eval("d2", b"m"));
        assert_ne!(a.eval("d", b"m1"), a.eval("d", b"m2"));
    }

    #[test]
    fn length_framing_prevents_ambiguity() {
        // Without framing these two would collide.
        let a = Prf::new(b"ab");
        let b = Prf::new(b"a");
        assert_ne!(a.eval("", b"c"), b.eval("", b"bc"));
        let p = Prf::new(b"k");
        assert_ne!(p.eval("ab", b"c"), p.eval("a", b"bc"));
    }

    #[test]
    fn eval_mod_in_range() {
        let prf = Prf::new(b"key");
        for i in 0..200u64 {
            let r = prf.eval_mod("range", i.to_be_bytes(), 100);
            assert!(r < 100);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "1000 hash draws are too slow under the interpreter")]
    fn eval_mod_covers_range() {
        // With 1000 draws over 10 buckets every bucket should be hit.
        let prf = Prf::new(b"coverage");
        let mut seen = [false; 10];
        for i in 0..1000u64 {
            seen[prf.eval_mod("cov", i.to_be_bytes(), 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "2000 hash draws are too slow under the interpreter")]
    fn eval_unit_in_unit_interval_and_roughly_uniform() {
        let prf = Prf::new(b"unit");
        let mut sum = 0.0;
        let n = 2000;
        for i in 0..n as u64 {
            let u = prf.eval_unit("u", i.to_be_bytes());
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
