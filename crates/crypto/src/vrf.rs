//! A simulated Verifiable Random Function.
//!
//! The paper selects verifiable leaders with the VRF of Micali, Rabin and
//! Vadhan (Sec. III-B, following Omniledger). A real VRF needs elliptic-curve
//! machinery that contributes nothing to the evaluated behaviour; what the
//! protocol consumes is the *contract*:
//!
//! 1. only the holder of `sk` can compute `(output, proof) = VRF_sk(input)`;
//! 2. anyone holding `pk` can verify the pair;
//! 3. the output is uniformly pseudo-random.
//!
//! We provide that contract under an **honest-key-registry model**: key pairs
//! are `(sk, pk = SHA256("vrf-pk" ‖ sk))`, the proof *is* the secret-key-
//! derived digest, and verification recomputes the binding through the
//! registry. Within the simulation every node knows the registry, so
//! properties (1)–(3) hold against the modelled adversary (who must control
//! the leader's key to bias randomness — exactly the capability the paper's
//! security analysis in Sec. IV-D grants them).

use crate::prf::Prf;
use crate::sha256::sha256_concat;
use cshard_primitives::Hash32;

/// A VRF secret key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VrfSecretKey(pub Hash32);

/// A VRF public key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VrfPublicKey(pub Hash32);

/// A VRF proof: binds `(pk, input)` to the output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VrfProof {
    /// The binding digest that verifiers recompute.
    pub binding: Hash32,
}

/// A VRF key pair plus evaluation/verification.
#[derive(Clone, Debug)]
pub struct Vrf {
    sk: VrfSecretKey,
    pk: VrfPublicKey,
}

impl Vrf {
    /// Derives a key pair deterministically from a seed (e.g. a miner id),
    /// so experiments are reproducible.
    pub fn from_seed(seed: impl AsRef<[u8]>) -> Self {
        let sk = VrfSecretKey(sha256_concat(&[b"vrf-sk", seed.as_ref()]));
        let pk = VrfPublicKey(sha256_concat(&[b"vrf-pk", sk.0.as_bytes()]));
        Vrf { sk, pk }
    }

    /// The public key.
    pub fn public_key(&self) -> VrfPublicKey {
        self.pk
    }

    /// Evaluates the VRF on `input`, returning `(output, proof)`.
    pub fn evaluate(&self, input: impl AsRef<[u8]>) -> (Hash32, VrfProof) {
        let prf = Prf::new(self.sk.0.as_bytes());
        let output = prf.eval("vrf-output", input.as_ref());
        let binding = sha256_concat(&[
            b"vrf-binding",
            self.pk.0.as_bytes(),
            input.as_ref(),
            output.as_bytes(),
        ]);
        (output, VrfProof { binding })
    }

    /// Verifies that `(output, proof)` is the unique valid evaluation of the
    /// key `pk` on `input`, by consulting the honest key registry.
    ///
    /// `registry_lookup` maps a public key back to its secret key within the
    /// simulation (the "registry"); a real deployment would verify the EC
    /// proof instead. Verification fails for forged outputs because the
    /// output is recomputed from the registered key.
    pub fn verify<F>(
        pk: VrfPublicKey,
        input: impl AsRef<[u8]>,
        output: Hash32,
        proof: &VrfProof,
        registry_lookup: F,
    ) -> bool
    where
        F: FnOnce(VrfPublicKey) -> Option<VrfSecretKey>,
    {
        let Some(sk) = registry_lookup(pk) else {
            return false;
        };
        // Check the pk actually belongs to the sk (registry integrity).
        if VrfPublicKey(sha256_concat(&[b"vrf-pk", sk.0.as_bytes()])) != pk {
            return false;
        }
        let prf = Prf::new(sk.0.as_bytes());
        let expected = prf.eval("vrf-output", input.as_ref());
        if expected != output {
            return false;
        }
        let expected_binding = sha256_concat(&[
            b"vrf-binding",
            pk.0.as_bytes(),
            input.as_ref(),
            output.as_bytes(),
        ]);
        proof.binding == expected_binding
    }

    /// Exposes the secret key for registry construction in simulations.
    pub fn secret_key(&self) -> VrfSecretKey {
        self.sk
    }
}

/// Selects a leader among `candidates` for a round: each candidate's VRF
/// output on the round tag is compared and the smallest wins.
///
/// Returns the index of the winner. This is the standard lowest-output VRF
/// lottery; with honest keys each candidate wins with equal probability.
pub fn elect_leader(candidates: &[Vrf], round: u64) -> Option<usize> {
    let tag = round.to_be_bytes();
    candidates
        .iter()
        .enumerate()
        .map(|(i, vrf)| (vrf.evaluate(tag).0, i))
        .min()
        .map(|(_, i)| i)
}

/// Ranks every candidate for a round by the same `(output, index)` order the
/// lottery uses: `rank_leaders(c, r)[0]` is exactly `elect_leader(c, r)`, the
/// next entry is the first fallback, and so on.
///
/// This is the failover schedule for leader crashes: when the rank-0 leader
/// fails to broadcast the unified parameters within the timeout, every miner
/// advances to the next rank — all of them replay this same deterministic
/// ordering, so they agree on the fallback without any extra communication.
pub fn rank_leaders(candidates: &[Vrf], round: u64) -> Vec<usize> {
    let tag = round.to_be_bytes();
    let mut ranked: Vec<(Hash32, usize)> = candidates
        .iter()
        .enumerate()
        .map(|(i, vrf)| (vrf.evaluate(tag).0, i))
        .collect();
    ranked.sort();
    ranked.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn registry(vrfs: &[Vrf]) -> HashMap<VrfPublicKey, VrfSecretKey> {
        vrfs.iter()
            .map(|v| (v.public_key(), v.secret_key()))
            .collect()
    }

    #[test]
    fn evaluate_verify_round_trip() {
        let vrf = Vrf::from_seed(b"miner-0");
        let reg = registry(std::slice::from_ref(&vrf));
        let (out, proof) = vrf.evaluate(b"round-1");
        assert!(Vrf::verify(
            vrf.public_key(),
            b"round-1",
            out,
            &proof,
            |pk| reg.get(&pk).copied()
        ));
    }

    #[test]
    fn verify_rejects_wrong_output() {
        let vrf = Vrf::from_seed(b"miner-0");
        let reg = registry(std::slice::from_ref(&vrf));
        let (_, proof) = vrf.evaluate(b"round-1");
        let forged = sha256_concat(&[b"forged"]);
        assert!(!Vrf::verify(
            vrf.public_key(),
            b"round-1",
            forged,
            &proof,
            |pk| reg.get(&pk).copied()
        ));
    }

    #[test]
    fn verify_rejects_wrong_input() {
        let vrf = Vrf::from_seed(b"miner-0");
        let reg = registry(std::slice::from_ref(&vrf));
        let (out, proof) = vrf.evaluate(b"round-1");
        assert!(!Vrf::verify(
            vrf.public_key(),
            b"round-2",
            out,
            &proof,
            |pk| reg.get(&pk).copied()
        ));
    }

    #[test]
    fn verify_rejects_unregistered_key() {
        let vrf = Vrf::from_seed(b"miner-0");
        let (out, proof) = vrf.evaluate(b"round-1");
        assert!(!Vrf::verify(
            vrf.public_key(),
            b"round-1",
            out,
            &proof,
            |_| None
        ));
    }

    #[test]
    fn verify_rejects_claim_of_another_miners_output() {
        // Adversary presents miner-1's pk but miner-0's output/proof.
        let honest = Vrf::from_seed(b"miner-0");
        let victim = Vrf::from_seed(b"miner-1");
        let reg = registry(&[honest.clone(), victim.clone()]);
        let (out, proof) = honest.evaluate(b"round-1");
        assert!(!Vrf::verify(
            victim.public_key(),
            b"round-1",
            out,
            &proof,
            |pk| reg.get(&pk).copied()
        ));
    }

    #[test]
    fn outputs_differ_across_keys_and_inputs() {
        let a = Vrf::from_seed(b"a");
        let b = Vrf::from_seed(b"b");
        assert_ne!(a.evaluate(b"x").0, b.evaluate(b"x").0);
        assert_ne!(a.evaluate(b"x").0, a.evaluate(b"y").0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "64 election rounds are too slow under the interpreter")]
    fn leader_election_is_deterministic_and_covers_candidates() {
        let vrfs: Vec<Vrf> = (0..8u64).map(|i| Vrf::from_seed(i.to_be_bytes())).collect();
        let w1 = elect_leader(&vrfs, 7).unwrap();
        let w2 = elect_leader(&vrfs, 7).unwrap();
        assert_eq!(w1, w2);
        // Over many rounds, several distinct leaders should win.
        let mut winners = std::collections::HashSet::new();
        for round in 0..64 {
            winners.insert(elect_leader(&vrfs, round).unwrap());
        }
        assert!(winners.len() >= 4, "winners too concentrated: {winners:?}");
    }

    #[test]
    fn empty_candidate_set_has_no_leader() {
        assert_eq!(elect_leader(&[], 0), None);
        assert!(rank_leaders(&[], 0).is_empty());
    }

    #[test]
    fn ranking_head_matches_the_lottery_winner() {
        let vrfs: Vec<Vrf> = (0..9u64).map(|i| Vrf::from_seed(i.to_be_bytes())).collect();
        for round in 0..16 {
            let ranking = rank_leaders(&vrfs, round);
            assert_eq!(Some(ranking[0]), elect_leader(&vrfs, round));
            // Every candidate appears exactly once.
            let mut sorted = ranking.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..vrfs.len()).collect::<Vec<_>>());
        }
    }
}
