//! RandHound-style randomness beacon.
//!
//! Sec. III-B: the verifiable leader generates and broadcasts a randomness
//! value; each miner then runs "the RandHound algorithm with which miners are
//! separated to 100 groups evenly, and obtains a random number r ranging from
//! 1 to 100". Which shard the miner joins is determined by where `r` falls in
//! the cumulative transaction-fraction intervals.
//!
//! RandHound itself is a multi-round distributed randomness protocol; the
//! paper consumes only its *output interface*. We reproduce that interface
//! with a leader-seeded deterministic beacon: `r_m = PRF_randomness("group",
//! pk_m) mod 100 + 1`. Anyone holding the broadcast randomness and a miner's
//! public key can recompute — and therefore verify — the miner's group,
//! which is exactly the verifiability property Sec. III-B requires.

use crate::prf::Prf;
use crate::vrf::VrfPublicKey;
use cshard_primitives::Hash32;

/// Number of groups RandHound separates miners into (fixed at 100 in the
/// paper, so that transaction fractions expressed in percent map directly
/// onto group intervals).
pub const GROUPS: u64 = 100;

/// A randomness beacon seeded by the leader's broadcast randomness.
#[derive(Clone, Debug)]
pub struct RandomnessBeacon {
    prf: Prf,
    randomness: Hash32,
}

impl RandomnessBeacon {
    /// Creates a beacon from the leader's broadcast randomness.
    pub fn new(randomness: Hash32) -> Self {
        RandomnessBeacon {
            prf: Prf::new(randomness.as_bytes()),
            randomness,
        }
    }

    /// The randomness this beacon is derived from.
    pub fn randomness(&self) -> Hash32 {
        self.randomness
    }

    /// The group number `r ∈ 1..=100` assigned to a miner's public key.
    pub fn group_of(&self, pk: VrfPublicKey) -> u64 {
        self.prf
            .eval_mod("randhound-group", pk.0.as_bytes(), GROUPS)
            + 1
    }

    /// Verifies a claimed group assignment (Sec. III-B: "users can verify
    /// whether a miner is in shard s with this algorithm given that miner's
    /// public key \[and\] the randomness").
    pub fn verify_group(&self, pk: VrfPublicKey, claimed: u64) -> bool {
        self.group_of(pk) == claimed
    }

    /// Derives a general-purpose sub-randomness for a named protocol stage
    /// (used by parameter unification to seed the game algorithms).
    pub fn derive(&self, stage: &str) -> Hash32 {
        self.prf.eval("beacon-derive", stage.as_bytes())
    }

    /// Derives a uniform `f64` in `[0,1)` for a stage/index pair — the
    /// "others' random initial choice" inputs of Sec. IV-C.
    pub fn derive_unit(&self, stage: &str, index: u64) -> f64 {
        let mut msg = Vec::with_capacity(stage.len() + 8);
        msg.extend_from_slice(stage.as_bytes());
        msg.extend_from_slice(&index.to_be_bytes());
        self.prf.eval_unit("beacon-unit", &msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;
    use crate::vrf::Vrf;

    fn beacon() -> RandomnessBeacon {
        RandomnessBeacon::new(sha256(b"round-randomness"))
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "500 VRF derivations are too slow under the interpreter"
    )]
    fn groups_are_in_1_to_100() {
        let b = beacon();
        for i in 0..500u64 {
            let pk = Vrf::from_seed(i.to_be_bytes()).public_key();
            let g = b.group_of(pk);
            assert!((1..=100).contains(&g), "group {g} out of range");
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "10k VRF derivations are too slow under the interpreter"
    )]
    fn groups_are_roughly_even() {
        // Sec. III-B: "miners are separated to 100 groups evenly".
        let b = beacon();
        let n = 10_000u64;
        let mut counts = [0u32; 100];
        for i in 0..n {
            let pk = Vrf::from_seed(i.to_be_bytes()).public_key();
            counts[(b.group_of(pk) - 1) as usize] += 1;
        }
        let expected = n as f64 / 100.0;
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "group {} count {} far from expected {}",
                g + 1,
                c,
                expected
            );
        }
    }

    #[test]
    fn verification_accepts_honest_and_rejects_cheaters() {
        let b = beacon();
        let pk = Vrf::from_seed(b"m").public_key();
        let honest = b.group_of(pk);
        assert!(b.verify_group(pk, honest));
        let lie = if honest == 1 { 2 } else { honest - 1 };
        assert!(!b.verify_group(pk, lie));
    }

    #[test]
    fn different_randomness_reshuffles_groups() {
        let b1 = RandomnessBeacon::new(sha256(b"epoch-1"));
        let b2 = RandomnessBeacon::new(sha256(b"epoch-2"));
        let moved = (0..200u64)
            .map(|i| Vrf::from_seed(i.to_be_bytes()).public_key())
            .filter(|&pk| b1.group_of(pk) != b2.group_of(pk))
            .count();
        // With 100 groups, ~99% of miners should move.
        assert!(moved > 150, "only {moved}/200 miners moved groups");
    }

    #[test]
    fn derive_is_stage_separated() {
        let b = beacon();
        assert_ne!(b.derive("merge"), b.derive("select"));
        assert_eq!(b.derive("merge"), b.derive("merge"));
    }

    #[test]
    #[cfg_attr(miri, ignore = "2000 beacon draws are too slow under the interpreter")]
    fn derive_unit_is_uniformish() {
        let b = beacon();
        let n = 2000;
        let mean: f64 = (0..n).map(|i| b.derive_unit("x", i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        for i in 0..n {
            let u = b.derive_unit("x", i);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
