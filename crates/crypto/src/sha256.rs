//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This is a straightforward, dependency-free implementation with an
//! incremental [`Sha256`] hasher and a one-shot [`sha256`] convenience
//! function. It is validated against the official NIST test vectors in the
//! unit tests below and fuzzed against its own incremental/one-shot
//! consistency by property tests.

use cshard_primitives::Hash32;

/// SHA-256 round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        let mut data = data.as_ref();
        // FIPS 180-4 defines the length field modulo 2^64, so wrapping is
        // the spec behaviour (and keeps this path panic-free).
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        // Fill a partially full buffer first.
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            } else {
                // Data was fully absorbed into a still-partial buffer.
                debug_assert!(data.is_empty());
                return self;
            }
        }

        // Whole blocks straight from the input.
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            self.compress(&block_64(block));
        }

        // Stash the tail.
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffer_len = rem.len();
        self
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Hash32 {
        // Wrapping by the same FIPS 180-4 modulo-2^64 rule as `update`.
        let bit_len = self.total_len.wrapping_mul(8);

        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        let mut pad = [0u8; 128];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());

        // Manual absorb of the padding (avoid touching total_len again).
        let mut data: &[u8] = &pad[..pad_len + 8];
        if self.buffer_len > 0 {
            let take = 64 - self.buffer_len;
            self.buffer[self.buffer_len..].copy_from_slice(&data[..take]);
            let block = self.buffer;
            self.compress(&block);
            data = &data[take..];
        }
        for block in data.chunks_exact(64) {
            self.compress(&block_64(block));
        }

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash32(out)
    }

    /// The SHA-256 compression function on one 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Copies a 64-byte slice (from `chunks_exact(64)`) into a fixed array.
fn block_64(block: &[u8]) -> [u8; 64] {
    let mut b = [0u8; 64];
    b.copy_from_slice(block);
    b
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: impl AsRef<[u8]>) -> Hash32 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of several byte strings, without an
/// intermediate allocation.
pub fn sha256_concat(parts: &[&[u8]]) -> Hash32 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex_digest(data: &[u8]) -> String {
        cshard_primitives::hex::encode(sha256(data).as_bytes())
    }

    // NIST / well-known test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "1 MB digest is minutes under the interpreter")]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exactly_55_56_63_64_65_bytes() {
        // Boundary lengths around the padding rules.
        let expected = [
            (
                55,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                63,
                "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
            (
                65,
                "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0",
            ),
        ];
        for (len, hex) in expected {
            let msg = vec![b'a'; len];
            assert_eq!(hex_digest(&msg), hex, "length {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_across_split_points() {
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let expected = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn concat_helper_matches_oneshot() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(sha256_concat(&[a, b]), sha256(b"hello world"));
        assert_eq!(sha256_concat(&[]), sha256(b""));
    }

    // Proptest's runner needs OS entropy and failure-persistence files,
    // neither of which exists under Miri's isolated interpreter.
    #[cfg(not(miri))]
    proptest! {
        #[test]
        fn prop_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), splits in proptest::collection::vec(0usize..2048, 0..5)) {
            let expected = sha256(&data);
            let mut points: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
            points.sort_unstable();
            let mut h = Sha256::new();
            let mut prev = 0;
            for p in points {
                h.update(&data[prev..p]);
                prev = p;
            }
            h.update(&data[prev..]);
            prop_assert_eq!(h.finalize(), expected);
        }

        #[test]
        fn prop_distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..128), b in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Not a collision search — just checks determinism + that equal
            // digests only occur for equal inputs in random sampling.
            if a == b {
                prop_assert_eq!(sha256(&a), sha256(&b));
            } else {
                prop_assert_ne!(sha256(&a), sha256(&b));
            }
        }
    }
}
