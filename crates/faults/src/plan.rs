//! Declarative fault schedules.
//!
//! A [`FaultPlan`] is data, not behaviour: a seed, an optional run
//! deadline, and a list of [`FaultAction`]s pinned to simulated times.
//! Two runs of the same `(plan, shard specs, runtime config)` triple are
//! bit-identical — all fault randomness (the per-link drop/delay coins)
//! is derived from `plan.seed` by a keyed PRF, never from host state.

use cshard_primitives::{Error, ShardId, SimTime};

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Crash a miner at `at`: from then on its block-found ticks are
    /// suppressed, which also stops its self-rescheduling chain — the
    /// miner is simply gone. With `recover_at`, the wrapper restarts the
    /// miner at that instant (its first post-recovery tick fires
    /// immediately; subsequent ticks resume the driver's own process).
    CrashMiner {
        /// Shard whose miner crashes.
        shard: ShardId,
        /// Local miner index within the shard.
        miner: usize,
        /// Crash instant.
        at: SimTime,
        /// Restart instant (`None` = permanent crash).
        recover_at: Option<SimTime>,
    },
    /// Drop each block-delivery event in `[from, until)` independently
    /// with probability `rate` (PRF coin per event). Dropping a delivery
    /// models losing the "everyone has seen it" edge of a broadcast; for
    /// drivers whose visibility is time-keyed (the contract-centric
    /// driver) the observable effect is bounded — use
    /// [`FaultAction::PartitionShard`] to actually move visibility.
    DropDeliveries {
        /// Shard whose deliveries are lossy.
        shard: ShardId,
        /// Per-event drop probability in `[0, 1]`.
        rate: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Defer each block-delivery event in `[from, until)` by `by` with
    /// probability `rate` (PRF coin per event; a deferred event that
    /// re-lands inside the window is re-drawn).
    DelayDeliveries {
        /// Shard whose deliveries lag.
        shard: ShardId,
        /// Per-event delay probability in `[0, 1]`.
        rate: f64,
        /// The deferral.
        by: SimTime,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Partition a shard's broadcast network for `[from, until)`: block
    /// deliveries cannot complete while the partition is up and land
    /// after the heal instead (see `cshard_network::PartitionModel`).
    /// Applied by rewriting the shard's propagation model before the run.
    PartitionShard {
        /// The partitioned shard.
        shard: ShardId,
        /// Partition start (inclusive).
        from: SimTime,
        /// Heal time (exclusive).
        until: SimTime,
    },
}

/// A full fault schedule for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault randomness (drop/delay coins). Independent of
    /// the runtime seed, so the same workload can be replayed under
    /// different fault draws and vice versa.
    pub seed: u64,
    /// Hard stop: a faulted run that cannot finish (e.g. its only miner
    /// crashed permanently) ends here instead of stalling, and the fault
    /// report marks it timed out. `None` is only valid for plans whose
    /// faults cannot prevent completion — [`FaultPlan::validate`] insists
    /// on a deadline whenever a permanent crash is scheduled.
    pub deadline: Option<SimTime>,
    /// The scheduled faults.
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// The empty plan: no faults, no deadline. A run under this plan is
    /// bit-identical to `cshard_runtime::simulate` — the wrapper
    /// schedules nothing and forwards everything.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            deadline: None,
            actions: Vec::new(),
        }
    }

    /// A plan with a deadline and no faults yet; chain the `with_*`
    /// builders to populate it.
    pub fn with_deadline(seed: u64, deadline: SimTime) -> Self {
        FaultPlan {
            seed,
            deadline: Some(deadline),
            actions: Vec::new(),
        }
    }

    /// Adds a crash (optionally with recovery).
    pub fn with_crash(
        mut self,
        shard: ShardId,
        miner: usize,
        at: SimTime,
        recover_at: Option<SimTime>,
    ) -> Self {
        self.actions.push(FaultAction::CrashMiner {
            shard,
            miner,
            at,
            recover_at,
        });
        self
    }

    /// Adds a delivery-drop window.
    pub fn with_drops(mut self, shard: ShardId, rate: f64, from: SimTime, until: SimTime) -> Self {
        self.actions.push(FaultAction::DropDeliveries {
            shard,
            rate,
            from,
            until,
        });
        self
    }

    /// Adds a delivery-delay window.
    pub fn with_delays(
        mut self,
        shard: ShardId,
        rate: f64,
        by: SimTime,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.actions.push(FaultAction::DelayDeliveries {
            shard,
            rate,
            by,
            from,
            until,
        });
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, shard: ShardId, from: SimTime, until: SimTime) -> Self {
        self.actions
            .push(FaultAction::PartitionShard { shard, from, until });
        self
    }

    /// Checks the plan is well-formed: rates in `[0, 1]`, windows
    /// non-empty, recoveries after their crashes, everything inside the
    /// deadline (when one is set), and a deadline present whenever a
    /// permanent crash could stall the run forever.
    pub fn validate(&self) -> Result<(), Error> {
        let bad = |reason: String| Error::Config {
            field: "fault_plan",
            reason,
        };
        for (i, action) in self.actions.iter().enumerate() {
            match action {
                FaultAction::CrashMiner { at, recover_at, .. } => {
                    if let Some(r) = recover_at {
                        if *r <= *at {
                            return Err(bad(format!(
                                "action {i}: recovery at {r} not after crash at {at}"
                            )));
                        }
                    } else if self.deadline.is_none() {
                        return Err(bad(format!(
                            "action {i}: a permanent crash needs a plan deadline \
                             (the crashed miner may be the shard's only one)"
                        )));
                    }
                }
                FaultAction::DropDeliveries {
                    rate, from, until, ..
                }
                | FaultAction::DelayDeliveries {
                    rate, from, until, ..
                } => {
                    if !(0.0..=1.0).contains(rate) {
                        return Err(bad(format!("action {i}: rate {rate} outside [0, 1]")));
                    }
                    if from >= until {
                        return Err(bad(format!("action {i}: empty window [{from}, {until})")));
                    }
                }
                FaultAction::PartitionShard { from, until, .. } => {
                    if from >= until {
                        return Err(bad(format!(
                            "action {i}: empty partition [{from}, {until})"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The partition windows this plan imposes on `shard`, for the
    /// propagation-model rewrite.
    pub fn partitions_for(&self, shard: ShardId) -> Vec<(SimTime, SimTime)> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                FaultAction::PartitionShard {
                    shard: s,
                    from,
                    until,
                } if *s == shard => Some((*from, *until)),
                _ => None,
            })
            .collect()
    }

    /// Whether the plan does anything at all to `shard` at the event
    /// level (crashes or delivery rules — partitions act through the
    /// propagation model instead).
    pub fn touches_events_of(&self, shard: ShardId) -> bool {
        self.actions.iter().any(|a| match a {
            FaultAction::CrashMiner { shard: s, .. }
            | FaultAction::DropDeliveries { shard: s, .. }
            | FaultAction::DelayDeliveries { shard: s, .. } => *s == shard,
            FaultAction::PartitionShard { .. } => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_plan_validates_and_touches_nothing() {
        let plan = FaultPlan::none(7);
        assert_eq!(plan.validate(), Ok(()));
        assert!(!plan.touches_events_of(ShardId::new(0)));
        assert!(plan.partitions_for(ShardId::new(0)).is_empty());
    }

    #[test]
    fn builders_accumulate_and_validate() {
        let plan = FaultPlan::with_deadline(1, ms(100_000))
            .with_crash(ShardId::new(0), 0, ms(1000), Some(ms(5000)))
            .with_drops(ShardId::new(1), 0.5, ms(0), ms(9000))
            .with_delays(ShardId::new(1), 0.25, ms(300), ms(0), ms(9000))
            .with_partition(ShardId::new(2), ms(100), ms(200));
        assert_eq!(plan.actions.len(), 4);
        assert_eq!(plan.validate(), Ok(()));
        assert!(plan.touches_events_of(ShardId::new(0)));
        assert!(plan.touches_events_of(ShardId::new(1)));
        // Partitions act through propagation, not events.
        assert!(!plan.touches_events_of(ShardId::new(2)));
        assert_eq!(
            plan.partitions_for(ShardId::new(2)),
            vec![(ms(100), ms(200))]
        );
    }

    #[test]
    fn permanent_crash_without_deadline_rejected() {
        let plan = FaultPlan::none(0).with_crash(ShardId::new(0), 0, ms(10), None);
        assert!(plan.validate().is_err());
        // With a deadline the same crash is fine.
        let ok = FaultPlan::with_deadline(0, ms(1000)).with_crash(ShardId::new(0), 0, ms(10), None);
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn bad_rates_windows_and_recoveries_rejected() {
        let r = FaultPlan::none(0).with_drops(ShardId::new(0), 1.5, ms(0), ms(10));
        assert!(r.validate().is_err());
        let w = FaultPlan::none(0).with_delays(ShardId::new(0), 0.1, ms(5), ms(10), ms(10));
        assert!(w.validate().is_err());
        let c = FaultPlan::none(0).with_crash(ShardId::new(0), 0, ms(10), Some(ms(10)));
        assert!(c.validate().is_err());
        let p = FaultPlan::none(0).with_partition(ShardId::new(0), ms(7), ms(7));
        assert!(p.validate().is_err());
    }
}
