//! The fault-injecting driver wrapper.
//!
//! [`FaultyDriver`] sits between the harness and any
//! [`ProtocolDriver`], executing a [`FaultPlan`] by intercepting the
//! event stream:
//!
//! * plan control points (crashes, recoveries, the deadline) are
//!   scheduled in `on_start` as [`Event::Fault`] events and consumed by
//!   the wrapper — the inner driver never sees them;
//! * [`Event::BlockFound`] ticks of a crashed miner are suppressed, which
//!   also kills the miner's self-rescheduling chain; on recovery the
//!   wrapper re-injects the tick and the chain resumes;
//! * [`Event::BlockDelivered`] events inside an active drop/delay window
//!   flip a PRF-derived coin and are dropped or deferred.
//!
//! With an empty plan the wrapper schedules nothing, intercepts nothing,
//! and forwards everything — a run under `FaultPlan::none(..)` is
//! bit-identical to the unwrapped driver, which the chaos suite asserts
//! against all twelve golden experiment JSONs.

use crate::plan::{FaultAction, FaultPlan};
use crate::report::ShardFaultStats;
use cshard_crypto::Prf;
use cshard_primitives::{Error, ShardId, SimTime};
use cshard_runtime::{Ctx, Event, ProtocolDriver, SettleStats, ShardReport};
use std::collections::BTreeMap;
use std::time::Duration;

/// A wrapper-scoped control point, scheduled as [`Event::Fault`].
#[derive(Clone, Copy, Debug)]
enum Control {
    Crash { miner: usize },
    Recover { miner: usize },
    Deadline,
}

/// A delivery-interference rule active over a time window.
#[derive(Clone, Copy, Debug)]
struct DeliveryRule {
    rate: f64,
    /// `None` drops the delivery; `Some(by)` defers it by `by`.
    delay_by: Option<SimTime>,
    from: SimTime,
    until: SimTime,
}

/// A [`ProtocolDriver`] executing a [`FaultPlan`] around an inner driver.
pub struct FaultyDriver<D> {
    inner: D,
    shard: ShardId,
    /// `(time, control)` pairs scheduled in `on_start`; the `Fault`
    /// event's `action` field indexes this list.
    controls: Vec<(SimTime, Control)>,
    rules: Vec<DeliveryRule>,
    /// Crash state per miner index (sparse — only ever-crashed miners).
    crashed: BTreeMap<usize, SimTime>,
    coin: Prf,
    coin_seq: u64,
    stats: ShardFaultStats,
    timed_out: bool,
}

impl<D: ProtocolDriver> FaultyDriver<D> {
    /// Wraps `inner` (driving `shard`) under `plan`. Only the plan's
    /// crash and delivery actions targeting `shard` apply; partitions are
    /// the harness's job (they rewrite the propagation model before the
    /// driver is even built). The plan deadline, when set, is scheduled
    /// in every wrapper so a stall anywhere ends the run.
    pub fn new(inner: D, shard: ShardId, plan: &FaultPlan) -> Self {
        let mut controls = Vec::new();
        let mut rules = Vec::new();
        for action in &plan.actions {
            match action {
                FaultAction::CrashMiner {
                    shard: s,
                    miner,
                    at,
                    recover_at,
                } if *s == shard => {
                    controls.push((*at, Control::Crash { miner: *miner }));
                    if let Some(r) = recover_at {
                        controls.push((*r, Control::Recover { miner: *miner }));
                    }
                }
                FaultAction::DropDeliveries {
                    shard: s,
                    rate,
                    from,
                    until,
                } if *s == shard => {
                    rules.push(DeliveryRule {
                        rate: *rate,
                        delay_by: None,
                        from: *from,
                        until: *until,
                    });
                }
                FaultAction::DelayDeliveries {
                    shard: s,
                    rate,
                    by,
                    from,
                    until,
                } if *s == shard => {
                    rules.push(DeliveryRule {
                        rate: *rate,
                        delay_by: Some(*by),
                        from: *from,
                        until: *until,
                    });
                }
                _ => {}
            }
        }
        if let Some(deadline) = plan.deadline {
            controls.push((deadline, Control::Deadline));
        }
        FaultyDriver {
            inner,
            shard,
            controls,
            rules,
            crashed: BTreeMap::new(),
            coin: Prf::new(plan.seed.to_be_bytes()),
            coin_seq: 0,
            stats: ShardFaultStats::new(shard),
            timed_out: false,
        }
    }

    /// The fault accounting this wrapper accumulated.
    pub fn stats(&self) -> &ShardFaultStats {
        &self.stats
    }

    /// Consumes the wrapper, returning the stats and the inner driver.
    pub fn into_parts(self) -> (ShardFaultStats, D) {
        (self.stats, self.inner)
    }

    /// One PRF coin in `[0, 1)`: a pure function of `(plan seed, shard,
    /// draw index)`, so fault randomness replays bit-identically at any
    /// thread count and is independent of the runtime seed.
    fn next_coin(&mut self) -> f64 {
        let mut msg = [0u8; 12];
        msg[..4].copy_from_slice(&self.shard.0.to_be_bytes());
        msg[4..].copy_from_slice(&self.coin_seq.to_be_bytes());
        self.coin_seq += 1;
        self.coin.eval_unit("fault-coin-v1", msg)
    }

    fn apply_control(&mut self, now: SimTime, control: Control, ctx: &mut Ctx) {
        match control {
            Control::Crash { miner } => {
                self.stats.crashes += 1;
                self.crashed.insert(miner, now);
            }
            Control::Recover { miner } => {
                if let Some(crashed_at) = self.crashed.remove(&miner) {
                    self.stats.recoveries += 1;
                    self.stats
                        .recovery_latencies
                        .push(now.saturating_since(crashed_at));
                    // The suppressed tick killed the miner's chain;
                    // restart it at the recovery instant.
                    ctx.schedule_in(SimTime::ZERO, Event::BlockFound { miner });
                }
            }
            Control::Deadline => {
                if !self.inner.done() {
                    self.timed_out = true;
                    self.stats.timed_out = true;
                }
            }
        }
    }

    /// The first rule whose window contains `now` (rules are checked in
    /// plan order; overlapping windows resolve to the earliest-declared).
    fn active_rule(&self, now: SimTime) -> Option<DeliveryRule> {
        self.rules
            .iter()
            .copied()
            .find(|r| now >= r.from && now < r.until)
    }
}

impl<D: ProtocolDriver> ProtocolDriver for FaultyDriver<D> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx);
        for (i, &(at, _)) in self.controls.iter().enumerate() {
            ctx.schedule(at, Event::Fault { action: i });
        }
    }

    fn on_event(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        match ev {
            Event::Fault { action } => {
                let Some(&(_, control)) = self.controls.get(action) else {
                    return Err(Error::UnexpectedEvent {
                        driver: "FaultyDriver",
                        event: format!("Fault {{ action: {action} }} outside the control table"),
                    });
                };
                self.apply_control(now, control, ctx);
                Ok(())
            }
            Event::BlockFound { miner } if self.crashed.contains_key(&miner) => {
                // The miner is down: swallow the tick. Not forwarding it
                // also means the inner driver never reschedules the next
                // one — the chain stays dead until a Recover control.
                self.stats.suppressed_blocks += 1;
                Ok(())
            }
            Event::BlockDelivered { .. } => {
                if let Some(rule) = self.active_rule(now) {
                    if self.next_coin() < rule.rate {
                        return match rule.delay_by {
                            None => {
                                self.stats.dropped_deliveries += 1;
                                Ok(())
                            }
                            Some(by) => {
                                self.stats.delayed_deliveries += 1;
                                ctx.schedule_in(by, ev);
                                Ok(())
                            }
                        };
                    }
                }
                self.inner.on_event(now, ev, ctx)
            }
            other => self.inner.on_event(now, other, ctx),
        }
    }

    fn done(&self) -> bool {
        self.inner.done() || self.timed_out
    }

    fn completion(&self) -> Option<SimTime> {
        self.inner.completion()
    }

    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        // The inner driver reports; under a non-empty plan `events`
        // includes the wrapper's control events (diagnostic only).
        self.inner.report(events, wall)
    }

    fn settle_stats(&self) -> Option<SettleStats> {
        // Settlement accounting lives in the inner driver (the wrapper
        // forwards `SettlementFlush` events like any foreign event).
        self.inner.settle_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_runtime::{
        simulate, ContractShardDriver, PropagationModel, Runtime, RuntimeConfig, ShardSpec,
    };

    fn spec(shard: u32, txs: usize, miners: usize) -> ShardSpec {
        ShardSpec {
            shard: ShardId::new(shard),
            fees: (1..=txs as u64).collect(),
            miners,
            strategy: cshard_runtime::SelectionStrategy::IdenticalGreedy,
        }
    }

    fn config(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn empty_plan_is_bit_transparent() {
        let specs = vec![spec(0, 60, 1), spec(1, 40, 1)];
        let cfg = config(11);
        let plain = simulate(&specs, &cfg).expect("valid");
        let wrapped: Vec<FaultyDriver<ContractShardDriver>> = specs
            .iter()
            .map(|s| {
                FaultyDriver::new(
                    ContractShardDriver::new(s, &cfg),
                    s.shard,
                    &FaultPlan::none(99),
                )
            })
            .collect();
        let outcome = Runtime::builder().run(wrapped).expect("valid");
        let (report, drivers) = (outcome.report, outcome.drivers);
        assert_eq!(report.fingerprint(), plain.fingerprint());
        assert!(drivers.iter().all(|d| !d.stats().any_faults()));
    }

    #[test]
    fn permanent_crash_of_the_only_miner_times_out() {
        let specs = [spec(0, 500, 1)];
        let cfg = config(3);
        let plan = FaultPlan::with_deadline(0, SimTime::from_secs(600)).with_crash(
            ShardId::new(0),
            0,
            SimTime::from_secs(120),
            None,
        );
        plan.validate().expect("valid plan");
        let wrapped = vec![FaultyDriver::new(
            ContractShardDriver::new(&specs[0], &cfg),
            specs[0].shard,
            &plan,
        )];
        let outcome = Runtime::builder().run(wrapped).expect("no stall");
        let (report, drivers) = (outcome.report, outcome.drivers);
        let stats = drivers[0].stats().clone();
        assert_eq!(stats.crashes, 1);
        assert!(stats.timed_out, "run must end at the deadline");
        assert!(stats.suppressed_blocks >= 1, "the first dead tick");
        // Not everything confirmed: the only miner died mid-run.
        assert!(report.shards[0].confirmed < report.shards[0].txs);
    }

    #[test]
    fn crash_and_recovery_resumes_and_finishes() {
        let specs = vec![spec(0, 200, 1)];
        let cfg = config(5);
        let crash_at = SimTime::from_secs(300);
        let recover_at = SimTime::from_secs(1500);
        let plan = FaultPlan::none(0).with_crash(ShardId::new(0), 0, crash_at, Some(recover_at));
        plan.validate().expect("valid plan");
        let wrapped = vec![FaultyDriver::new(
            ContractShardDriver::new(&specs[0], &cfg),
            specs[0].shard,
            &plan,
        )];
        let outcome = Runtime::builder().run(wrapped).expect("no stall");
        let (report, drivers) = (outcome.report, outcome.drivers);
        let stats = drivers[0].stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(
            stats.recovery_latencies,
            vec![recover_at.saturating_since(crash_at)]
        );
        assert!(!stats.timed_out);
        // The shard still finishes — later than the fault-free run.
        assert_eq!(report.shards[0].confirmed, report.shards[0].txs);
        let plain = simulate(&specs, &cfg).expect("valid");
        assert!(report.completion > plain.completion);
    }

    #[test]
    fn drop_and_delay_rules_flip_deterministic_coins() {
        let mk = |plan: &FaultPlan| {
            let s = spec(0, 120, 3);
            let cfg = RuntimeConfig {
                propagation: PropagationModel::Latency(cshard_network::LatencyModel::wide_area()),
                ..config(7)
            };
            let wrapped = vec![FaultyDriver::new(
                ContractShardDriver::new(&s, &cfg),
                s.shard,
                plan,
            )];
            let outcome = Runtime::builder().run(wrapped).expect("no stall");
            (outcome.report, outcome.drivers)
        };
        let window = (SimTime::ZERO, SimTime::from_secs(100_000));
        let drops = FaultPlan::none(21).with_drops(ShardId::new(0), 1.0, window.0, window.1);
        let (_, d) = mk(&drops);
        assert!(d[0].stats().dropped_deliveries > 0);
        assert_eq!(d[0].stats().delayed_deliveries, 0);

        let delays = FaultPlan::none(21).with_delays(
            ShardId::new(0),
            0.5,
            SimTime::from_secs(30),
            window.0,
            window.1,
        );
        let (ra, da) = mk(&delays);
        let (rb, db) = mk(&delays);
        // Same plan, same seed: bit-identical behaviour and accounting.
        assert_eq!(ra.fingerprint(), rb.fingerprint());
        assert_eq!(da[0].stats(), db[0].stats());
        assert!(da[0].stats().delayed_deliveries > 0);
        // A different fault seed flips different coins.
        let other = FaultPlan {
            seed: 22,
            ..delays.clone()
        };
        let (_, dc) = mk(&other);
        assert_ne!(
            da[0].stats().delayed_deliveries,
            dc[0].stats().delayed_deliveries
        );
    }

    #[test]
    fn foreign_fault_event_is_rejected() {
        let s = spec(0, 10, 1);
        let cfg = config(1);
        let mut wrapped = FaultyDriver::new(
            ContractShardDriver::new(&s, &cfg),
            s.shard,
            &FaultPlan::none(0),
        );
        let mut queue = cshard_sim_queue();
        let comm = cshard_network::CommStats::new();
        let mut ctx = Ctx::new(&mut queue, &comm);
        let err = wrapped
            .on_event(SimTime::ZERO, Event::Fault { action: 5 }, &mut ctx)
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnexpectedEvent {
                driver: "FaultyDriver",
                ..
            }
        ));
    }

    fn cshard_sim_queue() -> cshard_sim::EventQueue<Event> {
        cshard_sim::EventQueue::new()
    }
}
