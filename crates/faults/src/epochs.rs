//! Leader faults at the epoch layer: crashes and equivocation, recovered
//! by VRF-ranked failover.
//!
//! The paper's unification scheme (Sec. IV-C) hangs one epoch's parameters
//! off a single VRF-elected leader. This module exercises the two ways that
//! leader can fail and the deterministic recovery path `cshard-core` now
//! implements:
//!
//! * **Crash** — the leader never broadcasts. After a timeout every miner
//!   advances to the next entry of the epoch's VRF ranking
//!   (`EpochManager::leader_ranking`); all of them replay the same ranking,
//!   so the fallback is agreed without a view-change protocol. Recovery
//!   latency is `failover_depth × timeout`.
//! * **Equivocation** — the leader broadcasts *two* conflicting parameter
//!   sets. Honest miners compare `UnifiedParameters::digest()` values; a
//!   mismatch for the same epoch is a transferable proof of misbehaviour,
//!   the leader is treated as down, and the crash path takes over.

use cshard_core::EpochManager;
use cshard_games::{GameInputs, SelectionConfig, UnifiedParameters};
use cshard_primitives::{Error, MinerId, ShardId, SimTime};
use cshard_workload::{FeeDistribution, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// Whether two same-epoch leader broadcasts are an equivocation proof:
/// their canonical content digests differ. (Re-broadcasting the identical
/// parameters — e.g. a gossip duplicate — is not equivocation.)
pub fn equivocation_detected(a: &UnifiedParameters, b: &UnifiedParameters) -> bool {
    a.digest() != b.digest()
}

/// A schedule of leader faults over an epoch sequence.
#[derive(Clone, Debug)]
pub struct LeaderFaultPlan {
    /// How many epochs to run.
    pub epochs: u64,
    /// Broadcast timeout per failover rank: a miner waits this long for
    /// rank `k`'s parameters before advancing to rank `k + 1`.
    pub timeout: SimTime,
    /// Nominal epoch duration — recovery is "within one epoch" when
    /// `failover_depth × timeout` stays below this.
    pub epoch_interval: SimTime,
    /// Per epoch, how many of the top-ranked leaders crash (never
    /// broadcast). Missing epochs are healthy.
    pub crashed_ranks: BTreeMap<u64, usize>,
    /// Epochs whose acting primary equivocates: it broadcasts two
    /// conflicting parameter sets, is caught by digest comparison, and is
    /// treated as down on top of any crashes.
    pub equivocators: BTreeSet<u64>,
}

impl LeaderFaultPlan {
    /// A healthy plan: no crashes, no equivocation.
    pub fn healthy(epochs: u64, timeout: SimTime, epoch_interval: SimTime) -> Self {
        LeaderFaultPlan {
            epochs,
            timeout,
            epoch_interval,
            crashed_ranks: BTreeMap::new(),
            equivocators: BTreeSet::new(),
        }
    }

    /// Validates the plan: at least one epoch, a positive timeout, and an
    /// interval long enough to matter.
    pub fn validate(&self) -> Result<(), Error> {
        let bad = |reason: String| Error::Config {
            field: "leader_fault_plan",
            reason,
        };
        if self.epochs == 0 {
            return Err(bad("needs at least one epoch".into()));
        }
        if self.timeout == SimTime::ZERO {
            return Err(bad("broadcast timeout must be positive".into()));
        }
        if self.epoch_interval < self.timeout {
            return Err(bad(format!(
                "epoch interval {} shorter than one timeout {}",
                self.epoch_interval, self.timeout
            )));
        }
        Ok(())
    }
}

/// One epoch under the fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochFaultOutcome {
    /// Epoch number.
    pub epoch: u64,
    /// Who ended up leading.
    pub leader: MinerId,
    /// Ranks skipped before a live leader was found.
    pub failover_depth: usize,
    /// `failover_depth × timeout`: how long miners waited past the
    /// nominal broadcast before this epoch's parameters arrived.
    pub recovery_latency: SimTime,
    /// The epoch's primary was caught equivocating.
    pub equivocation_detected: bool,
    /// The failover claim verified against the public ranking (always
    /// checked; recorded so the chaos suite can assert it).
    pub failover_verified: bool,
}

/// The whole fault sequence, summarized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochFaultReport {
    /// Per-epoch outcomes, in epoch order.
    pub outcomes: Vec<EpochFaultOutcome>,
    /// Epochs that stalled entirely (every ranked leader down) before
    /// the run declared them lost and moved on.
    pub stalled_epochs: usize,
}

impl EpochFaultReport {
    /// The deepest failover that occurred.
    pub fn max_failover_depth(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.failover_depth)
            .max()
            .unwrap_or(0)
    }

    /// The worst recovery latency that occurred.
    pub fn max_recovery_latency(&self) -> SimTime {
        self.outcomes
            .iter()
            .map(|o| o.recovery_latency)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// True when every epoch's parameters arrived within one epoch
    /// interval — the recovery bound the chaos suite asserts.
    pub fn recovered_within(&self, epoch_interval: SimTime) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.recovery_latency < epoch_interval)
    }
}

const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 99 };

/// Runs `plan.epochs` epochs over `miners` enrolled miners, injecting the
/// planned leader faults and recovering via VRF-ranked failover. A pure
/// function of `(miners, txs_per_epoch, plan, seed)`.
///
/// Each epoch:
/// 1. compute the public leader ranking;
/// 2. mark the top `crashed_ranks[epoch]` entries down;
/// 3. if the epoch is in `equivocators`, let the acting primary (first
///    live rank) broadcast two conflicting parameter sets, detect the
///    digest mismatch, and mark it down too;
/// 4. run the epoch with the down-set — every miner replays the same
///    ranking, so the resulting leader is byte-agreed — and verify the
///    failover claim against public data;
/// 5. if *no* ranked leader is live, count the epoch as stalled, heal the
///    faults (operators restart miners), and retry once.
pub fn run_leader_faults(
    miners: u32,
    txs_per_epoch: usize,
    plan: &LeaderFaultPlan,
    seed: u64,
) -> Result<EpochFaultReport, Error> {
    plan.validate()?;
    if miners == 0 {
        return Err(Error::Config {
            field: "miners",
            reason: "need at least one enrolled miner".into(),
        });
    }
    let mut mgr = EpochManager::with_miner_count(miners);
    let mut outcomes = Vec::with_capacity(plan.epochs as usize);
    let mut stalled_epochs = 0;
    for step in 0..plan.epochs {
        let epoch = mgr.epoch();
        let batch = Workload::uniform_contracts(
            txs_per_epoch,
            5,
            FEES,
            seed ^ step.wrapping_mul(0x9E37_79B9),
        )
        .transactions;
        let ranking = mgr.leader_ranking(epoch);
        let crash_depth = plan.crashed_ranks.get(&step).copied().unwrap_or(0);
        let mut down: BTreeSet<MinerId> = ranking.iter().take(crash_depth).copied().collect();

        // Equivocation: the acting primary signs two conflicting inputs.
        let mut equivocation = false;
        if plan.equivocators.contains(&step) {
            if let Some(primary) = ranking.iter().find(|id| !down.contains(id)) {
                if let Some(enrolled) = mgr.enrolled().iter().find(|m| m.id == *primary) {
                    let ids: Vec<MinerId> = mgr.enrolled().iter().map(|m| m.id).collect();
                    let broadcast = |fees: Vec<u64>| {
                        UnifiedParameters::from_leader(
                            &enrolled.vrf,
                            epoch,
                            ids.clone(),
                            GameInputs::Select {
                                shard: ShardId::new(0),
                                fees,
                                config: SelectionConfig::default(),
                            },
                        )
                    };
                    let honest = broadcast(vec![1, 2, 3]);
                    let forked = broadcast(vec![1, 2, 4]);
                    equivocation = equivocation_detected(&honest, &forked);
                    if equivocation {
                        down.insert(*primary);
                    }
                }
            }
        }

        match mgr.run_epoch_with_downs(&batch, &down) {
            Ok(out) => {
                let failover_verified = mgr.verify_failover(out.epoch, &down, out.leader);
                let recovery_latency = SimTime::from_millis(
                    plan.timeout
                        .as_millis()
                        .saturating_mul(out.failover_depth as u64),
                );
                outcomes.push(EpochFaultOutcome {
                    epoch: out.epoch,
                    leader: out.leader,
                    failover_depth: out.failover_depth,
                    recovery_latency,
                    equivocation_detected: equivocation,
                    failover_verified,
                });
            }
            Err(Error::NoLiveLeader { .. }) => {
                // Every candidate is down: the epoch stalls until
                // operators restore miners; model one lost interval, then
                // retry healthy.
                stalled_epochs += 1;
                let out = mgr.run_epoch(&batch);
                outcomes.push(EpochFaultOutcome {
                    epoch: out.epoch,
                    leader: out.leader,
                    failover_depth: out.failover_depth,
                    recovery_latency: plan.epoch_interval,
                    equivocation_detected: equivocation,
                    failover_verified: true,
                });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(EpochFaultReport {
        outcomes,
        stalled_epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_plan(epochs: u64) -> LeaderFaultPlan {
        LeaderFaultPlan::healthy(epochs, SimTime::from_secs(10), SimTime::from_secs(60))
    }

    #[test]
    fn healthy_epochs_have_zero_depth_and_latency() {
        let report = run_leader_faults(12, 60, &base_plan(5), 1).expect("valid");
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.stalled_epochs, 0);
        assert_eq!(report.max_failover_depth(), 0);
        assert_eq!(report.max_recovery_latency(), SimTime::ZERO);
        assert!(report.outcomes.iter().all(|o| o.failover_verified));
    }

    #[test]
    fn crashed_leaders_fail_over_within_one_epoch() {
        let mut plan = base_plan(6);
        plan.crashed_ranks.insert(1, 1);
        plan.crashed_ranks.insert(3, 2);
        let report = run_leader_faults(12, 60, &plan, 2).expect("valid");
        assert_eq!(report.outcomes[1].failover_depth, 1);
        assert_eq!(report.outcomes[3].failover_depth, 2);
        assert_eq!(
            report.outcomes[3].recovery_latency,
            SimTime::from_secs(20),
            "depth 2 × 10 s timeout"
        );
        assert!(report.recovered_within(plan.epoch_interval));
        assert!(report.outcomes.iter().all(|o| o.failover_verified));
        // Healthy epochs are unaffected.
        assert_eq!(report.outcomes[0].failover_depth, 0);
    }

    #[test]
    fn equivocating_primary_is_demoted() {
        let mut plan = base_plan(4);
        plan.equivocators.insert(2);
        let report = run_leader_faults(10, 60, &plan, 3).expect("valid");
        let faulty = &report.outcomes[2];
        assert!(faulty.equivocation_detected);
        assert_eq!(faulty.failover_depth, 1, "primary demoted, rank 1 leads");
        assert!(faulty.failover_verified);
        // The healthy replay of the same epochs elects the equivocator.
        let healthy = run_leader_faults(10, 60, &base_plan(4), 3).expect("valid");
        assert_ne!(healthy.outcomes[2].leader, faulty.leader);
    }

    #[test]
    fn fully_dead_ranking_counts_a_stalled_epoch() {
        let mut plan = base_plan(3);
        plan.crashed_ranks.insert(1, 4); // every one of 4 miners down
        let report = run_leader_faults(4, 40, &plan, 4).expect("valid");
        assert_eq!(report.stalled_epochs, 1);
        assert_eq!(
            report.outcomes.len(),
            3,
            "the epoch still completes after healing"
        );
        assert_eq!(report.outcomes[1].recovery_latency, plan.epoch_interval);
    }

    #[test]
    fn deterministic_across_replays() {
        let mut plan = base_plan(5);
        plan.crashed_ranks.insert(2, 1);
        plan.equivocators.insert(4);
        let a = run_leader_faults(9, 50, &plan, 7).expect("valid");
        let b = run_leader_faults(9, 50, &plan, 7).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn bad_plans_rejected() {
        assert!(run_leader_faults(5, 10, &base_plan(0), 1).is_err());
        let mut zero_timeout = base_plan(2);
        zero_timeout.timeout = SimTime::ZERO;
        assert!(run_leader_faults(5, 10, &zero_timeout, 1).is_err());
        assert!(run_leader_faults(0, 10, &base_plan(2), 1).is_err());
    }

    #[test]
    fn duplicate_broadcast_is_not_equivocation() {
        let leader = cshard_crypto::Vrf::from_seed(b"leader");
        let ids: Vec<MinerId> = (0..4).map(MinerId::new).collect();
        let mk = || {
            UnifiedParameters::from_leader(
                &leader,
                1,
                ids.clone(),
                GameInputs::Select {
                    shard: ShardId::new(0),
                    fees: vec![9, 9, 9],
                    config: SelectionConfig::default(),
                },
            )
        };
        assert!(!equivocation_detected(&mk(), &mk()));
    }
}
