//! Deterministic fault injection and recovery for the sharding runtime.
//!
//! The paper's evaluation (Sec. VI) runs on a healthy testbed; its security
//! analysis (Sec. IV-D) bounds what an adversary — or plain bad luck — can
//! do to the protocol. This crate connects the two empirically, without
//! giving up the repository's core invariant: **every run is a pure
//! function of `(config, seed)`**.
//!
//! * [`FaultPlan`] — a declarative, validated schedule of faults: crash
//!   and recover miners, drop or delay block deliveries with a PRF-derived
//!   per-link rate, partition a shard for a span ([`plan`]).
//! * [`FaultyDriver`] — wraps any [`cshard_runtime::ProtocolDriver`] and
//!   executes the plan by intercepting the event stream; with an empty
//!   plan it is bit-for-bit transparent ([`driver`]).
//! * [`run_with_faults`] — the contract-centric `simulate` under a plan,
//!   returning the ordinary [`cshard_runtime::RunReport`] *plus* a
//!   [`FaultReport`] of what the faults did ([`harness`]).
//! * [`epochs`] — VRF-ranked leader failover: crash or equivocate the
//!   unification leader and watch every miner deterministically agree on
//!   the next-ranked fallback.
//! * [`corruption`] — the empirical side of Sec. IV-D: mark a fraction of
//!   miners malicious, run epochs, and compare the measured corrupted
//!   fractions to the Eq. (3)–(6) analytics in `cshard-security`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Fault machinery runs inside the event loop: typed errors, not panics
// (audit rule PH001 covers this crate).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod corruption;
pub mod driver;
pub mod epochs;
pub mod harness;
pub mod plan;
pub mod report;

pub use corruption::{measure_corruption, CorruptionMeasurement};
pub use driver::FaultyDriver;
pub use epochs::{
    equivocation_detected, run_leader_faults, EpochFaultOutcome, EpochFaultReport, LeaderFaultPlan,
};
pub use harness::{
    run_with_faults, run_with_migration, run_with_settlement, FaultRun, MigratedFaultRun,
    SettledFaultRun,
};
pub use plan::{FaultAction, FaultPlan};
pub use report::{FaultReport, ShardFaultStats};
