//! Running the contract-centric simulator under a fault plan.
//!
//! This harness sits *below* the epoch pipeline: it takes the same
//! [`ShardSpec`]s the pipeline's select stage produces and wraps the same
//! [`ContractShardDriver`]s its unify stage builds — there is no second
//! epoch implementation here. Classification, formation, merging and
//! selection all happen upstream in `cshard_core::pipeline::EpochPipeline`
//! (or its leader-fault sibling `EpochManager::run_epoch_with_downs` in
//! [`crate::epochs`]); this module only faults the block-production run.

use crate::driver::FaultyDriver;
use crate::plan::FaultPlan;
use crate::report::FaultReport;
use cshard_network::{LatencyModel, PartitionModel, PartitionWindow};
use cshard_primitives::{Error, ShardId, SimTime};
use cshard_runtime::{
    Batch, ContractShardDriver, MigratingShardDriver, MigrationStats, MigrationTicket,
    PropagationModel, RunReport, Runtime, RuntimeConfig, SettleStats, SettlingShardDriver,
    ShardSpec,
};
use std::collections::BTreeSet;

/// A faulted run: the ordinary run report plus the fault accounting.
#[derive(Clone, Debug)]
pub struct FaultRun {
    /// The standard run report — same fingerprinted surface as
    /// `cshard_runtime::simulate`.
    pub run: RunReport,
    /// What the injected faults did.
    pub faults: FaultReport,
}

impl FaultRun {
    /// Empty-block rate over the whole run (empty blocks / all blocks),
    /// `0.0` when no block was mined. Crashes and partitions show up
    /// here: idle shards spin empties.
    pub fn empty_block_rate(&self) -> f64 {
        let blocks: usize = self.run.shards.iter().map(|s| s.blocks).sum();
        if blocks == 0 {
            return 0.0;
        }
        let empties: usize = self.run.shards.iter().map(|s| s.empty_blocks).sum();
        empties as f64 / blocks as f64
    }

    /// Fraction of transactions left unconfirmed (nonzero only when the
    /// plan deadline cut the run short).
    pub fn unconfirmed_fraction(&self) -> f64 {
        let txs: usize = self.run.shards.iter().map(|s| s.txs).sum();
        if txs == 0 {
            return 0.0;
        }
        let confirmed: usize = self.run.shards.iter().map(|s| s.confirmed).sum();
        (txs - confirmed) as f64 / txs as f64
    }
}

/// Rewrites a shard's propagation model to impose the plan's partition
/// windows. A latency model keeps its link behaviour as the partition
/// base; the legacy window model (which schedules no delivery events)
/// switches to delivery-based visibility over instantaneous links — the
/// partition itself is then the only delay source. An existing partition
/// model gains the plan's windows on top of its own.
fn partitioned(
    propagation: &PropagationModel,
    windows: Vec<(cshard_primitives::SimTime, cshard_primitives::SimTime)>,
) -> Result<PropagationModel, Error> {
    let to_windows = |ws: Vec<(cshard_primitives::SimTime, cshard_primitives::SimTime)>| {
        ws.into_iter()
            .map(|(from, until)| PartitionWindow { from, until })
            .collect::<Vec<_>>()
    };
    let model = match propagation {
        PropagationModel::Window(_) => {
            PartitionModel::new(LatencyModel::INSTANT, to_windows(windows))?
        }
        PropagationModel::Latency(base) => PartitionModel::new(*base, to_windows(windows))?,
        PropagationModel::Partition(existing) => {
            let mut all: Vec<PartitionWindow> = existing.windows().to_vec();
            all.extend(to_windows(windows));
            PartitionModel::new(existing.base, all)?
        }
    };
    Ok(PropagationModel::Partition(model))
}

/// `cshard_runtime::simulate` under a [`FaultPlan`].
///
/// Builds one [`ContractShardDriver`] per spec (partitioned shards get
/// their propagation model rewritten first), wraps each in a
/// [`FaultyDriver`], runs the standard two-phase harness, and reads the
/// fault accounting back out of the wrappers.
///
/// Determinism: the result is a pure function of `(shards, config, plan)`
/// — bit-identical at any `config.scheduler`, with runtime randomness keyed
/// by `config.seed` and fault randomness keyed by `plan.seed`. Under
/// `FaultPlan::none(..)` the report fingerprint equals the unwrapped
/// `simulate`'s exactly.
pub fn run_with_faults(
    shards: &[ShardSpec],
    config: &RuntimeConfig,
    plan: &FaultPlan,
) -> Result<FaultRun, Error> {
    plan.validate()?;
    if config.block_capacity == 0 {
        return Err(Error::Config {
            field: "block_capacity",
            reason: "must be positive".into(),
        });
    }
    if let Some(spec) = shards.iter().find(|s| s.miners == 0) {
        return Err(Error::NoMiners { shard: spec.shard });
    }
    let mut drivers = Vec::with_capacity(shards.len());
    for spec in shards {
        let windows = plan.partitions_for(spec.shard);
        let driver = if windows.is_empty() {
            ContractShardDriver::new(spec, config)
        } else {
            let mut shard_config = config.clone();
            shard_config.propagation = partitioned(&config.propagation, windows)?;
            ContractShardDriver::new(spec, &shard_config)
        };
        drivers.push(FaultyDriver::new(driver, spec.shard, plan));
    }
    let outcome = Runtime::builder()
        .scheduler(config.scheduler)
        .run(drivers)?;
    let (run, finished) = (outcome.report, outcome.drivers);
    let faults = FaultReport {
        shards: finished.iter().map(|d| d.stats().clone()).collect(),
    };
    Ok(FaultRun { run, faults })
}

/// A faulted run with batched cross-shard settlement: the ordinary run
/// report, the fault accounting, the aggregate settlement accounting and
/// every crosslink each shard shipped.
#[derive(Clone, Debug)]
pub struct SettledFaultRun {
    /// The standard run report.
    pub run: RunReport,
    /// What the injected faults did.
    pub faults: FaultReport,
    /// Settlement accounting folded over all shards.
    pub settle: SettleStats,
    /// Per shard (spec order): the batches it flushed, in flush order.
    pub batches: Vec<Vec<Batch>>,
}

/// [`run_with_faults`] with batched cross-shard settlement
/// (`cshard-settle`) layered on each shard.
///
/// `transfers[i]` lists shard `i`'s outbound transfers as
/// `(local tx index, destination shard)`: each becomes eligible when its
/// transaction confirms and ships inside a crosslink batch. Partition
/// windows from the plan black out settlement pairs on *either* endpoint
/// — a flush falling inside a blackout defers to the heal and settles
/// exactly once there, which the returned [`SettledFaultRun::batches`]
/// lets callers assert transfer-for-transfer.
///
/// Determinism matches [`run_with_faults`]: the result is a pure function
/// of `(shards, transfers, config, plan)` at any `config.scheduler`.
pub fn run_with_settlement(
    shards: &[ShardSpec],
    transfers: &[Vec<(usize, ShardId)>],
    config: &RuntimeConfig,
    plan: &FaultPlan,
) -> Result<SettledFaultRun, Error> {
    plan.validate()?;
    config.settle.validate()?;
    if transfers.len() != shards.len() {
        return Err(Error::Config {
            field: "transfers",
            reason: format!(
                "one transfer list per shard: got {} lists for {} shards",
                transfers.len(),
                shards.len()
            ),
        });
    }
    if config.block_capacity == 0 {
        return Err(Error::Config {
            field: "block_capacity",
            reason: "must be positive".into(),
        });
    }
    if let Some(spec) = shards.iter().find(|s| s.miners == 0) {
        return Err(Error::NoMiners { shard: spec.shard });
    }
    let mut drivers = Vec::with_capacity(shards.len());
    for (spec, outbound) in shards.iter().zip(transfers) {
        let windows = plan.partitions_for(spec.shard);
        let mut driver = if windows.is_empty() {
            SettlingShardDriver::new(spec, config, outbound.clone())
        } else {
            let mut shard_config = config.clone();
            shard_config.propagation = partitioned(&config.propagation, windows)?;
            SettlingShardDriver::new(spec, &shard_config, outbound.clone())
        };
        // A settlement pair is blacked out while *either* endpoint is
        // partitioned: the source cannot send, the destination cannot
        // receive.
        let dests: BTreeSet<ShardId> = outbound.iter().map(|&(_, d)| d).collect();
        for dest in dests {
            let mut pair: Vec<(SimTime, SimTime)> = plan.partitions_for(spec.shard);
            pair.extend(plan.partitions_for(dest));
            driver.set_blackouts(dest, pair);
        }
        drivers.push(FaultyDriver::new(driver, spec.shard, plan));
    }
    let outcome = Runtime::builder()
        .scheduler(config.scheduler)
        .run(drivers)?;
    let settle = outcome.settle;
    let (run, finished) = (outcome.report, outcome.drivers);
    let mut shard_stats = Vec::with_capacity(finished.len());
    let mut batches = Vec::with_capacity(finished.len());
    for wrapper in finished {
        let (stats, inner) = wrapper.into_parts();
        shard_stats.push(stats);
        batches.push(inner.settled_batches().to_vec());
    }
    Ok(SettledFaultRun {
        run,
        faults: FaultReport {
            shards: shard_stats,
        },
        settle,
        batches,
    })
}

/// A faulted run with batched settlement *and* scheduled hot-account
/// migration: everything [`SettledFaultRun`] carries, plus the migration
/// accounting and per-ticket apply times.
#[derive(Clone, Debug)]
pub struct MigratedFaultRun {
    /// The standard run report.
    pub run: RunReport,
    /// What the injected faults did.
    pub faults: FaultReport,
    /// Settlement accounting folded over all shards.
    pub settle: SettleStats,
    /// Per shard (spec order): the batches it flushed, in flush order.
    pub batches: Vec<Vec<Batch>>,
    /// Migration accounting folded over all shards.
    pub migrations: MigrationStats,
    /// Per shard (spec order), per ticket (schedule order): when the
    /// ticket applied — the exactly-once surface the fault tests assert.
    pub applied: Vec<Vec<Option<SimTime>>>,
}

/// [`run_with_settlement`] with a hot-account migration schedule layered
/// on each shard (`cshard_runtime::MigratingShardDriver`).
///
/// `schedules[i]` lists shard `i`'s [`MigrationTicket`]s. Each apply
/// drains the moving account's open settlement pairs, re-keys its
/// unsubmitted transfers to the new home shard and books the move as one
/// crosslink. Partition windows from the plan black out the pair toward a
/// ticket's destination exactly as they black out settlement flushes: an
/// apply falling inside a blackout defers to the heal and applies exactly
/// once there, which [`MigratedFaultRun::applied`] lets callers assert
/// ticket-for-ticket.
///
/// Determinism matches [`run_with_settlement`]: the result is a pure
/// function of `(shards, transfers, schedules, config, plan)` at any
/// `config.scheduler`.
pub fn run_with_migration(
    shards: &[ShardSpec],
    transfers: &[Vec<(usize, ShardId)>],
    schedules: &[Vec<MigrationTicket>],
    config: &RuntimeConfig,
    plan: &FaultPlan,
) -> Result<MigratedFaultRun, Error> {
    plan.validate()?;
    config.settle.validate()?;
    if transfers.len() != shards.len() {
        return Err(Error::Config {
            field: "transfers",
            reason: format!(
                "one transfer list per shard: got {} lists for {} shards",
                transfers.len(),
                shards.len()
            ),
        });
    }
    if schedules.len() != shards.len() {
        return Err(Error::Config {
            field: "schedules",
            reason: format!(
                "one migration schedule per shard: got {} schedules for {} shards",
                schedules.len(),
                shards.len()
            ),
        });
    }
    if config.block_capacity == 0 {
        return Err(Error::Config {
            field: "block_capacity",
            reason: "must be positive".into(),
        });
    }
    if let Some(spec) = shards.iter().find(|s| s.miners == 0) {
        return Err(Error::NoMiners { shard: spec.shard });
    }
    let mut drivers = Vec::with_capacity(shards.len());
    for ((spec, outbound), schedule) in shards.iter().zip(transfers).zip(schedules) {
        let windows = plan.partitions_for(spec.shard);
        let settling = if windows.is_empty() {
            SettlingShardDriver::new(spec, config, outbound.clone())
        } else {
            let mut shard_config = config.clone();
            shard_config.propagation = partitioned(&config.propagation, windows)?;
            SettlingShardDriver::new(spec, &shard_config, outbound.clone())
        };
        let mut driver = MigratingShardDriver::new(settling, schedule.clone());
        // A pair is blacked out while *either* endpoint is partitioned —
        // settlement pairs toward transfer destinations and migration
        // pairs toward ticket destinations alike.
        let dests: BTreeSet<ShardId> = outbound
            .iter()
            .map(|&(_, d)| d)
            .chain(schedule.iter().map(|t| t.to))
            .collect();
        for dest in dests {
            let mut pair: Vec<(SimTime, SimTime)> = plan.partitions_for(spec.shard);
            pair.extend(plan.partitions_for(dest));
            driver.set_blackouts(dest, pair);
        }
        drivers.push(FaultyDriver::new(driver, spec.shard, plan));
    }
    let outcome = Runtime::builder()
        .scheduler(config.scheduler)
        .run(drivers)?;
    let settle = outcome.settle;
    let (run, finished) = (outcome.report, outcome.drivers);
    let mut shard_stats = Vec::with_capacity(finished.len());
    let mut batches = Vec::with_capacity(finished.len());
    let mut migrations = MigrationStats::default();
    let mut applied = Vec::with_capacity(finished.len());
    for wrapper in finished {
        let (stats, inner) = wrapper.into_parts();
        shard_stats.push(stats);
        batches.push(inner.inner().settled_batches().to_vec());
        migrations = migrations.merge(&inner.stats());
        applied.push(
            (0..inner.schedule().len())
                .map(|slot| inner.applied_at(slot))
                .collect(),
        );
    }
    Ok(MigratedFaultRun {
        run,
        faults: FaultReport {
            shards: shard_stats,
        },
        settle,
        batches,
        migrations,
        applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_primitives::{ShardId, SimTime};
    use cshard_runtime::{simulate, SelectionStrategy};

    fn specs() -> Vec<ShardSpec> {
        (0..4u32)
            .map(|i| ShardSpec {
                shard: ShardId::new(i),
                fees: (1..=50u64 + i as u64).collect(),
                miners: 1,
                strategy: SelectionStrategy::IdenticalGreedy,
            })
            .collect()
    }

    fn config(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn zero_fault_plan_matches_simulate_exactly() {
        let cfg = config(42);
        let plain = simulate(&specs(), &cfg).expect("valid");
        let faulted = run_with_faults(&specs(), &cfg, &FaultPlan::none(0)).expect("valid");
        assert_eq!(faulted.run.fingerprint(), plain.fingerprint());
        assert!(faulted.faults.is_clean());
        assert_eq!(faulted.unconfirmed_fraction(), 0.0);
    }

    #[test]
    fn invalid_plans_and_configs_are_rejected() {
        let bad_plan =
            FaultPlan::none(0).with_drops(ShardId::new(0), 2.0, SimTime::ZERO, SimTime::MAX);
        assert!(run_with_faults(&specs(), &config(1), &bad_plan).is_err());
        let zero_cap = RuntimeConfig {
            block_capacity: 0,
            ..config(1)
        };
        assert!(run_with_faults(&specs(), &zero_cap, &FaultPlan::none(0)).is_err());
    }

    #[test]
    fn partition_stretches_completion_of_the_partitioned_shard() {
        // A multi-miner shard under latency propagation: partitioning it
        // for a long span defers deliveries and delays completion.
        let spec = vec![ShardSpec {
            shard: ShardId::new(0),
            fees: (1..=120u64).collect(),
            miners: 3,
            strategy: SelectionStrategy::IdenticalGreedy,
        }];
        let cfg = RuntimeConfig {
            propagation: cshard_runtime::PropagationModel::Latency(
                cshard_network::LatencyModel::wide_area(),
            ),
            ..config(9)
        };
        let healthy = run_with_faults(&spec, &cfg, &FaultPlan::none(0)).expect("valid");
        let plan = FaultPlan::none(0).with_partition(
            ShardId::new(0),
            SimTime::from_secs(60),
            SimTime::from_secs(4000),
        );
        let parted = run_with_faults(&spec, &cfg, &plan).expect("valid");
        assert!(
            parted.run.completion > healthy.run.completion,
            "partition did not slow the shard: {} vs {}",
            parted.run.completion,
            healthy.run.completion
        );
        // Both still confirm everything (the partition heals).
        assert_eq!(parted.unconfirmed_fraction(), 0.0);
    }

    // ---- batched settlement under faults ----

    use cshard_runtime::SettleConfig;

    /// Two shards; shard 0 sends one transfer per tx to shard 1.
    fn settled_fixture() -> (Vec<ShardSpec>, Vec<Vec<(usize, ShardId)>>) {
        let shards = vec![
            ShardSpec::solo_greedy(ShardId::new(0), (1..=50u64).collect()),
            ShardSpec::solo_greedy(ShardId::new(1), (1..=40u64).collect()),
        ];
        let transfers = vec![
            (0..50).map(|tx| (tx, ShardId::new(1))).collect(),
            Vec::new(),
        ];
        (shards, transfers)
    }

    fn settled_config(seed: u64, cap: usize, threads: usize) -> RuntimeConfig {
        RuntimeConfig {
            settle: SettleConfig::batched(cap),
            scheduler: cshard_runtime::SchedulerConfig::new(threads),
            ..config(seed)
        }
    }

    #[test]
    fn partition_mid_batch_defers_and_settles_exactly_once_on_heal() {
        let (shards, transfers) = settled_fixture();
        let cfg = settled_config(23, 100, 1);
        // Black out the destination across the whole mining span: every
        // flush deadline fires inside the partition and must defer.
        let heal = SimTime::from_secs(20_000);
        let plan = FaultPlan::none(0).with_partition(ShardId::new(1), SimTime::ZERO, heal);
        let out = run_with_settlement(&shards, &transfers, &cfg, &plan).expect("valid");
        assert!(
            out.settle.deferred_flushes >= 1,
            "every deadline fired mid-partition: {:?}",
            out.settle
        );
        // Exactly once: each transfer slot appears in exactly one batch.
        let mut slots: Vec<u64> = out.batches[0]
            .iter()
            .flat_map(|b| b.transfers.iter().copied())
            .collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..50).collect::<Vec<u64>>());
        // And never inside the blackout.
        for b in &out.batches[0] {
            assert!(b.at >= heal, "batch flushed mid-partition at {}", b.at);
        }
        assert!(out.batches[1].is_empty());
        assert_eq!(out.settle.txs_settled, 50);
    }

    #[test]
    fn settled_fault_runs_are_thread_count_invariant() {
        let (shards, transfers) = settled_fixture();
        let plan = FaultPlan::none(9)
            .with_partition(
                ShardId::new(1),
                SimTime::from_secs(30),
                SimTime::from_secs(400),
            )
            .with_crash(
                ShardId::new(1),
                0,
                SimTime::from_secs(60),
                Some(SimTime::from_secs(120)),
            );
        let base = run_with_settlement(&shards, &transfers, &settled_config(23, 10, 1), &plan)
            .expect("valid");
        for threads in [4, 0] {
            let other =
                run_with_settlement(&shards, &transfers, &settled_config(23, 10, threads), &plan)
                    .expect("valid");
            assert_eq!(base.run.fingerprint(), other.run.fingerprint());
            assert_eq!(base.faults, other.faults);
            assert_eq!(base.settle, other.settle);
            assert_eq!(base.batches, other.batches);
        }
    }

    #[test]
    fn settlement_harness_rejects_mismatched_transfer_lists() {
        let (shards, _) = settled_fixture();
        let err = run_with_settlement(
            &shards,
            &[Vec::new()],
            &settled_config(1, 10, 1),
            &FaultPlan::none(0),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::Config {
                field: "transfers",
                ..
            }
        ));
    }

    #[test]
    fn fault_free_settled_run_matches_unfaulted_driver() {
        let (shards, transfers) = settled_fixture();
        let cfg = settled_config(23, 10, 1);
        let faulted =
            run_with_settlement(&shards, &transfers, &cfg, &FaultPlan::none(0)).expect("valid");
        assert!(faulted.faults.is_clean());
        assert_eq!(faulted.settle.txs_settled, 50);
        // Same trajectory as the bare settling driver on the plain harness.
        let bare = Runtime::builder()
            .run(vec![
                SettlingShardDriver::new(&shards[0], &cfg, transfers[0].clone()),
                SettlingShardDriver::new(&shards[1], &cfg, transfers[1].clone()),
            ])
            .expect("valid");
        assert_eq!(faulted.run.fingerprint(), bare.report.fingerprint());
        assert_eq!(faulted.settle, bare.settle);
    }

    // ---- hot-account migration under faults ----

    /// The settled fixture plus one ticket on shard 0: the account owning
    /// transfer slots 0..10 moves to shard 1 at t = 60 s.
    #[allow(clippy::type_complexity)]
    fn migrated_fixture() -> (
        Vec<ShardSpec>,
        Vec<Vec<(usize, ShardId)>>,
        Vec<Vec<MigrationTicket>>,
    ) {
        let (shards, transfers) = settled_fixture();
        let schedules = vec![
            vec![MigrationTicket {
                account: 7,
                from: ShardId::new(0),
                to: ShardId::new(1),
                at: SimTime::from_secs(60),
                transfers: (0..10).collect(),
            }],
            Vec::new(),
        ];
        (shards, transfers, schedules)
    }

    #[test]
    fn migration_mid_partition_defers_and_applies_exactly_once_on_heal() {
        let (shards, transfers, schedules) = migrated_fixture();
        let cfg = settled_config(23, 100, 1);
        // Black out the destination across the apply time: the migration
        // event fires mid-partition and must defer to the heal.
        let heal = SimTime::from_secs(20_000);
        let plan = FaultPlan::none(0).with_partition(ShardId::new(1), SimTime::ZERO, heal);
        let out = run_with_migration(&shards, &transfers, &schedules, &cfg, &plan).expect("valid");
        assert!(out.migrations.deferred >= 1, "{:?}", out.migrations);
        assert_eq!(out.migrations.scheduled, 1);
        assert_eq!(out.migrations.applied, 1, "exactly once");
        assert_eq!(out.applied[0], vec![Some(heal)], "applies at the heal");
        // The settlement ledger still covers every transfer exactly once,
        // none of it inside the blackout.
        let mut slots: Vec<u64> = out.batches[0]
            .iter()
            .flat_map(|b| b.transfers.iter().copied())
            .collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..50).collect::<Vec<u64>>());
        for b in &out.batches[0] {
            assert!(b.at >= heal, "batch flushed mid-partition at {}", b.at);
        }
    }

    #[test]
    fn migrated_fault_runs_are_thread_count_invariant() {
        let (shards, transfers, schedules) = migrated_fixture();
        let plan = FaultPlan::none(9)
            .with_partition(
                ShardId::new(1),
                SimTime::from_secs(30),
                SimTime::from_secs(400),
            )
            .with_crash(
                ShardId::new(1),
                0,
                SimTime::from_secs(60),
                Some(SimTime::from_secs(120)),
            );
        let base = run_with_migration(
            &shards,
            &transfers,
            &schedules,
            &settled_config(23, 10, 1),
            &plan,
        )
        .expect("valid");
        for threads in [4, 0] {
            let other = run_with_migration(
                &shards,
                &transfers,
                &schedules,
                &settled_config(23, 10, threads),
                &plan,
            )
            .expect("valid");
            assert_eq!(base.run.fingerprint(), other.run.fingerprint());
            assert_eq!(base.faults, other.faults);
            assert_eq!(base.settle, other.settle);
            assert_eq!(base.batches, other.batches);
            assert_eq!(base.migrations, other.migrations);
            assert_eq!(base.applied, other.applied);
        }
    }

    #[test]
    fn empty_schedules_match_run_with_settlement_exactly() {
        let (shards, transfers) = settled_fixture();
        let cfg = settled_config(23, 10, 1);
        let plan = FaultPlan::none(0).with_partition(
            ShardId::new(1),
            SimTime::from_secs(30),
            SimTime::from_secs(400),
        );
        let settled = run_with_settlement(&shards, &transfers, &cfg, &plan).expect("valid");
        let migrated =
            run_with_migration(&shards, &transfers, &[Vec::new(), Vec::new()], &cfg, &plan)
                .expect("valid");
        assert_eq!(migrated.run.fingerprint(), settled.run.fingerprint());
        assert_eq!(migrated.faults, settled.faults);
        assert_eq!(migrated.settle, settled.settle);
        assert_eq!(migrated.batches, settled.batches);
        assert_eq!(migrated.migrations, MigrationStats::default());
    }

    #[test]
    fn migration_harness_rejects_mismatched_schedule_lists() {
        let (shards, transfers) = settled_fixture();
        let err = run_with_migration(
            &shards,
            &transfers,
            &[Vec::new()],
            &settled_config(1, 10, 1),
            &FaultPlan::none(0),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::Config {
                field: "schedules",
                ..
            }
        ));
    }

    #[test]
    fn faulted_runs_are_reproducible_functions_of_plan_and_seed() {
        let cfg = config(17);
        let plan = FaultPlan::with_deadline(5, SimTime::from_secs(100_000))
            .with_crash(
                ShardId::new(1),
                0,
                SimTime::from_secs(120),
                Some(SimTime::from_secs(600)),
            )
            .with_partition(
                ShardId::new(2),
                SimTime::from_secs(60),
                SimTime::from_secs(300),
            );
        let a = run_with_faults(&specs(), &cfg, &plan).expect("valid");
        let b = run_with_faults(&specs(), &cfg, &plan).expect("valid");
        assert_eq!(a.run.fingerprint(), b.run.fingerprint());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.total_crashes(), 1);
        assert_eq!(a.faults.total_recoveries(), 1);
    }
}
