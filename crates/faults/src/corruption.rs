//! Empirical check of the paper's corruption analysis (Sec. IV-D).
//!
//! The analytic side (`cshard-security`) gives, per shard of size `n`
//! under an adversary controlling fraction `f` of mining power, the
//! probability that random assignment hands the adversary a strict
//! in-shard majority: `1 − shard_safety(n, f, Majority)`. This module
//! measures the same quantity *empirically*: mark `⌊f·M⌋` of `M` enrolled
//! miners malicious (chosen by PRF rank, so the choice is a pure function
//! of the seed and uncorrelated with the VRF keys that drive assignment),
//! run real epochs through [`EpochManager`], and count the shard-epochs
//! where the malicious enrolment actually holds a strict majority.
//!
//! The measured fraction must land within binomial sampling noise of the
//! analytic prediction — that is the chaos-suite assertion that ties the
//! simulator back to the paper's Eq. (3)–(6) bounds.

use cshard_core::EpochManager;
use cshard_crypto::Prf;
use cshard_primitives::{Error, MinerId, ShardId};
use cshard_security::{shard_safety, CorruptionThreshold};
use cshard_workload::{FeeDistribution, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// The outcome of an empirical corruption measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct CorruptionMeasurement {
    /// Enrolled miner count `M`.
    pub miners: u32,
    /// Requested adversarial fraction `f` (the realized fraction is
    /// `⌊f·M⌋ / M`).
    pub malicious_fraction: f64,
    /// Epochs run.
    pub epochs: u64,
    /// Shard-epochs observed (shards vary per epoch with the workload).
    pub shard_epochs: usize,
    /// Shard-epochs where malicious miners held a strict majority.
    pub corrupted_shard_epochs: usize,
    /// `corrupted_shard_epochs / shard_epochs`.
    pub measured_corruption: f64,
    /// Mean over all observed shard-epochs of
    /// `1 − shard_safety(n_s, f, Majority)` at each shard's actual size
    /// `n_s` — the analytic prediction for this exact run shape.
    pub analytic_corruption: f64,
    /// Epochs whose elected leader was malicious.
    pub malicious_leader_epochs: usize,
    /// `malicious_leader_epochs / epochs` — should track the realized
    /// malicious fraction, since the VRF lottery is uniform.
    pub measured_leader_fraction: f64,
}

impl CorruptionMeasurement {
    /// The realized adversarial fraction `⌊f·M⌋ / M`.
    pub fn realized_fraction(&self) -> f64 {
        (self.malicious_fraction * f64::from(self.miners)).floor() / f64::from(self.miners)
    }

    /// Binomial standard deviation of the measured corruption estimator,
    /// `sqrt(p(1−p)/N)` at the analytic `p` — the natural tolerance unit
    /// for asserting measured ≈ analytic.
    pub fn sampling_sigma(&self) -> f64 {
        let p = self.analytic_corruption;
        if self.shard_epochs == 0 {
            return 0.0;
        }
        (p * (1.0 - p) / self.shard_epochs as f64).sqrt()
    }

    /// Whether the measured corruption is within `k` binomial sigmas of
    /// the analytic prediction (plus one quantization grain `1/N` so a
    /// prediction of exactly zero still admits zero observations).
    pub fn within_sigmas(&self, k: f64) -> bool {
        let grain = 1.0 / self.shard_epochs.max(1) as f64;
        (self.measured_corruption - self.analytic_corruption).abs()
            <= k * self.sampling_sigma() + grain
    }
}

const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 99 };

/// Picks `⌊f·M⌋` malicious miners by PRF rank over the seed — a choice
/// independent of the VRF keys that drive shard assignment, as the
/// paper's model requires (the adversary corrupts miners *before* the
/// epoch randomness is drawn).
fn malicious_set(miners: u32, fraction: f64, seed: u64) -> BTreeSet<MinerId> {
    let count = (fraction * f64::from(miners)).floor() as usize;
    let prf = Prf::new(seed.to_be_bytes());
    let mut ranked: Vec<(u64, u32)> = (0..miners)
        .map(|i| {
            (
                prf.eval_mod("malicious-rank-v1", u64::from(i).to_be_bytes(), u64::MAX),
                i,
            )
        })
        .collect();
    ranked.sort_unstable();
    ranked
        .into_iter()
        .take(count)
        .map(|(_, i)| MinerId::new(i))
        .collect()
}

/// Runs `epochs` real assignment epochs with `⌊f·M⌋` malicious miners and
/// measures how often a shard ends up with a malicious strict majority,
/// against the analytic `1 − shard_safety` prediction at each shard's
/// actual size. Pure function of `(miners, malicious_fraction, epochs,
/// txs_per_epoch, seed)`.
pub fn measure_corruption(
    miners: u32,
    malicious_fraction: f64,
    epochs: u64,
    txs_per_epoch: usize,
    seed: u64,
) -> Result<CorruptionMeasurement, Error> {
    if miners == 0 {
        return Err(Error::Config {
            field: "miners",
            reason: "need at least one enrolled miner".into(),
        });
    }
    if !(0.0..=1.0).contains(&malicious_fraction) {
        return Err(Error::Config {
            field: "malicious_fraction",
            reason: format!("{malicious_fraction} outside [0, 1]"),
        });
    }
    if epochs == 0 {
        return Err(Error::Config {
            field: "epochs",
            reason: "need at least one epoch".into(),
        });
    }
    let malicious = malicious_set(miners, malicious_fraction, seed);
    let realized = malicious.len() as f64 / f64::from(miners);

    let mut mgr = EpochManager::with_miner_count(miners);
    let mut shard_epochs = 0usize;
    let mut corrupted = 0usize;
    let mut malicious_leader_epochs = 0usize;
    let mut analytic_sum = 0.0f64;
    for step in 0..epochs {
        let batch = Workload::uniform_contracts(
            txs_per_epoch,
            5,
            FEES,
            seed ^ step.wrapping_mul(0xA5A5_5A5A),
        )
        .transactions;
        let out = mgr.run_epoch(&batch);
        if malicious.contains(&out.leader) {
            malicious_leader_epochs += 1;
        }
        // Tally per-shard populations this epoch.
        let mut population: BTreeMap<ShardId, (u64, u64)> = BTreeMap::new();
        for (id, shard) in &out.shard_of {
            let entry = population.entry(*shard).or_insert((0, 0));
            entry.0 += 1;
            if malicious.contains(id) {
                entry.1 += 1;
            }
        }
        for (total, bad) in population.values() {
            shard_epochs += 1;
            // Strict majority corrupts a PoW shard (Sec. IV-D).
            if bad * 2 > *total {
                corrupted += 1;
            }
            analytic_sum += 1.0 - shard_safety(*total, realized, CorruptionThreshold::Majority);
        }
    }
    let measured_corruption = if shard_epochs == 0 {
        0.0
    } else {
        corrupted as f64 / shard_epochs as f64
    };
    let analytic_corruption = if shard_epochs == 0 {
        0.0
    } else {
        analytic_sum / shard_epochs as f64
    };
    Ok(CorruptionMeasurement {
        miners,
        malicious_fraction,
        epochs,
        shard_epochs,
        corrupted_shard_epochs: corrupted,
        measured_corruption,
        analytic_corruption,
        malicious_leader_epochs,
        measured_leader_fraction: malicious_leader_epochs as f64 / epochs as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_enrolment_measures_zero_corruption() {
        let m = measure_corruption(40, 0.0, 6, 80, 1).expect("valid");
        assert_eq!(m.corrupted_shard_epochs, 0);
        assert_eq!(m.measured_corruption, 0.0);
        assert_eq!(m.malicious_leader_epochs, 0);
        assert!(m.analytic_corruption.abs() < 1e-12);
        assert!(m.within_sigmas(3.0));
    }

    #[test]
    fn full_corruption_measures_one() {
        let m = measure_corruption(20, 1.0, 4, 60, 2).expect("valid");
        assert_eq!(m.corrupted_shard_epochs, m.shard_epochs);
        assert_eq!(m.measured_corruption, 1.0);
        assert_eq!(m.measured_leader_fraction, 1.0);
        assert!((m.analytic_corruption - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quarter_adversary_tracks_the_analytic_bound() {
        // Small shards (tens of miners over a handful of shards) keep the
        // analytic corruption probability non-trivial, so this exercises
        // the comparison away from both endpoints.
        let m = measure_corruption(60, 0.25, 24, 100, 3).expect("valid");
        assert!(m.shard_epochs > 24, "multiple shards per epoch expected");
        assert!(
            m.within_sigmas(4.0),
            "measured {} vs analytic {} (sigma {})",
            m.measured_corruption,
            m.analytic_corruption,
            m.sampling_sigma()
        );
        // The VRF lottery is uniform: malicious leadership tracks f.
        let expected = m.realized_fraction();
        let sigma = (expected * (1.0 - expected) / m.epochs as f64).sqrt();
        assert!(
            (m.measured_leader_fraction - expected).abs() <= 4.0 * sigma + 1.0 / m.epochs as f64,
            "leader fraction {} vs f {}",
            m.measured_leader_fraction,
            expected
        );
    }

    #[test]
    fn deterministic_across_replays() {
        let a = measure_corruption(30, 0.3, 8, 70, 9).expect("valid");
        let b = measure_corruption(30, 0.3, 8, 70, 9).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn malicious_choice_is_seed_keyed() {
        let a = malicious_set(50, 0.3, 1);
        let b = malicious_set(50, 0.3, 2);
        assert_eq!(a.len(), 15);
        assert_eq!(b.len(), 15);
        assert_ne!(a, b, "different seeds pick different miners");
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(measure_corruption(0, 0.2, 4, 50, 1).is_err());
        assert!(measure_corruption(10, 1.5, 4, 50, 1).is_err());
        assert!(measure_corruption(10, 0.2, 0, 50, 1).is_err());
    }
}
