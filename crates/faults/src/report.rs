//! What the injected faults did to a run.
//!
//! The ordinary [`cshard_runtime::RunReport`] stays exactly the
//! fingerprinted surface it always was; everything fault-specific is
//! accumulated inside the wrappers and read out here after the run.

use cshard_primitives::{ShardId, SimTime};

/// Per-shard fault accounting, collected by one
/// [`crate::FaultyDriver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFaultStats {
    /// The shard these stats belong to.
    pub shard: ShardId,
    /// Block-found ticks suppressed because their miner was crashed.
    pub suppressed_blocks: usize,
    /// Delivery events dropped by an active drop rule.
    pub dropped_deliveries: usize,
    /// Delivery events deferred by an active delay rule.
    pub delayed_deliveries: usize,
    /// Crash controls that fired.
    pub crashes: usize,
    /// Recovery controls that fired.
    pub recoveries: usize,
    /// Per recovery, the miner's downtime: recovery instant minus crash
    /// instant (the recovered miner's first tick fires at the recovery
    /// instant, so this is also the gap in its block production).
    pub recovery_latencies: Vec<SimTime>,
    /// The plan deadline fired before the shard finished its workload.
    pub timed_out: bool,
}

impl ShardFaultStats {
    /// Fresh, all-zero stats for a shard.
    pub fn new(shard: ShardId) -> Self {
        ShardFaultStats {
            shard,
            suppressed_blocks: 0,
            dropped_deliveries: 0,
            delayed_deliveries: 0,
            crashes: 0,
            recoveries: 0,
            recovery_latencies: Vec::new(),
            timed_out: false,
        }
    }

    /// Whether any fault machinery actually fired on this shard.
    pub fn any_faults(&self) -> bool {
        self.suppressed_blocks > 0
            || self.dropped_deliveries > 0
            || self.delayed_deliveries > 0
            || self.crashes > 0
            || self.recoveries > 0
            || self.timed_out
    }
}

/// The run-wide fault report: one entry per shard, in shard-driver order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultReport {
    /// Per-shard stats, aligned with the run report's shard order.
    pub shards: Vec<ShardFaultStats>,
}

impl FaultReport {
    /// Total suppressed block ticks across shards.
    pub fn total_suppressed(&self) -> usize {
        self.shards.iter().map(|s| s.suppressed_blocks).sum()
    }

    /// Total dropped deliveries across shards.
    pub fn total_dropped(&self) -> usize {
        self.shards.iter().map(|s| s.dropped_deliveries).sum()
    }

    /// Total delayed deliveries across shards.
    pub fn total_delayed(&self) -> usize {
        self.shards.iter().map(|s| s.delayed_deliveries).sum()
    }

    /// Total crashes across shards.
    pub fn total_crashes(&self) -> usize {
        self.shards.iter().map(|s| s.crashes).sum()
    }

    /// Total recoveries across shards.
    pub fn total_recoveries(&self) -> usize {
        self.shards.iter().map(|s| s.recoveries).sum()
    }

    /// The worst miner downtime observed anywhere (`None` when no
    /// recovery fired).
    pub fn max_recovery_latency(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .flat_map(|s| s.recovery_latencies.iter().copied())
            .max()
    }

    /// Shards whose deadline fired before completion.
    pub fn timed_out_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.timed_out).count()
    }

    /// True when no fault machinery fired anywhere — the signature of a
    /// zero-fault (transparent) plan.
    pub fn is_clean(&self) -> bool {
        !self.shards.iter().any(ShardFaultStats::any_faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_shards() {
        let mut a = ShardFaultStats::new(ShardId::new(0));
        a.suppressed_blocks = 3;
        a.crashes = 1;
        a.recoveries = 1;
        a.recovery_latencies = vec![SimTime::from_millis(500)];
        let mut b = ShardFaultStats::new(ShardId::new(1));
        b.dropped_deliveries = 2;
        b.delayed_deliveries = 4;
        b.timed_out = true;
        b.recovery_latencies = vec![SimTime::from_millis(900)];
        let report = FaultReport { shards: vec![a, b] };
        assert_eq!(report.total_suppressed(), 3);
        assert_eq!(report.total_dropped(), 2);
        assert_eq!(report.total_delayed(), 4);
        assert_eq!(report.total_crashes(), 1);
        assert_eq!(report.total_recoveries(), 1);
        assert_eq!(
            report.max_recovery_latency(),
            Some(SimTime::from_millis(900))
        );
        assert_eq!(report.timed_out_shards(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_report_detects_no_faults() {
        let report = FaultReport {
            shards: vec![
                ShardFaultStats::new(ShardId::new(0)),
                ShardFaultStats::new(ShardId::new(1)),
            ],
        };
        assert!(report.is_clean());
        assert_eq!(report.max_recovery_latency(), None);
    }
}
