//! The comparison schemes of Sec. VI.
//!
//! * [`random_merge`](mod@random_merge) — the randomized merging baseline of Sec. VI-C2:
//!   miners in small shards merge with probability ½, stopping at the first
//!   stable (satisfying) realization.
//! * [`chainspace`] — the ChainSpace model: uniform random transaction
//!   placement over a fixed shard count, run as a real
//!   [`cshard_runtime::ProtocolDriver`] whose 2PC validation rounds are
//!   scheduled events booking cross-shard communication (≥ 2 rounds per
//!   cross-shard transaction, O(N²) bits per round) into
//!   [`cshard_network::CommStats`] as they fire. Fig. 4(a)/(b).
//! * [`optimal`] — the oracles of Sec. VI-E: the optimal number of new
//!   shards (every new shard exactly `L`) and the optimal number of
//!   distinct transaction sets (every miner distinct), plus a first-fit
//!   packing that *constructs* a near-optimal merge partition for ablation
//!   comparisons.
//!
//! The Ethereum baseline (all miners greedily pick the same transactions)
//! is not a separate algorithm — it is the `IdenticalGreedy` strategy of
//! the core runtime, run on a single shard.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chainspace;
pub mod optimal;
pub mod random_merge;

pub use chainspace::{ChainspaceDriver, ChainspacePlacement, CrossTx, CROSS_SHARD_ROUNDS_PER_TX};
pub use optimal::{first_fit_partition, optimal_distinct_sets, optimal_new_shards};
pub use random_merge::{random_merge, RandomMergeOutcome};
