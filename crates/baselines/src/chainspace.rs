//! The ChainSpace comparison model (Sec. VI-B2, Fig. 4(a)/(b)).
//!
//! ChainSpace "separates miners and transactions into shards randomly,
//! incurring new cross-shard consensus protocols and heavy cross-shard
//! communications". Fig. 4(b) measures only how the *communication count*
//! grows with the number of k-input transactions, so the model here
//! implements exactly the stated complexity:
//!
//! * transactions are placed into shards uniformly at random ("in
//!   ChainSpace, a 3-input transaction will be randomly separated into a
//!   shard");
//! * validating a k-input transaction needs the account state of up to `k`
//!   shards; when more than one shard is involved, the S-BAC style
//!   commit runs **two rounds** of cross-shard leader communication
//!   (intra-shard consensus → cross-shard accept), each round carrying
//!   O(N²) bits among the N participating nodes (Sec. VII).

use cshard_crypto::Prf;
use cshard_ledger::Transaction;
use cshard_network::{CommKind, CommStats, LatencyModel};
use cshard_primitives::{Error, ShardId, SimTime};
use cshard_runtime::{
    Batch, ContractShardDriver, Ctx, Event, FlushOutcome, ProtocolDriver, RuntimeConfig,
    SettleStats, SettlementBatcher, ShardReport, ShardSpec, Submit,
};
use cshard_sim::SimRng;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Rounds of cross-shard leader communication per cross-shard transaction
/// ("to validate one cross-shard transaction, there will be at least 2
/// rounds of cross-shard communication", Sec. VII).
pub const CROSS_SHARD_ROUNDS_PER_TX: u64 = 2;

/// A ChainSpace-style random placement of a workload over `shards` shards.
#[derive(Clone, Debug)]
pub struct ChainspacePlacement {
    /// Number of shards.
    pub shards: usize,
    /// Home (output) shard of each transaction, by transaction index.
    pub home_shard: Vec<ShardId>,
    /// Input shards touched by each transaction (deduplicated, includes the
    /// home shard).
    pub touched: Vec<Vec<ShardId>>,
}

impl ChainspacePlacement {
    /// Places `txs` uniformly at random over `shards` shards. Each input
    /// account of a k-input transaction is (as in ChainSpace's random state
    /// partition) independently located in a random shard.
    pub fn place(txs: &[Transaction], shards: usize, seed: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut home_shard = Vec::with_capacity(txs.len());
        let mut touched = Vec::with_capacity(txs.len());
        for tx in txs {
            let home = ShardId::new(rng.gen_range(0..shards as u32));
            let mut set = vec![home];
            // Each further input lives in an independently random shard.
            for _ in 1..tx.kind.input_count() {
                let s = ShardId::new(rng.gen_range(0..shards as u32));
                if !set.contains(&s) {
                    set.push(s);
                }
            }
            home_shard.push(home);
            touched.push(set);
        }
        ChainspacePlacement {
            shards,
            home_shard,
            touched,
        }
    }

    /// Whether transaction `i` is cross-shard (touches > 1 shard).
    pub fn is_cross_shard(&self, i: usize) -> bool {
        self.touched[i].len() > 1
    }

    /// Number of cross-shard transactions.
    pub fn cross_shard_count(&self) -> usize {
        (0..self.touched.len())
            .filter(|&i| self.is_cross_shard(i))
            .count()
    }

    /// Books the validation communication into `stats`: two rounds per
    /// cross-shard transaction, attributed to its home shard (the shard
    /// that drives the commit). Single-shard transactions cost nothing.
    pub fn record_validation_communication(&self, stats: &CommStats) {
        for i in 0..self.touched.len() {
            if self.is_cross_shard(i) {
                stats.record_many(
                    self.home_shard[i],
                    CommKind::CrossShardValidation,
                    CROSS_SHARD_ROUNDS_PER_TX,
                );
            }
        }
    }

    /// Estimated message-bit volume of the validation traffic: per
    /// cross-shard transaction, `rounds × N²` units where `N` is the number
    /// of nodes involved (`nodes_per_shard × touched shards`) — the O(N²)
    /// growth Sec. VII quotes.
    pub fn message_volume(&self, nodes_per_shard: usize) -> u64 {
        (0..self.touched.len())
            .filter(|&i| self.is_cross_shard(i))
            .map(|i| {
                let n = (self.touched[i].len() * nodes_per_shard) as u64;
                CROSS_SHARD_ROUNDS_PER_TX * n * n
            })
            .sum()
    }

    /// Transaction indices grouped by home shard — the per-shard queues a
    /// throughput run feeds into the runtime.
    pub fn shard_tx_indices(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.shards];
        for (i, s) in self.home_shard.iter().enumerate() {
            groups[s.0 as usize].push(i);
        }
        groups
    }

    /// Builds one [`ChainspaceDriver`] per shard over this placement:
    /// each shard mines its home queue (solo greedy, as Fig. 4(a) runs it)
    /// and drives the 2PC validation rounds of its cross-shard
    /// transactions as scheduled events, booking each round into the
    /// run's `CommStats` as it fires. `fees` are the workload's fees by
    /// global transaction index; `latency` spaces the validation rounds.
    ///
    /// When `config.settle` enables batching, the per-round booking is
    /// replaced by crosslink settlement: the commit still runs its two
    /// rounds, but the cross-shard messaging toward each foreign shard is
    /// handed to a [`SettlementBatcher`] and ships one
    /// [`CommKind::Crosslink`] per flushed batch.
    pub fn drivers(
        &self,
        fees: &[u64],
        config: &RuntimeConfig,
        latency: LatencyModel,
    ) -> Vec<ChainspaceDriver> {
        self.shard_tx_indices()
            .into_iter()
            .enumerate()
            .map(|(s, idxs)| {
                let shard = ShardId::new(s as u32);
                let local_fees: Vec<u64> = idxs.iter().map(|&i| fees[i]).collect();
                let cross: Vec<CrossTx> = idxs
                    .into_iter()
                    .filter(|&i| self.is_cross_shard(i))
                    .map(|i| CrossTx {
                        tx: i,
                        foreign: self.touched[i]
                            .iter()
                            .copied()
                            .filter(|&t| t != self.home_shard[i])
                            .collect(),
                    })
                    .collect();
                ChainspaceDriver::new(shard, local_fees, cross, config, latency)
            })
            .collect()
    }
}

/// One cross-shard transaction homed at a driver's shard: its global
/// workload index and the foreign shards its inputs touch (home
/// excluded). The foreign list is what the batched settlement path keys
/// its per-destination crosslinks by.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrossTx {
    /// Global transaction index in the workload.
    pub tx: usize,
    /// Foreign input shards (deduplicated, home shard excluded).
    pub foreign: Vec<ShardId>,
}

/// One ChainSpace shard as a [`ProtocolDriver`]: home-queue mining plus
/// the S-BAC style two-round cross-shard commit, run as real scheduled
/// events on the shared loop.
///
/// The driver composes a [`ContractShardDriver`] (the shard's chain, with
/// the same `(seed, shard)` RNG streams a plain sharded run would use —
/// so the mining trajectory, and hence Fig. 4(a)'s throughput, is
/// unchanged from the closed-form era) with a 2PC pipeline: an
/// [`Event::EpochAdvance`] kick-off injects the cross-shard transactions,
/// each [`Event::TxInjected`] starts that transaction's first
/// [`Event::ValidationRound`], and every round books one communication
/// time into the run's `CommStats` *as it fires* — Fig. 4(b)'s accounting
/// is emitted from inside the loop, not reconstructed afterwards.
pub struct ChainspaceDriver {
    mining: ContractShardDriver,
    shard: ShardId,
    /// Cross-shard transactions homed here (sorted by global index).
    cross_txs: Vec<CrossTx>,
    latency: LatencyModel,
    /// Round-spacing stream, derived from `(seed, shard)` by the PRF —
    /// independent of the mining streams, so validation never perturbs
    /// block production.
    vrng: SimRng,
    /// Protocol events still owed before the shard's 2PC work is done.
    outstanding: usize,
    rounds_recorded: u64,
    /// Batched settlement (`Some` iff the run's settle config enables
    /// it). `None` keeps the per-round booking path byte-identical to the
    /// pre-settlement driver.
    settle: Option<SettlementBatcher>,
    /// Crosslinks shipped, in flush order (batched mode only).
    settled: Vec<Batch>,
}

impl ChainspaceDriver {
    /// A shard driver over its home-queue `fees` (local order) and its
    /// cross-shard transactions.
    pub fn new(
        shard: ShardId,
        fees: Vec<u64>,
        cross_txs: Vec<CrossTx>,
        config: &RuntimeConfig,
        latency: LatencyModel,
    ) -> ChainspaceDriver {
        let spec = ShardSpec::solo_greedy(shard, fees);
        let prf = Prf::new(config.seed.to_be_bytes());
        let vrng = SimRng::from_seed_bytes(
            *prf.eval("chainspace-2pc-v1", shard.0.to_be_bytes())
                .as_bytes(),
        );
        let settle = config
            .settle
            .enabled
            .then(|| SettlementBatcher::new(shard, &config.settle));
        ChainspaceDriver {
            mining: ContractShardDriver::new(&spec, config),
            shard,
            cross_txs,
            latency,
            vrng,
            outstanding: 0,
            rounds_recorded: 0,
            settle,
            settled: Vec::new(),
        }
    }

    /// Communication rounds this driver has booked so far (2 per
    /// cross-shard transaction once the run completes; always 0 in
    /// batched mode, where crosslinks carry the messaging instead).
    pub fn rounds_recorded(&self) -> u64 {
        self.rounds_recorded
    }

    /// Crosslink batches this shard shipped (empty when settlement is
    /// disabled).
    pub fn settled_batches(&self) -> &[Batch] {
        &self.settled
    }

    /// Installs partition blackout windows toward `dest` on the batched
    /// settlement path (no-op when settlement is disabled).
    pub fn set_blackouts(&mut self, dest: ShardId, windows: Vec<(SimTime, SimTime)>) {
        if let Some(b) = self.settle.as_mut() {
            b.set_blackouts(dest, windows);
        }
    }

    fn round_delay(&mut self) -> SimTime {
        self.latency.delay(self.vrng.unit())
    }

    /// Books one crosslink for a flushed batch and logs it.
    fn ship(&mut self, batch: Batch, ctx: &mut Ctx) {
        ctx.comm().record(self.shard, CommKind::Crosslink);
        self.settled.push(batch);
    }

    /// Final-round hook in batched mode: hand the committed transaction's
    /// messaging toward each foreign shard to the batcher.
    fn submit_transfers(&mut self, now: SimTime, tx: usize, ctx: &mut Ctx) {
        let Ok(slot) = self.cross_txs.binary_search_by_key(&tx, |c| c.tx) else {
            return;
        };
        let foreign = self.cross_txs[slot].foreign.clone();
        for dest in foreign {
            let Some(batcher) = self.settle.as_mut() else {
                return;
            };
            match batcher.submit(now, dest, tx as u64) {
                Submit::Queued => {}
                Submit::Arm(at) => ctx.schedule(at, Event::SettlementFlush { dest }),
                Submit::Flushed(batch) => self.ship(batch, ctx),
            }
        }
    }
}

impl ProtocolDriver for ChainspaceDriver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.mining.on_start(ctx);
        if !self.cross_txs.is_empty() {
            // The commit pipeline opens with an epoch kick-off that injects
            // this shard's cross-shard transactions.
            ctx.schedule(SimTime::ZERO, Event::EpochAdvance { epoch: 0 });
            self.outstanding = 1;
        }
    }

    fn on_event(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        match ev {
            Event::EpochAdvance { .. } => {
                self.outstanding -= 1;
                self.outstanding += self.cross_txs.len();
                for i in 0..self.cross_txs.len() {
                    ctx.schedule(
                        now,
                        Event::TxInjected {
                            tx: self.cross_txs[i].tx,
                        },
                    );
                }
            }
            Event::TxInjected { tx } => {
                let d = self.round_delay();
                ctx.schedule_in(d, Event::ValidationRound { tx, round: 1 });
            }
            Event::ValidationRound { tx, round } => {
                if self.settle.is_none() {
                    // One round of cross-shard leader communication,
                    // attributed to the home shard that drives the commit
                    // (Sec. VII). Batched mode books crosslinks at flush
                    // time instead, never per round.
                    ctx.comm()
                        .record_many(self.shard, CommKind::CrossShardValidation, 1);
                    self.rounds_recorded += 1;
                }
                if u64::from(round) < CROSS_SHARD_ROUNDS_PER_TX {
                    let d = self.round_delay();
                    ctx.schedule_in(
                        d,
                        Event::ValidationRound {
                            tx,
                            round: round + 1,
                        },
                    );
                } else {
                    self.outstanding -= 1;
                    if self.settle.is_some() {
                        self.submit_transfers(now, tx, ctx);
                    }
                }
            }
            Event::SettlementFlush { dest } => {
                let Some(batcher) = self.settle.as_mut() else {
                    return Err(Error::UnexpectedEvent {
                        driver: "ChainspaceDriver",
                        event: format!("{ev:?}"),
                    });
                };
                match batcher.on_flush(now, dest) {
                    FlushOutcome::Stale => {}
                    FlushOutcome::Deferred(at) => ctx.schedule(at, Event::SettlementFlush { dest }),
                    FlushOutcome::Flushed(batch) => self.ship(batch, ctx),
                }
            }
            mining_ev @ (Event::BlockFound { .. } | Event::BlockDelivered { .. }) => {
                self.mining.on_event(now, mining_ev, ctx)?;
            }
            other @ (Event::Fault { .. } | Event::Migration { .. }) => {
                return Err(Error::UnexpectedEvent {
                    driver: "ChainspaceDriver",
                    event: format!("{other:?}"),
                })
            }
        }
        Ok(())
    }

    fn done(&self) -> bool {
        self.mining.done()
            && self.outstanding == 0
            && self.settle.as_ref().is_none_or(|b| b.is_empty())
    }

    fn completion(&self) -> Option<SimTime> {
        self.mining.completion()
    }

    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        self.mining.report(events, wall)
    }

    fn settle_stats(&self) -> Option<SettleStats> {
        self.settle.as_ref().map(SettlementBatcher::stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_workload::{FeeDistribution, Workload};

    fn three_input_txs(n: usize) -> Vec<Transaction> {
        Workload::three_input(n, 3, FeeDistribution::Constant(5), 1).transactions
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let txs = three_input_txs(50);
        let a = ChainspacePlacement::place(&txs, 9, 7);
        let b = ChainspacePlacement::place(&txs, 9, 7);
        assert_eq!(a.home_shard, b.home_shard);
        assert_eq!(a.home_shard.len(), 50);
        let groups = a.shard_tx_indices();
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 50);
    }

    #[test]
    fn three_input_txs_touch_up_to_three_shards() {
        let txs = three_input_txs(200);
        let p = ChainspacePlacement::place(&txs, 9, 3);
        for t in &p.touched {
            assert!((1..=3).contains(&t.len()));
        }
        // With 9 shards, the vast majority of 3-input txs are cross-shard.
        assert!(p.cross_shard_count() > 180, "{}", p.cross_shard_count());
    }

    #[test]
    fn single_shard_means_no_cross_shard_traffic() {
        let txs = three_input_txs(40);
        let p = ChainspacePlacement::place(&txs, 1, 3);
        assert_eq!(p.cross_shard_count(), 0);
        let stats = CommStats::new();
        p.record_validation_communication(&stats);
        assert_eq!(stats.total(), 0);
        assert_eq!(p.message_volume(4), 0);
    }

    #[test]
    fn communication_grows_linearly_with_tx_count() {
        // The Fig. 4(b) shape: per-shard communication ≈ 2·X/9 for X
        // cross-shard transactions.
        let stats = CommStats::new();
        let txs = three_input_txs(900);
        let p = ChainspacePlacement::place(&txs, 9, 5);
        p.record_validation_communication(&stats);
        assert_eq!(
            stats.total(),
            CROSS_SHARD_ROUNDS_PER_TX * p.cross_shard_count() as u64
        );
        let per_shard = stats.per_shard_average(9);
        let expected = 2.0 * p.cross_shard_count() as f64 / 9.0;
        assert!((per_shard - expected).abs() < 1e-9);
    }

    #[test]
    fn message_volume_is_quadratic_in_participants() {
        let txs = three_input_txs(10);
        let p = ChainspacePlacement::place(&txs, 9, 2);
        let v1 = p.message_volume(1);
        let v4 = p.message_volume(4);
        // 4× the nodes → 16× the volume.
        assert_eq!(v4, v1 * 16);
    }

    #[test]
    fn single_input_txs_are_never_cross_shard() {
        let w = Workload::uniform_contracts(60, 3, FeeDistribution::Constant(2), 4);
        let p = ChainspacePlacement::place(&w.transactions, 9, 9);
        assert_eq!(p.cross_shard_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ChainspacePlacement::place(&[], 0, 0);
    }

    // ---- the event-driven driver (Fig. 4(b) accounting from inside the loop) ----

    use cshard_runtime::Runtime;
    use cshard_workload::Workload as W;

    fn run_drivers(count: usize, shards: usize, seed: u64) -> (ChainspacePlacement, CommStats) {
        let w = W::three_input(count, 3, FeeDistribution::Constant(5), seed);
        let p = ChainspacePlacement::place(&w.transactions, shards, seed);
        let cfg = RuntimeConfig {
            seed,
            mean_block_interval: SimTime::from_millis(132), // 10 txs / 76 tps
            ..RuntimeConfig::default()
        };
        let fees = w.fees();
        let outcome = Runtime::builder()
            .comm_stats(CommStats::new())
            .run(p.drivers(&fees, &cfg, LatencyModel::wide_area()))
            .expect("well-formed");
        // Mining still confirms the whole workload under the driver.
        assert_eq!(outcome.report.total_txs(), count);
        assert!(outcome.report.shards.iter().all(|s| s.confirmed == s.txs));
        (p, outcome.comm)
    }

    #[test]
    fn driver_emits_the_papers_two_x_over_nine_line() {
        // The Fig. 4(b) pin: per-shard communication = 2·X/9 for X
        // cross-shard transactions over 9 shards, now emitted by the
        // driver during the run rather than booked post-hoc.
        let (p, stats) = run_drivers(300, 9, 5);
        let x = p.cross_shard_count() as u64;
        assert_eq!(stats.total(), CROSS_SHARD_ROUNDS_PER_TX * x);
        assert_eq!(stats.for_kind(CommKind::CrossShardValidation), 2 * x);
        let per_shard = stats.per_shard_average(9);
        assert!((per_shard - 2.0 * x as f64 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn driver_accounting_matches_the_closed_form() {
        // The retained closed-form bookkeeping and the event-driven runs
        // must agree exactly, shard by shard.
        let (p, from_driver) = run_drivers(200, 9, 11);
        let closed_form = CommStats::new();
        p.record_validation_communication(&closed_form);
        assert_eq!(from_driver.total(), closed_form.total());
        for s in 0..9 {
            assert_eq!(
                from_driver.for_shard(ShardId::new(s)),
                closed_form.for_shard(ShardId::new(s)),
                "shard {s} diverged"
            );
        }
    }

    #[test]
    fn driver_mining_matches_plain_sharded_run() {
        // Validation events ride alongside mining without perturbing it:
        // the confirmation trajectory equals a plain solo-greedy run of
        // the same home queues (same (seed, shard) RNG streams).
        let w = W::three_input(150, 3, FeeDistribution::Constant(5), 2);
        let p = ChainspacePlacement::place(&w.transactions, 4, 2);
        let cfg = RuntimeConfig {
            seed: 2,
            ..RuntimeConfig::default()
        };
        let fees = w.fees();
        let driven = Runtime::builder()
            .run(p.drivers(&fees, &cfg, LatencyModel::wide_area()))
            .expect("well-formed")
            .report;
        let specs: Vec<ShardSpec> = p
            .shard_tx_indices()
            .into_iter()
            .enumerate()
            .map(|(s, idxs)| {
                ShardSpec::solo_greedy(
                    ShardId::new(s as u32),
                    idxs.into_iter().map(|i| fees[i]).collect(),
                )
            })
            .collect();
        let plain = cshard_runtime::simulate(&specs, &cfg).expect("valid test config");
        assert_eq!(driven.completion, plain.completion);
        for (d, q) in driven.shards.iter().zip(&plain.shards) {
            assert_eq!(d.completion, q.completion);
            assert_eq!(d.confirmed, q.confirmed);
        }
    }

    // ---- batched settlement (async crosslinks) over the same placement ----

    use cshard_runtime::SettleConfig;

    fn settled_outcome(
        count: usize,
        shards: usize,
        seed: u64,
        settle: SettleConfig,
        threads: usize,
    ) -> (
        ChainspacePlacement,
        cshard_runtime::RunOutcome<ChainspaceDriver>,
    ) {
        let w = W::three_input(count, 3, FeeDistribution::Constant(5), seed);
        let p = ChainspacePlacement::place(&w.transactions, shards, seed);
        let cfg = RuntimeConfig {
            seed,
            mean_block_interval: SimTime::from_millis(132),
            settle,
            ..RuntimeConfig::default()
        };
        let fees = w.fees();
        let outcome = Runtime::builder()
            .threads(threads)
            .comm_stats(CommStats::new())
            .run(p.drivers(&fees, &cfg, LatencyModel::wide_area()))
            .expect("well-formed drivers");
        (p, outcome)
    }

    /// A batched settle config whose timeout comfortably exceeds the
    /// run's span, so batches fill instead of draining per window.
    fn wide_batched(cap: usize) -> SettleConfig {
        SettleConfig {
            timeout: SimTime::from_secs(10),
            ..SettleConfig::batched(cap)
        }
    }

    #[test]
    fn batched_mode_settles_every_foreign_leg_exactly_once() {
        let (p, outcome) = settled_outcome(300, 9, 5, wide_batched(100), 1);
        // Expected multiset: one transfer per (home tx, foreign shard) leg.
        let mut expected: Vec<(ShardId, ShardId, u64)> = (0..p.touched.len())
            .filter(|&i| p.is_cross_shard(i))
            .flat_map(|i| {
                let home = p.home_shard[i];
                p.touched[i]
                    .iter()
                    .copied()
                    .filter(move |&s| s != home)
                    .map(move |s| (home, s, i as u64))
            })
            .collect();
        expected.sort_unstable();
        let mut settled: Vec<(ShardId, ShardId, u64)> = outcome
            .drivers
            .iter()
            .flat_map(|d| d.settled_batches())
            .flat_map(|b| b.transfers.iter().map(|&t| (b.source, b.dest, t)))
            .collect();
        settled.sort_unstable();
        assert_eq!(settled, expected);
        // Crosslinks are the only messaging; per-round booking is off.
        assert_eq!(outcome.comm.for_kind(CommKind::CrossShardValidation), 0);
        assert_eq!(
            outcome.comm.for_kind(CommKind::Crosslink),
            outcome.settle.batches
        );
        assert_eq!(outcome.settle.txs_settled, expected.len() as u64);
    }

    #[test]
    fn cap_100_cuts_messages_at_least_ten_x() {
        let count = 600;
        let (p, baseline) = settled_outcome(count, 9, 5, SettleConfig::disabled(), 1);
        let x = p.cross_shard_count() as u64;
        assert_eq!(baseline.comm.total(), CROSS_SHARD_ROUNDS_PER_TX * x);
        let (_, batched) = settled_outcome(count, 9, 5, wide_batched(100), 1);
        let links = batched.comm.total();
        assert!(
            links * 10 <= baseline.comm.total(),
            "cap 100 must cut messages 10x: {links} crosslinks vs {} rounds",
            baseline.comm.total()
        );
        // And batching never changes the mining trajectory.
        assert_eq!(baseline.report.completion, batched.report.completion);
    }

    #[test]
    fn batched_run_is_thread_count_independent() {
        let base = settled_outcome(200, 9, 3, wide_batched(50), 1).1;
        for threads in [4, 0] {
            let other = settled_outcome(200, 9, 3, wide_batched(50), threads).1;
            assert_eq!(base.report.fingerprint(), other.report.fingerprint());
            assert_eq!(base.settle, other.settle);
            assert_eq!(base.comm.snapshot(), other.comm.snapshot());
            for (a, b) in base.drivers.iter().zip(&other.drivers) {
                assert_eq!(a.settled_batches(), b.settled_batches());
            }
        }
    }

    #[test]
    fn disabled_settlement_leaves_the_driver_untouched() {
        let (p, outcome) = settled_outcome(150, 9, 2, SettleConfig::disabled(), 1);
        assert!(outcome.settle.is_empty());
        assert!(outcome.drivers.iter().all(|d| d.settle_stats().is_none()));
        assert!(outcome
            .drivers
            .iter()
            .all(|d| d.settled_batches().is_empty()));
        assert_eq!(outcome.comm.for_kind(CommKind::Crosslink), 0);
        assert_eq!(
            outcome.comm.total(),
            CROSS_SHARD_ROUNDS_PER_TX * p.cross_shard_count() as u64
        );
    }

    #[test]
    fn driver_run_is_thread_count_independent() {
        let mk = |threads: usize| {
            let w = W::three_input(120, 3, FeeDistribution::Constant(5), 7);
            let p = ChainspacePlacement::place(&w.transactions, 9, 7);
            let cfg = RuntimeConfig {
                seed: 7,
                scheduler: cshard_runtime::SchedulerConfig::new(threads),
                ..RuntimeConfig::default()
            };
            let fees = w.fees();
            let outcome = Runtime::builder()
                .scheduler(cfg.scheduler)
                .comm_stats(CommStats::new())
                .run(p.drivers(&fees, &cfg, LatencyModel::wide_area()))
                .expect("well-formed");
            (outcome.report.fingerprint(), outcome.comm.total())
        };
        assert_eq!(mk(1), mk(4));
    }
}
