//! The ChainSpace comparison model (Sec. VI-B2, Fig. 4(a)/(b)).
//!
//! ChainSpace "separates miners and transactions into shards randomly,
//! incurring new cross-shard consensus protocols and heavy cross-shard
//! communications". Fig. 4(b) measures only how the *communication count*
//! grows with the number of k-input transactions, so the model here
//! implements exactly the stated complexity:
//!
//! * transactions are placed into shards uniformly at random ("in
//!   ChainSpace, a 3-input transaction will be randomly separated into a
//!   shard");
//! * validating a k-input transaction needs the account state of up to `k`
//!   shards; when more than one shard is involved, the S-BAC style
//!   commit runs **two rounds** of cross-shard leader communication
//!   (intra-shard consensus → cross-shard accept), each round carrying
//!   O(N²) bits among the N participating nodes (Sec. VII).

use cshard_ledger::Transaction;
use cshard_network::{CommKind, CommStats};
use cshard_primitives::ShardId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Rounds of cross-shard leader communication per cross-shard transaction
/// ("to validate one cross-shard transaction, there will be at least 2
/// rounds of cross-shard communication", Sec. VII).
pub const CROSS_SHARD_ROUNDS_PER_TX: u64 = 2;

/// A ChainSpace-style random placement of a workload over `shards` shards.
#[derive(Clone, Debug)]
pub struct ChainspacePlacement {
    /// Number of shards.
    pub shards: usize,
    /// Home (output) shard of each transaction, by transaction index.
    pub home_shard: Vec<ShardId>,
    /// Input shards touched by each transaction (deduplicated, includes the
    /// home shard).
    pub touched: Vec<Vec<ShardId>>,
}

impl ChainspacePlacement {
    /// Places `txs` uniformly at random over `shards` shards. Each input
    /// account of a k-input transaction is (as in ChainSpace's random state
    /// partition) independently located in a random shard.
    pub fn place(txs: &[Transaction], shards: usize, seed: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut home_shard = Vec::with_capacity(txs.len());
        let mut touched = Vec::with_capacity(txs.len());
        for tx in txs {
            let home = ShardId::new(rng.gen_range(0..shards as u32));
            let mut set = vec![home];
            // Each further input lives in an independently random shard.
            for _ in 1..tx.kind.input_count() {
                let s = ShardId::new(rng.gen_range(0..shards as u32));
                if !set.contains(&s) {
                    set.push(s);
                }
            }
            home_shard.push(home);
            touched.push(set);
        }
        ChainspacePlacement {
            shards,
            home_shard,
            touched,
        }
    }

    /// Whether transaction `i` is cross-shard (touches > 1 shard).
    pub fn is_cross_shard(&self, i: usize) -> bool {
        self.touched[i].len() > 1
    }

    /// Number of cross-shard transactions.
    pub fn cross_shard_count(&self) -> usize {
        (0..self.touched.len())
            .filter(|&i| self.is_cross_shard(i))
            .count()
    }

    /// Books the validation communication into `stats`: two rounds per
    /// cross-shard transaction, attributed to its home shard (the shard
    /// that drives the commit). Single-shard transactions cost nothing.
    pub fn record_validation_communication(&self, stats: &CommStats) {
        for i in 0..self.touched.len() {
            if self.is_cross_shard(i) {
                stats.record_many(
                    self.home_shard[i],
                    CommKind::CrossShardValidation,
                    CROSS_SHARD_ROUNDS_PER_TX,
                );
            }
        }
    }

    /// Estimated message-bit volume of the validation traffic: per
    /// cross-shard transaction, `rounds × N²` units where `N` is the number
    /// of nodes involved (`nodes_per_shard × touched shards`) — the O(N²)
    /// growth Sec. VII quotes.
    pub fn message_volume(&self, nodes_per_shard: usize) -> u64 {
        (0..self.touched.len())
            .filter(|&i| self.is_cross_shard(i))
            .map(|i| {
                let n = (self.touched[i].len() * nodes_per_shard) as u64;
                CROSS_SHARD_ROUNDS_PER_TX * n * n
            })
            .sum()
    }

    /// Transaction indices grouped by home shard — the per-shard queues a
    /// throughput run feeds into the runtime.
    pub fn shard_tx_indices(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.shards];
        for (i, s) in self.home_shard.iter().enumerate() {
            groups[s.0 as usize].push(i);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_workload::{FeeDistribution, Workload};

    fn three_input_txs(n: usize) -> Vec<Transaction> {
        Workload::three_input(n, 3, FeeDistribution::Constant(5), 1).transactions
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let txs = three_input_txs(50);
        let a = ChainspacePlacement::place(&txs, 9, 7);
        let b = ChainspacePlacement::place(&txs, 9, 7);
        assert_eq!(a.home_shard, b.home_shard);
        assert_eq!(a.home_shard.len(), 50);
        let groups = a.shard_tx_indices();
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 50);
    }

    #[test]
    fn three_input_txs_touch_up_to_three_shards() {
        let txs = three_input_txs(200);
        let p = ChainspacePlacement::place(&txs, 9, 3);
        for t in &p.touched {
            assert!((1..=3).contains(&t.len()));
        }
        // With 9 shards, the vast majority of 3-input txs are cross-shard.
        assert!(p.cross_shard_count() > 180, "{}", p.cross_shard_count());
    }

    #[test]
    fn single_shard_means_no_cross_shard_traffic() {
        let txs = three_input_txs(40);
        let p = ChainspacePlacement::place(&txs, 1, 3);
        assert_eq!(p.cross_shard_count(), 0);
        let stats = CommStats::new();
        p.record_validation_communication(&stats);
        assert_eq!(stats.total(), 0);
        assert_eq!(p.message_volume(4), 0);
    }

    #[test]
    fn communication_grows_linearly_with_tx_count() {
        // The Fig. 4(b) shape: per-shard communication ≈ 2·X/9 for X
        // cross-shard transactions.
        let stats = CommStats::new();
        let txs = three_input_txs(900);
        let p = ChainspacePlacement::place(&txs, 9, 5);
        p.record_validation_communication(&stats);
        assert_eq!(
            stats.total(),
            CROSS_SHARD_ROUNDS_PER_TX * p.cross_shard_count() as u64
        );
        let per_shard = stats.per_shard_average(9);
        let expected = 2.0 * p.cross_shard_count() as f64 / 9.0;
        assert!((per_shard - expected).abs() < 1e-9);
    }

    #[test]
    fn message_volume_is_quadratic_in_participants() {
        let txs = three_input_txs(10);
        let p = ChainspacePlacement::place(&txs, 9, 2);
        let v1 = p.message_volume(1);
        let v4 = p.message_volume(4);
        // 4× the nodes → 16× the volume.
        assert_eq!(v4, v1 * 16);
    }

    #[test]
    fn single_input_txs_are_never_cross_shard() {
        let w = Workload::uniform_contracts(60, 3, FeeDistribution::Constant(2), 4);
        let p = ChainspacePlacement::place(&w.transactions, 9, 9);
        assert_eq!(p.cross_shard_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ChainspacePlacement::place(&[], 0, 0);
    }
}
