//! Oracle solutions the large-scale simulations compare against (Sec. VI-E).

pub use cshard_games::merging::optimal_new_shard_count as optimal_new_shards;
pub use cshard_games::selection::optimal_distinct_sets;

/// A constructive near-optimal merge partition: first-fit-decreasing bin
/// "filling" — sort sizes descending, open a new shard, fill it past the
/// lower bound, repeat. Every formed shard satisfies the bound and the
/// count is within one of the `⌊Σ/L⌋` oracle for unit-bounded sizes.
///
/// Used by ablations to show where the game's 20 % gap (Fig. 5(a)) comes
/// from: the game overshoots `L` stochastically; first-fit overshoots by at
/// most one player.
pub fn first_fit_partition(sizes: &[u64], lower_bound: u64) -> Vec<Vec<usize>> {
    assert!(lower_bound > 0);
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));

    let mut shards: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut current_size = 0u64;
    for i in order {
        current.push(i);
        current_size += sizes[i];
        if current_size >= lower_bound {
            shards.push(std::mem::take(&mut current));
            current_size = 0;
        }
    }
    // The tail that never reached the bound is absorbed into the last
    // formed shard (merging it costs nothing and avoids a dangling small
    // shard), or dropped if nothing formed.
    if !current.is_empty() {
        if let Some(last) = shards.last_mut() {
            last.append(&mut current);
        }
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counts() {
        assert_eq!(optimal_new_shards(&[6; 12], 22), 3);
        assert_eq!(optimal_distinct_sets(200, 9, 10), 9);
    }

    #[test]
    fn first_fit_every_shard_satisfies_bound() {
        let sizes: Vec<u64> = (1..=20).collect();
        let shards = first_fit_partition(&sizes, 22);
        for s in &shards {
            let size: u64 = s.iter().map(|&i| sizes[i]).sum();
            assert!(size >= 22);
        }
        // Partition: every index exactly once (tail absorbed).
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn first_fit_is_within_one_of_oracle() {
        let sizes: Vec<u64> = (0..50).map(|i| 1 + (i * 13) % 9).collect();
        let oracle = optimal_new_shards(&sizes, 22) as usize;
        let got = first_fit_partition(&sizes, 22).len();
        assert!(got <= oracle);
        assert!(got + 1 >= oracle, "first-fit {got} vs oracle {oracle}");
    }

    #[test]
    fn first_fit_unreachable_bound_returns_nothing() {
        assert!(first_fit_partition(&[1, 2, 3], 100).is_empty());
        assert!(first_fit_partition(&[], 10).is_empty());
    }
}
