//! The randomized merging baseline (Sec. VI-C2).
//!
//! "Miners in small shards randomly choose whether to merge with others
//! with a probability of 0.5. At some random point, all the miners are at
//! an equilibrium state … to form a stable shard, **and the algorithm also
//! stops here**." — i.e. coin-flip coalitions retried until one satisfies
//! the size bound, after which the baseline stops: it forms at most ONE
//! stable shard. (This is what makes the game-driven Algorithm 1, which
//! keeps iterating over the remainder, form ~59% more new shards in the
//! paper's Fig. 3(g).)

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Outcome of the randomized merging baseline.
#[derive(Clone, Debug)]
pub struct RandomMergeOutcome {
    /// Each new shard, as indices into the input sizes.
    pub new_shards: Vec<Vec<usize>>,
    /// Players left unmerged.
    pub leftover: Vec<usize>,
    /// Coin-flip rounds consumed.
    pub rounds: usize,
}

impl RandomMergeOutcome {
    /// Number of new shards — comparable with
    /// `IterativeMergeOutcome::new_shard_count`.
    pub fn new_shard_count(&self) -> usize {
        self.new_shards.len()
    }

    /// Sizes of the formed shards.
    pub fn shard_sizes(&self, sizes: &[u64]) -> Vec<u64> {
        self.new_shards
            .iter()
            .map(|players| players.iter().map(|&i| sizes[i]).sum())
            .collect()
    }
}

/// Bounded retries per formed shard, mirroring the merging game's bounded
/// realization draws.
const MAX_ROUNDS_PER_SHARD: usize = 64;

/// Runs the p = 0.5 randomized merging baseline over small-shard sizes:
/// coin-flip coalitions until the first one satisfies the bound, then stop.
pub fn random_merge(sizes: &[u64], lower_bound: u64, seed: u64) -> RandomMergeOutcome {
    assert!(lower_bound > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut remaining: Vec<usize> = (0..sizes.len()).collect();
    let mut new_shards = Vec::new();
    let mut rounds = 0;

    if remaining.iter().map(|&i| sizes[i]).sum::<u64>() >= lower_bound {
        for _attempt in 0..MAX_ROUNDS_PER_SHARD {
            rounds += 1;
            let coalition: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|_| rng.gen::<bool>())
                .collect();
            let size: u64 = coalition.iter().map(|&i| sizes[i]).sum();
            if size >= lower_bound {
                let set: std::collections::HashSet<usize> = coalition.iter().copied().collect();
                remaining.retain(|i| !set.contains(i));
                new_shards.push(coalition);
                break; // "the algorithm also stops here"
            }
        }
    }

    RandomMergeOutcome {
        new_shards,
        leftover: remaining,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_games::{iterative_merge, MergingConfig};

    #[test]
    fn deterministic_per_seed() {
        let sizes = vec![3, 5, 7, 2, 8, 4, 6];
        let a = random_merge(&sizes, 15, 7);
        let b = random_merge(&sizes, 15, 7);
        assert_eq!(a.new_shards, b.new_shards);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn forms_at_most_one_stable_shard() {
        let sizes = vec![6u64; 12];
        let out = random_merge(&sizes, 22, 3);
        assert!(out.new_shard_count() <= 1);
        for s in out.shard_sizes(&sizes) {
            assert!(s >= 22, "undersized shard {s}");
        }
        // Partition property.
        let mut all: Vec<usize> = out.new_shards.iter().flatten().copied().collect();
        all.extend(&out.leftover);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn cannot_merge_below_bound() {
        let out = random_merge(&[2, 3], 100, 1);
        assert_eq!(out.new_shard_count(), 0);
        assert_eq!(out.leftover, vec![0, 1]);
        assert_eq!(out.rounds, 0, "no rounds when the bound is unreachable");
    }

    #[test]
    fn empty_input() {
        let out = random_merge(&[], 10, 1);
        assert_eq!(out.new_shard_count(), 0);
        assert!(out.leftover.is_empty());
    }

    #[test]
    fn game_merging_yields_at_least_as_many_shards_on_average() {
        // The Fig. 3(g) direction: the replicator-dynamics merge forms more
        // (because smaller) shards than coin-flip coalitions, which tend to
        // capture ~half the remaining players at once.
        let mut ours_total = 0usize;
        let mut random_total = 0usize;
        let cfg = MergingConfig {
            lower_bound: 22,
            ..MergingConfig::default()
        };
        for seed in 0..12u64 {
            let sizes: Vec<u64> = (0..20).map(|i| 2 + (i * 7 + seed) % 8).collect();
            let probs = vec![0.5; sizes.len()];
            ours_total += iterative_merge(&sizes, &probs, &cfg, seed).new_shard_count();
            random_total += random_merge(&sizes, 22, seed).new_shard_count();
        }
        assert!(
            ours_total >= random_total,
            "game merging {ours_total} < random {random_total}"
        );
    }
}
