//! The incremental-classification pin: across a 200-seed fuzz grid of
//! churn patterns (repeat-heavy pools, diversifiers, spam floods, direct
//! traffic), the classify stage's carry-forward plan must be
//! **bit-identical** to reclassifying every sender from scratch each
//! epoch. This is the contract that lets classification work scale with
//! churn instead of batch size without perturbing a single golden result.

use cshard_core::pipeline::{ClassifyStage, EpochCtx, PipelineStage};
use cshard_core::ShardPlan;
use cshard_crypto::sha256;
use cshard_ledger::{CallGraph, Transaction};
use cshard_network::CommStats;
use cshard_primitives::SimTime;
use cshard_runtime::RuntimeConfig;
use cshard_workload::{SpamFlood, StreamConfig, TxStream};

/// Runs just the classify stage over one batch and returns its plan plus
/// (reclassified, carried).
fn classify_incremental(stage: &mut ClassifyStage, batch: &[Transaction]) -> (ShardPlan, u64, u64) {
    let mut ctx = EpochCtx {
        transactions: batch,
        fees: &[],
        randomness: sha256(0u64.to_be_bytes()),
        runtime: RuntimeConfig::default(),
        plan: None,
        groups: Vec::new(),
        merge: None,
        specs: Vec::new(),
        comm: CommStats::new(),
        run: None,
        migrations: Vec::new(),
    };
    let out = stage.run(&mut ctx).expect("classification is total");
    (
        ctx.plan.expect("classify sets the plan"),
        out.reclassified,
        out.carried,
    )
}

/// The fuzz grid: seed-indexed churn patterns. Small account pools make
/// repeats (clean senders) dominate; high diversify makes churn dominate;
/// spam floods stream never-repeating senders.
fn grid_config(seed: u64) -> StreamConfig {
    let accounts = [8, 40, 200, 5_000][(seed % 4) as usize];
    let contracts = [2, 5, 9][(seed % 3) as usize];
    let diversify = [0.0, 0.1, 0.5][((seed / 4) % 3) as usize];
    let direct_fraction = [0.0, 0.2][((seed / 12) % 2) as usize];
    let spam = if seed.is_multiple_of(5) {
        Some(SpamFlood {
            start: SimTime::ZERO,
            end: SimTime::MAX,
            fraction: 0.3,
        })
    } else {
        None
    };
    StreamConfig {
        accounts,
        contracts,
        diversify,
        direct_fraction,
        spam,
        seed,
        ..StreamConfig::default()
    }
}

#[test]
fn incremental_classification_is_bit_identical_to_full_over_200_seeds() {
    for seed in 0..200u64 {
        let config = grid_config(seed);
        let txs: Vec<Transaction> = TxStream::new(config).take(180).map(|(_, tx)| tx).collect();
        let mut stage = ClassifyStage::new();
        let mut full_graph = CallGraph::new();
        for (e, batch) in txs.chunks(60).enumerate() {
            let (incremental, _, _) = classify_incremental(&mut stage, batch);
            full_graph.observe_all(batch.iter());
            let full = ShardPlan::classify(batch, &full_graph);
            assert_eq!(
                incremental.shard_of, full.shard_of,
                "seed {seed} epoch {e}: shard_of diverged"
            );
            assert_eq!(
                incremental.contract_shards, full.contract_shards,
                "seed {seed} epoch {e}: contract shards diverged"
            );
            assert_eq!(
                incremental.maxshard, full.maxshard,
                "seed {seed} epoch {e}: maxshard diverged"
            );
        }
    }
}

#[test]
fn repeat_heavy_epochs_carry_most_senders() {
    // A tiny pool with no churn knobs: after the first epoch every sender
    // repeats, so reclassification must be the exception, not the rule.
    let txs: Vec<Transaction> = TxStream::new(StreamConfig {
        accounts: 16,
        contracts: 4,
        diversify: 0.0,
        direct_fraction: 0.0,
        seed: 7,
        ..StreamConfig::default()
    })
    .take(240)
    .map(|(_, tx)| tx)
    .collect();
    let mut stage = ClassifyStage::new();
    let mut later_reclassified = 0u64;
    let mut later_carried = 0u64;
    for (e, batch) in txs.chunks(80).enumerate() {
        let (_, reclassified, carried) = classify_incremental(&mut stage, batch);
        if e > 0 {
            later_reclassified += reclassified;
            later_carried += carried;
        }
    }
    // First sight can trickle into later epochs (a cold community member
    // appearing for the first time), but with 16 accounts that is bounded
    // by the pool size; everything else must be carried.
    assert!(
        later_reclassified <= 16,
        "a churn-free pool reclassifies at most one first sight per account: {later_reclassified}"
    );
    assert!(
        later_carried > 4 * later_reclassified.max(1),
        "repeat traffic must dominate: carried={later_carried} reclassified={later_reclassified}"
    );
}

#[test]
fn spam_floods_reclassify_every_fresh_sender() {
    // Pure spam: every arrival is a brand-new throwaway sender, so the
    // carry cache never helps — the opposite corner of the grid.
    let txs: Vec<Transaction> = TxStream::new(StreamConfig {
        spam: Some(SpamFlood {
            start: SimTime::ZERO,
            end: SimTime::MAX,
            fraction: 1.0,
        }),
        seed: 11,
        ..StreamConfig::default()
    })
    .take(120)
    .map(|(_, tx)| tx)
    .collect();
    let mut stage = ClassifyStage::new();
    for batch in txs.chunks(40) {
        let (_, reclassified, carried) = classify_incremental(&mut stage, batch);
        assert_eq!(reclassified, 40, "every spam sender is fresh");
        assert_eq!(carried, 0);
    }
}
