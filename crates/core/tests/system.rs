//! End-to-end tests of [`ShardingSystem`] and the staged [`EpochPipeline`]
//! through the public API (relocated from `system.rs` when the epoch was
//! carved into pipeline stages).

use cshard_core::prelude::*;
use cshard_crypto::sha256;
use cshard_games::MergingConfig;
use cshard_primitives::SimTime;
use cshard_workload::{FeeDistribution, Workload};

const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 99 };

fn runtime(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        seed,
        ..RuntimeConfig::default()
    }
}

#[test]
fn testbed_run_confirms_everything() {
    let w = Workload::uniform_contracts(200, 8, FEES, 1);
    let report = ShardingSystem::testbed(runtime(1))
        .run(&w)
        .expect("valid config");
    assert_eq!(report.run.total_txs(), 200);
    assert_eq!(report.shard_sizes.len(), 9);
    assert!(report.merge.is_none());
    assert_eq!(report.comm.total(), 0, "no communication without merging");
    assert!(report.run.shards.iter().all(|s| s.confirmed == s.txs));
    // The pipeline counters describe the one epoch this run was.
    assert_eq!(report.pipeline.epochs, 1);
    assert_eq!(report.pipeline.stage(StageKind::Unify).items, 9);
}

#[test]
fn fig3a_improvement_grows_with_shards() {
    // Throughput improvement vs Ethereum rises ~linearly in the shard
    // count (Fig. 3(a): 7.2× at 9 shards on the testbed).
    let mut prev = 0.0;
    for contracts in [1usize, 4, 8] {
        let mut imp_sum = 0.0;
        for seed in 0..5u64 {
            let w = Workload::uniform_contracts(200, contracts, FEES, 2);
            let sharded = ShardingSystem::testbed(runtime(seed))
                .run(&w)
                .expect("valid config");
            let eth = simulate_ethereum(w.fees(), 1, &runtime(seed)).expect("valid config");
            imp_sum += throughput_improvement(&eth, &sharded.run);
        }
        let imp = imp_sum / 5.0;
        assert!(
            imp > prev * 0.8,
            "contracts={contracts}: {imp:.2} after {prev:.2}"
        );
        prev = imp;
    }
    assert!(prev > 2.8, "9-shard improvement {prev:.2} too small");
}

#[test]
fn merging_reduces_empty_blocks() {
    // Fig. 3(c): small shards idle and spin empty blocks; merging fuses
    // them into one busy shard.
    let w = Workload::with_small_shards(200, 9, 4, &[3, 4, 5, 4], FEES, 3);
    let base = SystemConfig {
        runtime: RuntimeConfig {
            mean_block_interval: SimTime::from_millis(1500),
            propagation: PropagationModel::Window(SimTime::from_millis(1500)),
            seed: 3,
            ..RuntimeConfig::default()
        },
        ..SystemConfig::default()
    };
    let unmerged = ShardingSystem::new(base.clone())
        .run(&w)
        .expect("valid config");
    let merged = ShardingSystem::new(SystemConfig {
        merging: Some(MergingConfig {
            lower_bound: 16,
            ..MergingConfig::default()
        }),
        ..base
    })
    .run(&w)
    .expect("valid config");
    let summary = merged.merge.clone().expect("merging ran");
    assert_eq!(summary.small_shards, 4);
    assert!(summary.new_shards >= 1, "no shard formed: {summary:?}");
    assert!(
        merged.run.total_empty_blocks() < unmerged.run.total_empty_blocks(),
        "merging did not reduce empties: {} vs {}",
        merged.run.total_empty_blocks(),
        unmerged.run.total_empty_blocks()
    );
    // Fewer shards after merging.
    assert!(merged.shard_sizes.len() < unmerged.shard_sizes.len());
    // Unification cost: exactly 2 per small shard.
    assert_eq!(merged.comm.total(), 8);
}

#[test]
fn merged_runs_are_deterministic() {
    let w = Workload::with_small_shards(200, 9, 3, &[4, 5, 6], FEES, 4);
    let cfg = SystemConfig {
        runtime: runtime(9),
        merging: Some(MergingConfig {
            lower_bound: 18,
            ..MergingConfig::default()
        }),
        ..SystemConfig::default()
    };
    let a = ShardingSystem::new(cfg.clone())
        .run(&w)
        .expect("valid config");
    let b = ShardingSystem::new(cfg).run(&w).expect("valid config");
    assert_eq!(a.run.completion, b.run.completion);
    assert_eq!(a.shard_sizes, b.shard_sizes);
}

#[test]
fn selection_strategy_applies_to_multi_miner_shards() {
    let w = Workload::uniform_contracts(200, 0, FEES, 5); // single MaxShard
    let mut imp_sum = 0.0;
    for seed in 0..6u64 {
        let cfg = SystemConfig {
            runtime: runtime(seed),
            selection: Some(500),
            allocation: MinerAllocation::PerShard(9),
            ..SystemConfig::default()
        };
        let with_game = ShardingSystem::new(cfg.clone())
            .run(&w)
            .expect("valid config");
        let without = ShardingSystem::new(SystemConfig {
            selection: None,
            ..cfg
        })
        .run(&w)
        .expect("valid config");
        imp_sum += throughput_improvement(&without.run, &with_game.run);
    }
    let imp = imp_sum / 6.0;
    assert!(imp > 1.2, "selection game improvement {imp:.2}");
}

#[test]
fn proportional_allocation_tracks_shard_sizes() {
    // One dominant shard plus a small one: the dominant shard must get
    // the lion's share of a 20-miner pool, and all shards ≥ 1.
    let w = Workload::with_small_shards(200, 3, 1, &[8], FEES, 8);
    let report = ShardingSystem::new(SystemConfig {
        runtime: runtime(8),
        allocation: MinerAllocation::Proportional { total: 20 },
        ..SystemConfig::default()
    })
    .run(&w)
    .expect("valid config");
    assert_eq!(report.run.total_txs(), 200);
    assert!(report.run.shards.iter().all(|s| s.confirmed == s.txs));
}

#[test]
fn builder_defaults_match_struct_defaults() {
    let built = ShardingSystem::builder().build().expect("defaults valid");
    let direct = ShardingSystem::new(SystemConfig::default());
    let w = Workload::uniform_contracts(100, 4, FEES, 11);
    let a = built.run(&w).expect("valid config");
    let b = direct.run(&w).expect("valid config");
    assert_eq!(a.run.completion, b.run.completion);
    assert_eq!(a.shard_sizes, b.shard_sizes);
}

#[test]
fn builder_sets_every_knob() {
    let system = ShardingSystem::builder()
        .shards(9)
        .block_capacity(12)
        .mean_block_interval(SimTime::from_secs(30))
        .conflict_window(SimTime::from_secs(15))
        .empty_block_window(SimTime::from_secs(212))
        .seed(42)
        .scheduler(SchedulerConfig::new(4).with_turn_events(64))
        .total_miners(20)
        .merging(16)
        .selection(500)
        .placement(PlacementConfig::engaged())
        .epoch(3)
        .build()
        .expect("valid configuration");
    let cfg = system.config();
    assert_eq!(cfg.runtime.block_capacity, 12);
    assert_eq!(cfg.runtime.mean_block_interval, SimTime::from_secs(30));
    assert_eq!(
        cfg.runtime.propagation,
        PropagationModel::Window(SimTime::from_secs(15))
    );
    assert_eq!(cfg.runtime.conflict_window(), SimTime::from_secs(15));
    assert_eq!(
        cfg.runtime.empty_block_window,
        Some(SimTime::from_secs(212))
    );
    assert_eq!(cfg.runtime.seed, 42);
    assert_eq!(cfg.runtime.scheduler.threads, 4);
    assert_eq!(cfg.runtime.scheduler.turn_events, 64);
    assert!(matches!(
        cfg.allocation,
        MinerAllocation::Proportional { total: 20 }
    ));
    assert_eq!(cfg.merging.as_ref().map(|m| m.lower_bound), Some(16));
    assert_eq!(cfg.selection, Some(500));
    assert_eq!(cfg.placement, PlacementConfig::engaged());
    assert_eq!(cfg.epoch, 3);
}

#[test]
fn run_rejects_invalid_direct_configs() {
    use cshard_primitives::Error;
    let w = Workload::uniform_contracts(50, 2, FEES, 12);
    let zero_cap = ShardingSystem::new(SystemConfig {
        runtime: RuntimeConfig {
            block_capacity: 0,
            ..RuntimeConfig::default()
        },
        ..SystemConfig::default()
    });
    assert!(matches!(
        zero_cap.run(&w),
        Err(Error::Config {
            field: "block_capacity",
            ..
        })
    ));
    let starved = ShardingSystem::new(SystemConfig {
        runtime: runtime(1),
        allocation: MinerAllocation::Proportional { total: 1 },
        ..SystemConfig::default()
    });
    assert!(matches!(
        starved.run(&w),
        Err(Error::InsufficientMiners { .. })
    ));
}

#[test]
fn from_impls_wire_the_old_call_sites() {
    let w = Workload::uniform_contracts(80, 3, FEES, 13);
    let via_runtime: ShardingSystem = runtime(2).into();
    let via_config: ShardingSystem = SystemConfig {
        runtime: runtime(2),
        ..SystemConfig::default()
    }
    .into();
    let a = via_runtime.run(&w).expect("valid config");
    let b = via_config.run(&w).expect("valid config");
    assert_eq!(a.run.completion, b.run.completion);
    // SystemBuilder -> SystemConfig is the unvalidated escape hatch.
    let cfg: SystemConfig = ShardingSystem::builder().seed(9).into();
    assert_eq!(cfg.runtime.seed, 9);
}

#[test]
fn total_txs_preserved_through_merging() {
    let w = Workload::with_small_shards(200, 9, 5, &[2, 3, 4, 5, 6], FEES, 6);
    let report = ShardingSystem::new(SystemConfig {
        runtime: runtime(7),
        merging: Some(MergingConfig {
            lower_bound: 15,
            ..MergingConfig::default()
        }),
        ..SystemConfig::default()
    })
    .run(&w)
    .expect("valid config");
    let total: u64 = report.shard_sizes.iter().map(|&(_, s)| s).sum();
    assert_eq!(total, 200);
    assert_eq!(report.run.total_txs(), 200);
}

/// The placement engine's merge-carry pin, fuzzed over 200 seeds: with
/// carry-only placement (`max_moves_per_epoch: 0` — no migrations, just
/// persistent merge groups), repeated identical epochs must be
/// **bit-identical** to a cold pipeline while spending strictly fewer
/// replicator-dynamics iterations — the carried partition is reused, not
/// recomputed. This is the contract that lets merge decisions persist
/// across epochs without perturbing a single golden result.
#[test]
fn carried_merge_groups_match_cold_recompute_over_200_seeds() {
    let carry_only = PlacementConfig {
        max_moves_per_epoch: 0,
        ..PlacementConfig::engaged()
    };
    for seed in 0..200u64 {
        // Seed-indexed small-shard patterns: every point gives the merge
        // game real work, with varying group shapes.
        let shards = [6usize, 8, 9][(seed % 3) as usize];
        let smalls: &[u64] = [
            &[3u64, 4, 5, 4][..],
            &[2u64, 3, 4, 5, 6][..],
            &[4u64, 4, 4][..],
        ][((seed / 3) % 3) as usize];
        // Every small-size pattern sums past both bounds, so the game
        // always has at least one mergeable group to work on.
        let lower_bound = [8u64, 10][((seed / 9) % 2) as usize];
        let w = Workload::with_small_shards(120, shards, smalls.len(), smalls, FEES, seed);
        let fees = w.fees();
        let config = |placement: PlacementConfig| PipelineConfig {
            merging: Some(MergingConfig {
                lower_bound,
                ..MergingConfig::default()
            }),
            placement,
            ..PipelineConfig::default()
        };
        let drive = |placement: PlacementConfig| {
            let mut pipeline = EpochPipeline::new(config(placement));
            let mut runs = Vec::new();
            for _ in 0..2 {
                let out = pipeline
                    .run_epoch(EpochInput {
                        transactions: &w.transactions,
                        fees: &fees,
                        randomness: sha256(seed.to_be_bytes()),
                        runtime: runtime(seed),
                    })
                    .expect("valid config");
                runs.push((out.run.fingerprint(), out.shard_sizes, out.migrations));
            }
            let merge = *pipeline.metrics().stage(StageKind::Merge);
            (runs, merge)
        };
        let (cold_runs, cold_merge) = drive(PlacementConfig::disabled());
        let (carry_runs, carry_merge) = drive(carry_only);
        assert_eq!(
            cold_runs, carry_runs,
            "seed {seed}: carry-only placement changed a result"
        );
        assert!(
            carry_runs.iter().all(|(_, _, m)| m.is_empty()),
            "seed {seed}: carry-only mode must propose no migrations"
        );
        assert!(
            cold_merge.iterations > 0,
            "seed {seed}: grid point gave the merge game no work"
        );
        assert!(
            carry_merge.iterations < cold_merge.iterations,
            "seed {seed}: carried {} !< cold {}",
            carry_merge.iterations,
            cold_merge.iterations
        );
        assert!(
            carry_merge.carried > 0,
            "seed {seed}: the second epoch must reuse carried groups"
        );
        assert_eq!(cold_merge.carried, 0, "seed {seed}: cold never carries");
    }
}

/// The warm-start acceptance check on the Fig. 3(a)-style grid: repeated
/// identical epochs through one pipeline reach bit-identical results with
/// strictly fewer total game-dynamics iterations when warm starts are on.
#[test]
fn warm_start_is_bit_identical_with_strictly_fewer_iterations() {
    let grid = [(1usize, 31u64), (4, 32), (8, 33)];
    let mut cold_total = 0u64;
    let mut warm_total = 0u64;
    for (contracts, seed) in grid {
        let w = Workload::uniform_contracts(200, contracts, FEES, seed);
        let fees = w.fees();
        let config = |warm: bool| PipelineConfig {
            merging: Some(MergingConfig {
                lower_bound: 24,
                ..MergingConfig::default()
            }),
            selection: Some(500),
            allocation: MinerAllocation::PerShard(3),
            warm_start: warm,
            placement: PlacementConfig::disabled(),
        };
        let drive = |warm: bool| {
            let mut pipeline = EpochPipeline::new(config(warm));
            let mut fingerprints = Vec::new();
            for _ in 0..3 {
                let out = pipeline
                    .run_epoch(EpochInput {
                        transactions: &w.transactions,
                        fees: &fees,
                        randomness: sha256(seed.to_be_bytes()),
                        runtime: runtime(seed),
                    })
                    .expect("valid config");
                fingerprints.push((out.run.fingerprint(), out.shard_sizes));
            }
            let m = pipeline.metrics();
            (fingerprints, m.total_iterations(), m.total_warm_hits())
        };
        let (cold, cold_iters, _) = drive(false);
        let (warm, warm_iters, warm_hits) = drive(true);
        assert_eq!(
            cold, warm,
            "warm start changed results ({contracts} contracts)"
        );
        assert!(
            warm_iters < cold_iters,
            "{contracts} contracts: warm {warm_iters} !< cold {cold_iters}"
        );
        assert!(warm_hits > 0, "{contracts} contracts: no warm hits");
        cold_total += cold_iters;
        warm_total += warm_iters;
    }
    assert!(warm_total < cold_total);
}
