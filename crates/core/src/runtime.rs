//! The discrete-event block-production runtime (compatibility facade).
//!
//! The simulator itself lives in [`cshard_runtime`]: a typed [`Event`]
//! vocabulary, the [`ProtocolDriver`] trait, the [`PropagationModel`]
//! regimes and the two-phase [`Runtime`] harness. This module re-exports
//! the pieces under their historical `cshard_core::runtime` paths so the
//! bench harness, the long-run epochs and downstream users keep working;
//! [`simulate`] and [`simulate_ethereum`] are the thin wrappers the
//! refactor left behind (one driver per shard on the shared event loop —
//! there is no separate Ethereum simulation loop anymore).

pub use cshard_runtime::{
    shard_stream, simulate, simulate_ethereum, ContractShardDriver, Ctx, EthereumDriver, Event,
    PropagationModel, ProtocolDriver, Runtime, RuntimeConfig, SelectionStrategy, ShardSpec,
};
