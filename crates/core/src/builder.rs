//! Fluent, validated configuration for [`ShardingSystem`].
//!
//! The paper's experiments touch half a dozen knobs (capacity, interval,
//! miner spread, merging threshold, selection cap…); [`SystemBuilder`]
//! gathers them behind one entry point with validated defaults. Every
//! setter has the default of the underlying config struct; `build`
//! validates the combination and returns a typed [`Error`] instead of
//! panicking deep inside a run.
//!
//! Validation is deliberately *local*: the builder rejects combinations
//! that can never run (zero capacity, a starved proportional pool), but
//! not merely unusual ones. In particular `merging(bound)` with
//! `bound > block_capacity` is legal — the merge threshold counts
//! transactions per *shard* while capacity counts transactions per
//! *block*, and merging small shards past one block's worth is exactly
//! how merging removes empty blocks (Fig. 3(c)).

use crate::system::{MinerAllocation, ShardingSystem, SystemConfig};
use cshard_games::MergingConfig;
use cshard_place::PlacementConfig;
use cshard_primitives::{Error, SimTime};
use cshard_runtime::{PropagationModel, SchedulerConfig, SettleConfig};

/// Builds a validated [`ShardingSystem`].
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    shards: Option<usize>,
    config: SystemConfig,
    set_per_shard: bool,
    set_total: bool,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

impl SystemBuilder {
    /// A builder holding every default.
    pub fn new() -> Self {
        SystemBuilder {
            shards: None,
            config: SystemConfig::default(),
            set_per_shard: false,
            set_total: false,
        }
    }

    /// The shard count this system is intended for. Shard formation itself
    /// follows the workload's contracts; the builder uses this to validate
    /// miner allocation (a proportional pool must staff every shard).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Transactions per block (default 10, the paper's gas limit).
    pub fn block_capacity(mut self, capacity: usize) -> Self {
        self.config.runtime.block_capacity = capacity;
        self
    }

    /// Mean block interval per miner (default 60 s).
    pub fn mean_block_interval(mut self, interval: SimTime) -> Self {
        self.config.runtime.mean_block_interval = interval;
        self
    }

    /// The conflict window (default one block interval). Sets the legacy
    /// fixed-window propagation regime; use [`SystemBuilder::propagation`]
    /// for the network-backed latency model.
    pub fn conflict_window(mut self, window: SimTime) -> Self {
        self.config.runtime.propagation = PropagationModel::Window(window);
        self
    }

    /// The block-propagation model (window or network latency).
    pub fn propagation(mut self, propagation: PropagationModel) -> Self {
        self.config.runtime.propagation = propagation;
        self
    }

    /// Count empty blocks only up to this time (default: whole run).
    pub fn empty_block_window(mut self, window: SimTime) -> Self {
        self.config.runtime.empty_block_window = Some(window);
        self
    }

    /// The master RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.runtime.seed = seed;
        self
    }

    /// Scheduler worker threads: `1` = sequential (default), `0` = one per
    /// core. Results are bit-identical across settings. Shorthand for
    /// [`SystemBuilder::scheduler`] with just a worker count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.runtime.scheduler.threads = threads;
        self
    }

    /// The full scheduler configuration for the block-production runs:
    /// worker count and per-turn event budget (see
    /// [`cshard_runtime::SchedulerConfig`]). Results are bit-identical at
    /// any setting.
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.config.runtime.scheduler = scheduler;
        self
    }

    /// A fixed miner count on every shard (default: one per shard).
    /// Mutually exclusive with [`SystemBuilder::total_miners`].
    pub fn miners_per_shard(mut self, miners: usize) -> Self {
        self.config.allocation = MinerAllocation::PerShard(miners);
        self.set_per_shard = true;
        self
    }

    /// A total miner pool split proportionally to shard sizes.
    /// Mutually exclusive with [`SystemBuilder::miners_per_shard`].
    pub fn total_miners(mut self, total: usize) -> Self {
        self.config.allocation = MinerAllocation::Proportional { total };
        self.set_total = true;
        self
    }

    /// Enables inter-shard merging with the given small-shard threshold
    /// (shards below `lower_bound` transactions enter Algorithm 1).
    pub fn merging(mut self, lower_bound: u64) -> Self {
        self.config.merging = Some(MergingConfig {
            lower_bound,
            ..MergingConfig::default()
        });
        self
    }

    /// Enables inter-shard merging with a fully specified game config.
    pub fn merging_config(mut self, config: MergingConfig) -> Self {
        self.config.merging = Some(config);
        self
    }

    /// Enables equilibrium transaction selection in multi-miner shards
    /// (best-reply round cap, Algorithm 2).
    pub fn selection(mut self, max_rounds: usize) -> Self {
        self.config.selection = Some(max_rounds);
        self
    }

    /// The epoch label seeding leader randomness (default 0).
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.config.epoch = epoch;
        self
    }

    /// Cross-shard settlement batching (default disabled). Only
    /// settlement-aware drivers (the settling wrapper, ChainSpace's
    /// batched mode) read this; the plain sharded runs ignore it.
    pub fn settlement(mut self, settle: SettleConfig) -> Self {
        self.config.runtime.settle = settle;
        self
    }

    /// The cross-epoch placement engine: merge-group carry-over plus
    /// hot-account migration (default disabled). Off, the pipeline is
    /// bit-identical to a build without the engine.
    pub fn placement(mut self, placement: PlacementConfig) -> Self {
        self.config.placement = placement;
        self
    }

    /// Validates the combination and builds the system.
    pub fn build(self) -> Result<ShardingSystem, Error> {
        let rt = &self.config.runtime;
        if rt.block_capacity == 0 {
            return Err(Error::Config {
                field: "block_capacity",
                reason: "must be positive".into(),
            });
        }
        if rt.mean_block_interval == SimTime::ZERO {
            return Err(Error::Config {
                field: "mean_block_interval",
                reason: "must be positive".into(),
            });
        }
        if self.shards == Some(0) {
            return Err(Error::Config {
                field: "shards",
                reason: "must be positive".into(),
            });
        }
        if self.set_per_shard && self.set_total {
            return Err(Error::Config {
                field: "allocation",
                reason: "miners_per_shard and total_miners are mutually exclusive".into(),
            });
        }
        match self.config.allocation {
            MinerAllocation::PerShard(0) => {
                return Err(Error::Config {
                    field: "allocation",
                    reason: "shards need at least one miner".into(),
                });
            }
            MinerAllocation::Proportional { total } => {
                if let Some(shards) = self.shards {
                    if total < shards {
                        return Err(Error::InsufficientMiners {
                            shards,
                            miners: total,
                        });
                    }
                }
            }
            _ => {}
        }
        if self.config.selection == Some(0) {
            return Err(Error::Config {
                field: "selection",
                reason: "needs at least one best-reply round".into(),
            });
        }
        if let Some(m) = &self.config.merging {
            m.validate()?;
        }
        rt.settle.validate()?;
        self.config.placement.validate()?;
        Ok(ShardingSystem::new(self.config))
    }
}

impl From<SystemBuilder> for SystemConfig {
    /// The unvalidated escape hatch: the raw config the builder holds.
    fn from(builder: SystemBuilder) -> Self {
        builder.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// What a table row expects `build` to return.
    enum Want {
        /// `Error::Config` naming this field.
        Config(&'static str),
        /// `Error::InsufficientMiners`.
        Insufficient,
    }

    /// Every invalid field combination the builder rejects, as one table:
    /// each row is (label, builder, expected typed error). Valid-but-odd
    /// combinations (e.g. a merge threshold above block capacity — see the
    /// module docs) deliberately do NOT appear here.
    #[test]
    fn builder_rejects_every_invalid_combination() {
        let bad_merge = |patch: fn(&mut MergingConfig)| {
            let mut m = MergingConfig::default();
            patch(&mut m);
            SystemBuilder::new().merging_config(m)
        };
        let cases: Vec<(&str, SystemBuilder, Want)> = vec![
            (
                "zero block capacity",
                SystemBuilder::new().block_capacity(0),
                Want::Config("block_capacity"),
            ),
            (
                "zero block interval",
                SystemBuilder::new().mean_block_interval(SimTime::ZERO),
                Want::Config("mean_block_interval"),
            ),
            (
                "zero shards",
                SystemBuilder::new().shards(0),
                Want::Config("shards"),
            ),
            (
                "zero miners per shard",
                SystemBuilder::new().miners_per_shard(0),
                Want::Config("allocation"),
            ),
            (
                "conflicting miner spreads",
                SystemBuilder::new().miners_per_shard(3).total_miners(9),
                Want::Config("allocation"),
            ),
            (
                "conflicting spreads, either order",
                SystemBuilder::new().total_miners(9).miners_per_shard(3),
                Want::Config("allocation"),
            ),
            (
                "starved proportional pool",
                SystemBuilder::new().shards(9).total_miners(4),
                Want::Insufficient,
            ),
            (
                "zero selection rounds",
                SystemBuilder::new().selection(0),
                Want::Config("selection"),
            ),
            (
                "zero merge threshold",
                SystemBuilder::new().merging(0),
                Want::Config("merging.lower_bound"),
            ),
            (
                "merge reward below cost",
                bad_merge(|m| m.reward = m.cost),
                Want::Config("merging.reward"),
            ),
            (
                "merge eta at zero",
                bad_merge(|m| m.eta = 0.0),
                Want::Config("merging.eta"),
            ),
            (
                "merge eta at one",
                bad_merge(|m| m.eta = 1.0),
                Want::Config("merging.eta"),
            ),
            (
                "merge eta NaN",
                bad_merge(|m| m.eta = f64::NAN),
                Want::Config("merging.eta"),
            ),
            (
                "zero merge subslots",
                bad_merge(|m| m.subslots = 0),
                Want::Config("merging.subslots"),
            ),
            (
                "non-positive merge tolerance",
                bad_merge(|m| m.tolerance = 0.0),
                Want::Config("merging.tolerance"),
            ),
            (
                "NaN merge tolerance",
                bad_merge(|m| m.tolerance = f64::NAN),
                Want::Config("merging.tolerance"),
            ),
            (
                "zero merge slot cap",
                bad_merge(|m| m.max_slots = 0),
                Want::Config("merging.max_slots"),
            ),
            (
                "zero settlement batch cap",
                SystemBuilder::new().settlement(SettleConfig {
                    batch_cap: 0,
                    ..SettleConfig::batched(1)
                }),
                Want::Config("settle.batch_cap"),
            ),
            (
                "zero settlement timeout",
                SystemBuilder::new().settlement(SettleConfig {
                    timeout: SimTime::ZERO,
                    ..SettleConfig::batched(100)
                }),
                Want::Config("settle.timeout"),
            ),
            (
                "zero placement dominance",
                SystemBuilder::new().placement(PlacementConfig {
                    min_dominance_percent: 0,
                    ..PlacementConfig::engaged()
                }),
                Want::Config("placement.min_dominance_percent"),
            ),
            (
                "placement dominance above 100",
                SystemBuilder::new().placement(PlacementConfig {
                    min_dominance_percent: 101,
                    ..PlacementConfig::engaged()
                }),
                Want::Config("placement.min_dominance_percent"),
            ),
            (
                "zero placement activity floor",
                SystemBuilder::new().placement(PlacementConfig {
                    min_account_txs: 0,
                    ..PlacementConfig::engaged()
                }),
                Want::Config("placement.min_account_txs"),
            ),
            (
                "NaN placement imbalance threshold",
                SystemBuilder::new().placement(PlacementConfig {
                    min_imbalance: f64::NAN,
                    ..PlacementConfig::engaged()
                }),
                Want::Config("placement.min_imbalance"),
            ),
        ];
        for (label, builder, want) in cases {
            let err = builder.build().err();
            match (want, err) {
                (Want::Config(field), Some(Error::Config { field: got, .. })) => {
                    assert_eq!(got, field, "{label}: wrong field");
                }
                (Want::Insufficient, Some(Error::InsufficientMiners { .. })) => {}
                (_, other) => panic!("{label}: unexpected result {other:?}"),
            }
        }
    }

    /// The one legal-but-surprising combination the table excludes: a merge
    /// threshold above block capacity is how merging removes empty blocks,
    /// so the builder must accept it.
    #[test]
    fn merge_threshold_above_capacity_is_legal() {
        assert!(SystemBuilder::new()
            .block_capacity(10)
            .merging(16)
            .build()
            .is_ok());
    }
}
