//! Contract-centric shard formation (Sec. III-A).
//!
//! "Transactions sent by users who only participate in the same smart
//! contract naturally form a shard … Transactions sent by [users who
//! participate in more than one contract or have directly sent transactions
//! to other users] form a unique shard, called the MaxShard."

use cshard_ledger::{CallGraph, SenderClass, Transaction, TxKind};
use cshard_primitives::{Address, ContractId, ShardId};
use std::collections::BTreeMap;

/// The partition of a transaction batch into shards.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Transaction indices per contract shard, keyed by shard id. Contract
    /// `c` maps to `ShardId(c)`.
    pub contract_shards: BTreeMap<ShardId, Vec<usize>>,
    /// Transaction indices in the MaxShard.
    pub maxshard: Vec<usize>,
    /// The shard of each transaction, by transaction index.
    pub shard_of: Vec<ShardId>,
}

impl ShardPlan {
    /// Builds the plan for a batch: observe the whole batch on the call
    /// graph (history), then classify every transaction.
    ///
    /// A transaction lands in contract shard `c` iff it is a contract call
    /// and its sender's *entire* history touches only `c` — otherwise the
    /// MaxShard takes it. This is exactly the Fig. 1 classification.
    pub fn build(transactions: &[Transaction], history: &CallGraph) -> ShardPlan {
        // The effective call graph includes the batch itself: a sender that
        // invokes two contracts within the batch is multi-contract.
        let mut graph = history.clone();
        graph.observe_all(transactions.iter());
        Self::classify(transactions, &graph)
    }

    /// Classifies a batch against a call graph that has *already observed
    /// it* — the incremental twin of [`ShardPlan::build`]. A pipeline that
    /// owns its history absorbs each batch into the graph once and
    /// classifies in place, instead of cloning the whole accumulated
    /// history every epoch.
    pub fn classify(transactions: &[Transaction], graph: &CallGraph) -> ShardPlan {
        let mut contract_shards: BTreeMap<ShardId, Vec<usize>> = BTreeMap::new();
        let mut maxshard = Vec::new();
        let mut shard_of = Vec::with_capacity(transactions.len());
        for (i, tx) in transactions.iter().enumerate() {
            match graph.isolable_contract(tx) {
                Some(c) => {
                    let shard = Self::shard_for_contract(c);
                    contract_shards.entry(shard).or_default().push(i);
                    shard_of.push(shard);
                }
                None => {
                    maxshard.push(i);
                    shard_of.push(ShardId::MAX_SHARD);
                }
            }
        }
        ShardPlan {
            contract_shards,
            maxshard,
            shard_of,
        }
    }

    /// Classifies a batch against *cached* sender classes instead of the
    /// call graph — the churn-proportional twin of [`ShardPlan::classify`].
    ///
    /// `routes` must hold, for every sender in the batch, the class the
    /// graph would report **after** observing the batch (the classify
    /// stage maintains exactly this: it refreshes the dirty senders and
    /// carries the rest forward). Under that contract the plan is
    /// bit-identical to a full reclassification: the isolable predicate
    /// ([`CallGraph::isolable_contract`]) reads nothing but the sender's
    /// class and the transaction's own kind.
    pub fn classify_cached(
        transactions: &[Transaction],
        routes: &BTreeMap<Address, SenderClass>,
    ) -> ShardPlan {
        static NO_PINS: BTreeMap<Address, ShardId> = BTreeMap::new();
        Self::classify_placed(transactions, routes, &NO_PINS)
    }

    /// [`ShardPlan::classify_cached`] with placement pins on top.
    ///
    /// A pinned sender was migrated off the MaxShard to a contract's home
    /// shard: its calls *to that contract* route home regardless of its
    /// cached class, while everything else (calls to other contracts,
    /// direct transfers, multi-input) still follows the cached rules —
    /// those touch cross-contract state and belong on the MaxShard. With
    /// no pins this is exactly `classify_cached`.
    pub fn classify_placed(
        transactions: &[Transaction],
        routes: &BTreeMap<Address, SenderClass>,
        pins: &BTreeMap<Address, ShardId>,
    ) -> ShardPlan {
        let mut contract_shards: BTreeMap<ShardId, Vec<usize>> = BTreeMap::new();
        let mut maxshard = Vec::new();
        let mut shard_of = Vec::with_capacity(transactions.len());
        for (i, tx) in transactions.iter().enumerate() {
            let isolable = match &tx.kind {
                TxKind::ContractCall { contract, .. }
                    if pins.get(&tx.sender) == Some(&Self::shard_for_contract(*contract)) =>
                {
                    Some(*contract)
                }
                TxKind::ContractCall { contract, .. } => match routes.get(&tx.sender) {
                    Some(SenderClass::SingleContract(c)) if c == contract => Some(*c),
                    // Mirrors the graph's Unknown-sender rule; unreachable
                    // when routes cover the observed batch, kept for the
                    // same semantics on partial caches.
                    Some(SenderClass::Unknown) | None => Some(*contract),
                    _ => None,
                },
                _ => None,
            };
            match isolable {
                Some(c) => {
                    let shard = Self::shard_for_contract(c);
                    contract_shards.entry(shard).or_default().push(i);
                    shard_of.push(shard);
                }
                None => {
                    maxshard.push(i);
                    shard_of.push(ShardId::MAX_SHARD);
                }
            }
        }
        ShardPlan {
            contract_shards,
            maxshard,
            shard_of,
        }
    }

    /// The shard a contract's isolable transactions form.
    pub fn shard_for_contract(c: ContractId) -> ShardId {
        ShardId::new(c.0)
    }

    /// Number of shards with at least one transaction (MaxShard included
    /// when non-empty).
    pub fn active_shard_count(&self) -> usize {
        self.contract_shards.len() + usize::from(!self.maxshard.is_empty())
    }

    /// `(shard, size)` for every active shard, MaxShard last.
    pub fn shard_sizes(&self) -> Vec<(ShardId, u64)> {
        let mut v: Vec<(ShardId, u64)> = self
            .contract_shards
            .iter()
            .map(|(&s, txs)| (s, txs.len() as u64))
            .collect();
        if !self.maxshard.is_empty() {
            v.push((ShardId::MAX_SHARD, self.maxshard.len() as u64));
        }
        v
    }

    /// Total transactions in the plan.
    pub fn total_txs(&self) -> usize {
        self.shard_of.len()
    }

    /// The transaction fractions β (Sec. III-B), in percent, per active
    /// shard — the statistic the verifiable leader broadcasts for miner
    /// separation. Fractions are rounded to sum to exactly 100 (largest-
    /// remainder method) so the RandHound group intervals tile `1..=100`.
    pub fn fractions_percent(&self) -> Vec<(ShardId, u32)> {
        let sizes = self.shard_sizes();
        let total: u64 = sizes.iter().map(|&(_, s)| s).sum();
        assert!(total > 0, "cannot take fractions of an empty plan");
        // Largest-remainder rounding.
        let mut entries: Vec<(ShardId, u32, f64)> = sizes
            .iter()
            .map(|&(shard, s)| {
                let exact = s as f64 * 100.0 / total as f64;
                (shard, exact.floor() as u32, exact - exact.floor())
            })
            .collect();
        let assigned: u32 = entries.iter().map(|e| e.1).sum();
        let mut rest = 100 - assigned;
        // Hand out remainders to the largest fractional parts, ties by
        // shard id for determinism.
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[b]
                .2
                .total_cmp(&entries[a].2)
                .then(entries[a].0.cmp(&entries[b].0))
        });
        for idx in order {
            if rest == 0 {
                break;
            }
            entries[idx].1 += 1;
            rest -= 1;
        }
        entries.into_iter().map(|(s, pct, _)| (s, pct)).collect()
    }

    /// The small shards: active shards strictly below `lower_bound`
    /// transactions — the players of the merging game (MaxShard never
    /// merges; it is structurally distinct).
    pub fn small_shards(&self, lower_bound: u64) -> Vec<(ShardId, u64)> {
        self.contract_shards
            .iter()
            .filter(|(_, txs)| (txs.len() as u64) < lower_bound)
            .map(|(&s, txs)| (s, txs.len() as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_workload::{FeeDistribution, Workload};

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 99 };

    fn plan(w: &Workload) -> ShardPlan {
        ShardPlan::build(&w.transactions, &CallGraph::new())
    }

    #[test]
    fn uniform_workload_forms_expected_shards() {
        // 200 txs over 8 contracts + MaxShard (the paper's 9-shard setup).
        let w = Workload::uniform_contracts(200, 8, FEES, 1);
        let p = plan(&w);
        assert_eq!(p.active_shard_count(), 9);
        for txs in p.contract_shards.values() {
            assert_eq!(txs.len(), 22);
        }
        assert_eq!(p.maxshard.len(), 200 - 8 * 22);
        assert_eq!(p.total_txs(), 200);
    }

    #[test]
    fn shard_of_is_consistent_with_groups() {
        let w = Workload::uniform_contracts(90, 3, FEES, 2);
        let p = plan(&w);
        for (shard, txs) in &p.contract_shards {
            for &i in txs {
                assert_eq!(p.shard_of[i], *shard);
            }
        }
        for &i in &p.maxshard {
            assert_eq!(p.shard_of[i], ShardId::MAX_SHARD);
        }
    }

    #[test]
    fn multi_contract_sender_pushes_txs_to_maxshard() {
        // Same sender invokes two contracts: both txs must be MaxShard
        // even though each individually looks isolable.
        use cshard_ledger::Transaction;
        use cshard_primitives::{Address, Amount};
        let txs = vec![
            Transaction::call(
                Address::user(1),
                0,
                ContractId::new(0),
                Amount(10),
                Amount(1),
            ),
            Transaction::call(
                Address::user(1),
                1,
                ContractId::new(1),
                Amount(10),
                Amount(1),
            ),
            Transaction::call(
                Address::user(2),
                0,
                ContractId::new(0),
                Amount(10),
                Amount(1),
            ),
        ];
        let p = ShardPlan::build(&txs, &CallGraph::new());
        assert_eq!(p.maxshard, vec![0, 1]);
        assert_eq!(p.contract_shards[&ShardId::new(0)], vec![2]);
    }

    #[test]
    fn history_from_prior_epochs_affects_classification() {
        use cshard_ledger::Transaction;
        use cshard_primitives::{Address, Amount};
        // User 1 transacted directly in the past.
        let mut history = CallGraph::new();
        history.observe(&Transaction::direct(
            Address::user(1),
            0,
            Address::user(9),
            Amount(5),
            Amount(1),
        ));
        let txs = vec![Transaction::call(
            Address::user(1),
            1,
            ContractId::new(0),
            Amount(10),
            Amount(1),
        )];
        let p = ShardPlan::build(&txs, &history);
        assert_eq!(p.maxshard, vec![0], "history forces MaxShard");
    }

    #[test]
    fn three_input_workload_is_all_maxshard() {
        let w = Workload::three_input(50, 3, FEES, 3);
        let p = plan(&w);
        assert_eq!(p.maxshard.len(), 50);
        assert!(p.contract_shards.is_empty());
        assert_eq!(p.active_shard_count(), 1);
    }

    #[test]
    fn fractions_sum_to_exactly_100() {
        for contracts in 1..=9 {
            let w = Workload::uniform_contracts(200, contracts, FEES, 4);
            let p = plan(&w);
            let fr = p.fractions_percent();
            let total: u32 = fr.iter().map(|&(_, pct)| pct).sum();
            assert_eq!(total, 100, "contracts={contracts}: {fr:?}");
        }
    }

    #[test]
    fn fractions_track_sizes() {
        let w = Workload::with_small_shards(200, 9, 2, &[5, 5], FEES, 5);
        let p = plan(&w);
        let fr = p.fractions_percent();
        // Small shards (5/200 = 2.5 %) get 2–3 %.
        for &(shard, pct) in &fr {
            if shard == ShardId::new(0) || shard == ShardId::new(1) {
                assert!((2..=3).contains(&pct), "{shard}: {pct}%");
            }
        }
    }

    #[test]
    fn small_shards_are_those_below_the_bound() {
        let w = Workload::with_small_shards(200, 9, 3, &[4, 8, 9], FEES, 6);
        let p = plan(&w);
        let small = p.small_shards(22);
        assert_eq!(small.len(), 3);
        let sizes: Vec<u64> = small.iter().map(|&(_, s)| s).collect();
        assert_eq!(sizes, vec![4, 8, 9]);
    }

    #[test]
    fn classify_matches_build_on_an_observed_graph() {
        // `build` = clone + observe + classify; a graph that has already
        // absorbed the batch classifies identically without the clone.
        let w = Workload::uniform_contracts(150, 6, FEES, 9);
        let built = ShardPlan::build(&w.transactions, &CallGraph::new());
        let mut graph = CallGraph::new();
        graph.observe_all(w.transactions.iter());
        let classified = ShardPlan::classify(&w.transactions, &graph);
        assert_eq!(built.contract_shards, classified.contract_shards);
        assert_eq!(built.maxshard, classified.maxshard);
        assert_eq!(built.shard_of, classified.shard_of);
    }

    #[test]
    fn classify_cached_matches_classify_on_full_routes() {
        use cshard_ledger::Transaction;
        use cshard_primitives::{Address, Amount};
        // A mix that exercises every classification branch: single-contract,
        // multi-contract, direct-then-call, and multi-input side effects.
        let mut txs = Vec::new();
        for u in 0..20u64 {
            txs.push(Transaction::call(
                Address::user(u),
                0,
                ContractId::new((u % 4) as u32),
                Amount(10),
                Amount(1),
            ));
        }
        txs.push(Transaction::call(
            Address::user(1),
            1,
            ContractId::new(3),
            Amount(10),
            Amount(1),
        ));
        txs.push(Transaction::direct(
            Address::user(2),
            1,
            Address::user(50),
            Amount(5),
            Amount(1),
        ));
        txs.push(Transaction::multi_input(
            Address::user(3),
            1,
            vec![Address::user(3), Address::user(4)],
            Address::user(51),
            Amount(6),
            Amount::ZERO,
        ));
        let mut graph = CallGraph::new();
        graph.observe_all(txs.iter());
        let full = ShardPlan::classify(&txs, &graph);
        let routes: BTreeMap<_, _> = graph.senders().map(|a| (a, graph.classify(a))).collect();
        let cached = ShardPlan::classify_cached(&txs, &routes);
        assert_eq!(full.contract_shards, cached.contract_shards);
        assert_eq!(full.maxshard, cached.maxshard);
        assert_eq!(full.shard_of, cached.shard_of);
    }

    #[test]
    fn classify_placed_routes_only_pinned_home_calls() {
        use cshard_ledger::{SenderClass, Transaction};
        use cshard_primitives::{Address, Amount};
        // A multi-contract sender, pinned to contract 0's home shard.
        let txs = vec![
            Transaction::call(
                Address::user(1),
                0,
                ContractId::new(0),
                Amount(10),
                Amount(1),
            ),
            Transaction::call(
                Address::user(1),
                1,
                ContractId::new(1),
                Amount(10),
                Amount(1),
            ),
            Transaction::direct(Address::user(1), 2, Address::user(9), Amount(5), Amount(1)),
        ];
        let routes: BTreeMap<_, _> = [(Address::user(1), SenderClass::MultiContract)].into();
        let pins: BTreeMap<_, _> = [(Address::user(1), ShardId::new(0))].into();
        let placed = ShardPlan::classify_placed(&txs, &routes, &pins);
        assert_eq!(placed.shard_of[0], ShardId::new(0), "home call routes home");
        assert_eq!(placed.shard_of[1], ShardId::MAX_SHARD, "foreign call stays");
        assert_eq!(
            placed.shard_of[2],
            ShardId::MAX_SHARD,
            "direct transfer stays"
        );
        // With no pins, classify_placed IS classify_cached.
        let unpinned = ShardPlan::classify_placed(&txs, &routes, &BTreeMap::new());
        let cached = ShardPlan::classify_cached(&txs, &routes);
        assert_eq!(unpinned.shard_of, cached.shard_of);
        assert_eq!(unpinned.maxshard, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "empty plan")]
    fn fractions_of_empty_plan_panic() {
        let p = ShardPlan::build(&[], &CallGraph::new());
        p.fractions_percent();
    }
}
