//! The end-to-end sharding system.
//!
//! [`ShardingSystem::run`] is the whole pipeline of the paper on one
//! workload, driven through the staged [`EpochPipeline`]
//! (`Classify → Form → Merge → Select → Unify`, see [`crate::pipeline`]):
//!
//! 1. **Formation** (Sec. III-A) — classify transactions into contract
//!    shards + MaxShard via the call graph.
//! 2. **Miner assignment** (Sec. III-B) — allocate miners to shards, either
//!    one-per-shard (the paper's testbed) or proportionally via the
//!    verifiable-randomness rule.
//! 3. **Inter-shard merging** (Sec. IV-A) — optionally run Algorithm 1 over
//!    the small shards under unified parameters, fusing their queues.
//! 4. **Intra-shard selection** (Sec. IV-B) — optionally give multi-miner
//!    shards the congestion-game equilibrium strategy.
//! 5. **Run** — drive the block-production runtime to completion and
//!    report waiting time, empty blocks and communication counts.
//!
//! Every stage is independently switchable so experiments can ablate each
//! mechanism (Fig. 3 runs every combination). This module is only the
//! workload-level facade: configuration types plus the thin `run` driver;
//! the stages themselves live in [`crate::pipeline`], and the fluent
//! builder in [`crate::builder`].

use crate::pipeline::{EpochInput, EpochPipeline, PipelineConfig, PipelineMetrics};
use cshard_crypto::sha256;
use cshard_games::MergingConfig;
use cshard_network::CommStats;
use cshard_place::PlacementConfig;
use cshard_primitives::{Error, ShardId};
use cshard_runtime::{RunReport, RuntimeConfig};
use cshard_workload::Workload;

pub use crate::builder::SystemBuilder;
pub use crate::pipeline::MergeSummary;

/// How miners are spread over shards.
#[derive(Clone, Copy, Debug)]
pub enum MinerAllocation {
    /// One miner per shard — the paper's nine-server testbed (Sec. VI-A:
    /// "we just set the number of miners in each shard as 1").
    OnePerShard,
    /// A fixed miner count per shard (used by the Fig. 3(h) single-shard
    /// selection experiment).
    PerShard(usize),
    /// `total` miners split proportionally to shard transaction counts —
    /// the Sec. III-B requirement that "the fraction of miners in a shard
    /// shall keep up with the fraction of transactions in that shard".
    /// Every shard receives at least one miner (largest-remainder split).
    Proportional {
        /// Total miners across the system.
        total: usize,
    },
}

/// System-level configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Runtime (block production) parameters.
    pub runtime: RuntimeConfig,
    /// Enable inter-shard merging with this game configuration
    /// (`lower_bound` doubles as the small-shard threshold).
    pub merging: Option<MergingConfig>,
    /// Enable equilibrium transaction selection in shards with more than
    /// one miner (best-reply round cap).
    pub selection: Option<usize>,
    /// Miner spread.
    pub allocation: MinerAllocation,
    /// The cross-epoch placement engine (merge-group carry-over +
    /// hot-account migration). Off by default and bit-invisible when off.
    pub placement: PlacementConfig,
    /// Epoch label — seeds leader randomness, so two systems with the same
    /// config and workload are bit-identical.
    pub epoch: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            runtime: RuntimeConfig::default(),
            merging: None,
            selection: None,
            allocation: MinerAllocation::OnePerShard,
            placement: PlacementConfig::disabled(),
            epoch: 0,
        }
    }
}

/// The full result of a system run.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Block-production results.
    pub run: RunReport,
    /// Shards that actually ran (after any merging), with their sizes.
    pub shard_sizes: Vec<(ShardId, u64)>,
    /// Merge-stage summary, when merging was enabled.
    pub merge: Option<MergeSummary>,
    /// Cross-shard communication incurred (validation is always zero for
    /// the contract-centric design; merging contributes 2 per small shard).
    pub comm: CommStats,
    /// Per-stage pipeline counters (items, game iterations, warm-start
    /// hits). Diagnostics only — never part of a golden fingerprint.
    pub pipeline: PipelineMetrics,
}

/// The contract-centric sharding system.
#[derive(Clone, Debug)]
pub struct ShardingSystem {
    config: SystemConfig,
}

impl ShardingSystem {
    /// Builds a system.
    pub fn new(config: SystemConfig) -> Self {
        ShardingSystem { config }
    }

    /// Starts a validated, fluent configuration:
    ///
    /// ```
    /// use cshard_core::ShardingSystem;
    ///
    /// let system = ShardingSystem::builder()
    ///     .shards(9)
    ///     .block_capacity(10)
    ///     .seed(42)
    ///     .threads(0) // one worker per core; bit-identical to threads(1)
    ///     .build()
    ///     .expect("valid configuration");
    /// # let _ = system;
    /// ```
    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    /// Convenience: the paper's testbed shape (one greedy miner per shard,
    /// no merging, no selection game).
    pub fn testbed(runtime: RuntimeConfig) -> Self {
        ShardingSystem::new(SystemConfig {
            runtime,
            ..SystemConfig::default()
        })
    }

    /// The configuration this system runs with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The pipeline configuration this system drives its epochs with
    /// (warm starts off: a workload run is a single cold epoch).
    pub fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            merging: self.config.merging,
            selection: self.config.selection,
            allocation: self.config.allocation,
            warm_start: false,
            placement: self.config.placement,
        }
    }

    /// Runs the pipeline on a workload.
    ///
    /// Errors when the configuration cannot produce a valid run — a zero
    /// block capacity, a zero per-shard miner count, or a proportional
    /// miner pool smaller than the shard count. (Systems built through
    /// [`ShardingSystem::builder`] have already been validated.)
    pub fn run(&self, workload: &Workload) -> Result<SystemReport, Error> {
        let mut pipeline = EpochPipeline::new(self.pipeline_config());
        let fees = workload.fees();
        let out = pipeline.run_epoch(EpochInput {
            transactions: &workload.transactions,
            fees: &fees,
            randomness: sha256(self.config.epoch.to_be_bytes()),
            runtime: self.config.runtime.clone(),
        })?;
        Ok(SystemReport {
            run: out.run,
            shard_sizes: out.shard_sizes,
            merge: out.merge,
            comm: out.comm,
            pipeline: pipeline.metrics().clone(),
        })
    }
}

impl From<SystemConfig> for ShardingSystem {
    fn from(config: SystemConfig) -> Self {
        ShardingSystem::new(config)
    }
}

impl From<RuntimeConfig> for SystemConfig {
    fn from(runtime: RuntimeConfig) -> Self {
        SystemConfig {
            runtime,
            ..SystemConfig::default()
        }
    }
}

impl From<RuntimeConfig> for ShardingSystem {
    fn from(runtime: RuntimeConfig) -> Self {
        ShardingSystem::testbed(runtime)
    }
}
