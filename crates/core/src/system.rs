//! The end-to-end sharding system.
//!
//! [`ShardingSystem::run`] is the whole pipeline of the paper on one
//! workload:
//!
//! 1. **Formation** (Sec. III-A) — classify transactions into contract
//!    shards + MaxShard via the call graph.
//! 2. **Miner assignment** (Sec. III-B) — allocate miners to shards, either
//!    one-per-shard (the paper's testbed) or proportionally via the
//!    verifiable-randomness rule.
//! 3. **Inter-shard merging** (Sec. IV-A) — optionally run Algorithm 1 over
//!    the small shards under unified parameters, fusing their queues.
//! 4. **Intra-shard selection** (Sec. IV-B) — optionally give multi-miner
//!    shards the congestion-game equilibrium strategy.
//! 5. **Run** — drive the block-production runtime to completion and
//!    report waiting time, empty blocks and communication counts.
//!
//! Every stage is independently switchable so experiments can ablate each
//! mechanism (Fig. 3 runs every combination).

use crate::formation::ShardPlan;
use crate::metrics::RunReport;
use crate::runtime::{simulate, PropagationModel, RuntimeConfig, SelectionStrategy, ShardSpec};
use cshard_crypto::sha256;
use cshard_games::{GameInputs, MergingConfig, UnifiedParameters};
use cshard_ledger::CallGraph;
use cshard_network::CommStats;
use cshard_primitives::{Error, MinerId, ShardId, SimTime};
use cshard_workload::Workload;

/// How miners are spread over shards.
#[derive(Clone, Copy, Debug)]
pub enum MinerAllocation {
    /// One miner per shard — the paper's nine-server testbed (Sec. VI-A:
    /// "we just set the number of miners in each shard as 1").
    OnePerShard,
    /// A fixed miner count per shard (used by the Fig. 3(h) single-shard
    /// selection experiment).
    PerShard(usize),
    /// `total` miners split proportionally to shard transaction counts —
    /// the Sec. III-B requirement that "the fraction of miners in a shard
    /// shall keep up with the fraction of transactions in that shard".
    /// Every shard receives at least one miner (largest-remainder split).
    Proportional {
        /// Total miners across the system.
        total: usize,
    },
}

/// System-level configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Runtime (block production) parameters.
    pub runtime: RuntimeConfig,
    /// Enable inter-shard merging with this game configuration
    /// (`lower_bound` doubles as the small-shard threshold).
    pub merging: Option<MergingConfig>,
    /// Enable equilibrium transaction selection in shards with more than
    /// one miner (best-reply round cap).
    pub selection: Option<usize>,
    /// Miner spread.
    pub allocation: MinerAllocation,
    /// Epoch label — seeds leader randomness, so two systems with the same
    /// config and workload are bit-identical.
    pub epoch: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            runtime: RuntimeConfig::default(),
            merging: None,
            selection: None,
            allocation: MinerAllocation::OnePerShard,
            epoch: 0,
        }
    }
}

/// Summary of the merge stage.
#[derive(Clone, Debug)]
pub struct MergeSummary {
    /// Small shards that entered the game.
    pub small_shards: usize,
    /// New (merged) shards formed.
    pub new_shards: usize,
    /// Small shards left unmerged.
    pub leftover: usize,
}

/// The full result of a system run.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Block-production results.
    pub run: RunReport,
    /// Shards that actually ran (after any merging), with their sizes.
    pub shard_sizes: Vec<(ShardId, u64)>,
    /// Merge-stage summary, when merging was enabled.
    pub merge: Option<MergeSummary>,
    /// Cross-shard communication incurred (validation is always zero for
    /// the contract-centric design; merging contributes 2 per small shard).
    pub comm: CommStats,
}

/// Splits `total` miners over shards proportionally to `sizes`, giving
/// every shard at least one miner (largest-remainder on the remainder).
fn proportional_split(sizes: &[u64], total: usize) -> Vec<usize> {
    assert!(total >= sizes.len());
    let total_size: u64 = sizes.iter().sum::<u64>().max(1);
    let spare = total - sizes.len();
    // Exact shares of the spare pool.
    let exact: Vec<f64> = sizes
        .iter()
        .map(|&s| s as f64 * spare as f64 / total_size as f64)
        .collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| 1 + e.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Largest remainders get the leftovers; ties by index (deterministic).
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    for &i in order.iter().take(total.saturating_sub(assigned)) {
        counts[i] += 1;
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    counts
}

/// The contract-centric sharding system.
#[derive(Clone, Debug)]
pub struct ShardingSystem {
    config: SystemConfig,
}

impl ShardingSystem {
    /// Builds a system.
    pub fn new(config: SystemConfig) -> Self {
        ShardingSystem { config }
    }

    /// Starts a validated, fluent configuration:
    ///
    /// ```
    /// use cshard_core::ShardingSystem;
    ///
    /// let system = ShardingSystem::builder()
    ///     .shards(9)
    ///     .block_capacity(10)
    ///     .seed(42)
    ///     .threads(0) // one worker per core; bit-identical to threads(1)
    ///     .build()
    ///     .expect("valid configuration");
    /// # let _ = system;
    /// ```
    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    /// Convenience: the paper's testbed shape (one greedy miner per shard,
    /// no merging, no selection game).
    pub fn testbed(runtime: RuntimeConfig) -> Self {
        ShardingSystem::new(SystemConfig {
            runtime,
            ..SystemConfig::default()
        })
    }

    /// The configuration this system runs with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }
}

impl From<SystemConfig> for ShardingSystem {
    fn from(config: SystemConfig) -> Self {
        ShardingSystem::new(config)
    }
}

impl From<RuntimeConfig> for SystemConfig {
    fn from(runtime: RuntimeConfig) -> Self {
        SystemConfig {
            runtime,
            ..SystemConfig::default()
        }
    }
}

impl From<RuntimeConfig> for ShardingSystem {
    fn from(runtime: RuntimeConfig) -> Self {
        ShardingSystem::testbed(runtime)
    }
}

/// Fluent construction of a [`ShardingSystem`], collapsing the
/// [`RuntimeConfig`] / [`SystemConfig`] / [`MergingConfig`] / selection
/// sprawl behind one entry point with validated defaults.
///
/// Every setter has the default of the underlying config struct; `build`
/// validates the combination and returns [`Error`] instead of panicking
/// deep inside a run.
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    shards: Option<usize>,
    config: SystemConfig,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

impl SystemBuilder {
    /// A builder holding every default.
    pub fn new() -> Self {
        SystemBuilder {
            shards: None,
            config: SystemConfig::default(),
        }
    }

    /// The shard count this system is intended for. Shard formation itself
    /// follows the workload's contracts; the builder uses this to validate
    /// miner allocation (a proportional pool must staff every shard).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Transactions per block (default 10, the paper's gas limit).
    pub fn block_capacity(mut self, capacity: usize) -> Self {
        self.config.runtime.block_capacity = capacity;
        self
    }

    /// Mean block interval per miner (default 60 s).
    pub fn mean_block_interval(mut self, interval: SimTime) -> Self {
        self.config.runtime.mean_block_interval = interval;
        self
    }

    /// The conflict window (default one block interval). Sets the legacy
    /// fixed-window propagation regime; use [`SystemBuilder::propagation`]
    /// for the network-backed latency model.
    pub fn conflict_window(mut self, window: SimTime) -> Self {
        self.config.runtime.propagation = PropagationModel::Window(window);
        self
    }

    /// The block-propagation model (window or network latency).
    pub fn propagation(mut self, propagation: PropagationModel) -> Self {
        self.config.runtime.propagation = propagation;
        self
    }

    /// Count empty blocks only up to this time (default: whole run).
    pub fn empty_block_window(mut self, window: SimTime) -> Self {
        self.config.runtime.empty_block_window = Some(window);
        self
    }

    /// The master RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.runtime.seed = seed;
        self
    }

    /// Executor worker threads: `1` = sequential (default), `0` = one per
    /// core. Results are bit-identical across settings.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.runtime.threads = threads;
        self
    }

    /// A fixed miner count on every shard (default: one per shard).
    pub fn miners_per_shard(mut self, miners: usize) -> Self {
        self.config.allocation = MinerAllocation::PerShard(miners);
        self
    }

    /// A total miner pool split proportionally to shard sizes.
    pub fn total_miners(mut self, total: usize) -> Self {
        self.config.allocation = MinerAllocation::Proportional { total };
        self
    }

    /// Enables inter-shard merging with the given small-shard threshold
    /// (shards below `lower_bound` transactions enter Algorithm 1).
    pub fn merging(mut self, lower_bound: u64) -> Self {
        self.config.merging = Some(MergingConfig {
            lower_bound,
            ..MergingConfig::default()
        });
        self
    }

    /// Enables inter-shard merging with a fully specified game config.
    pub fn merging_config(mut self, config: MergingConfig) -> Self {
        self.config.merging = Some(config);
        self
    }

    /// Enables equilibrium transaction selection in multi-miner shards
    /// (best-reply round cap, Algorithm 2).
    pub fn selection(mut self, max_rounds: usize) -> Self {
        self.config.selection = Some(max_rounds);
        self
    }

    /// The epoch label seeding leader randomness (default 0).
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.config.epoch = epoch;
        self
    }

    /// Validates the combination and builds the system.
    pub fn build(self) -> Result<ShardingSystem, Error> {
        let rt = &self.config.runtime;
        if rt.block_capacity == 0 {
            return Err(Error::Config {
                field: "block_capacity",
                reason: "must be positive".into(),
            });
        }
        if rt.mean_block_interval == SimTime::ZERO {
            return Err(Error::Config {
                field: "mean_block_interval",
                reason: "must be positive".into(),
            });
        }
        if self.shards == Some(0) {
            return Err(Error::Config {
                field: "shards",
                reason: "must be positive".into(),
            });
        }
        match self.config.allocation {
            MinerAllocation::PerShard(0) => {
                return Err(Error::Config {
                    field: "allocation",
                    reason: "shards need at least one miner".into(),
                });
            }
            MinerAllocation::Proportional { total } => {
                if let Some(shards) = self.shards {
                    if total < shards {
                        return Err(Error::InsufficientMiners {
                            shards,
                            miners: total,
                        });
                    }
                }
            }
            _ => {}
        }
        if self.config.selection == Some(0) {
            return Err(Error::Config {
                field: "selection",
                reason: "needs at least one best-reply round".into(),
            });
        }
        if let Some(m) = &self.config.merging {
            if m.lower_bound == 0 {
                return Err(Error::Config {
                    field: "merging.lower_bound",
                    reason: "a zero threshold merges nothing".into(),
                });
            }
        }
        Ok(ShardingSystem::new(self.config))
    }
}

impl From<SystemBuilder> for SystemConfig {
    /// The unvalidated escape hatch: the raw config the builder holds.
    fn from(builder: SystemBuilder) -> Self {
        builder.config
    }
}

impl ShardingSystem {
    /// Runs the pipeline on a workload.
    ///
    /// Errors when the configuration cannot produce a valid run — a zero
    /// block capacity, a zero per-shard miner count, or a proportional
    /// miner pool smaller than the shard count. (Systems built through
    /// [`ShardingSystem::builder`] have already been validated.)
    pub fn run(&self, workload: &Workload) -> Result<SystemReport, Error> {
        if self.config.runtime.block_capacity == 0 {
            return Err(Error::Config {
                field: "block_capacity",
                reason: "must be positive".into(),
            });
        }
        let comm = CommStats::new();
        let plan = ShardPlan::build(&workload.transactions, &CallGraph::new());
        let fees = workload.fees();

        // Per-shard local fee queues.
        let mut groups: Vec<(ShardId, Vec<u64>)> = plan
            .contract_shards
            .iter()
            .map(|(&shard, idxs)| (shard, idxs.iter().map(|&i| fees[i]).collect()))
            .collect();
        if !plan.maxshard.is_empty() {
            groups.push((
                ShardId::MAX_SHARD,
                plan.maxshard.iter().map(|&i| fees[i]).collect(),
            ));
        }

        // Inter-shard merging (Algorithm 1 under unified parameters).
        let merge = if let Some(mcfg) = self.config.merging.as_ref() {
            let small: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, (shard, txs))| {
                    !shard.is_max_shard() && (txs.len() as u64) < mcfg.lower_bound
                })
                .map(|(i, _)| i)
                .collect();
            let shard_sizes: Vec<(ShardId, u64)> = small
                .iter()
                .map(|&i| (groups[i].0, groups[i].1.len() as u64))
                .collect();
            let params = UnifiedParameters::from_randomness(
                sha256(self.config.epoch.to_be_bytes()),
                (0..groups.len() as u32).map(MinerId::new).collect(),
                GameInputs::Merge {
                    shard_sizes,
                    config: *mcfg,
                },
            );
            params.record_communication(&comm);
            let outcome = params.merge_outcome()?;

            // Fuse the merged groups. New shards take the id of their
            // lowest-numbered member; consumed members are dropped.
            let mut consumed: Vec<usize> = Vec::new();
            let mut fused: Vec<(ShardId, Vec<u64>)> = Vec::new();
            for players in &outcome.new_shards {
                let members: Vec<usize> = players.iter().map(|&p| small[p]).collect();
                // The merge game never emits an empty group, but a typed
                // skip keeps this off the panic path (audit rule PH001).
                let Some(id) = members.iter().map(|&g| groups[g].0).min() else {
                    continue;
                };
                let mut queue = Vec::new();
                for &g in &members {
                    queue.extend_from_slice(&groups[g].1);
                }
                consumed.extend_from_slice(&members);
                fused.push((id, queue));
            }
            let summary = MergeSummary {
                small_shards: small.len(),
                new_shards: outcome.new_shards.len(),
                leftover: outcome.leftover.len(),
            };
            consumed.sort_unstable();
            consumed.dedup();
            for &g in consumed.iter().rev() {
                groups.remove(g);
            }
            groups.extend(fused);
            groups.sort_by_key(|&(shard, _)| shard);
            Some(summary)
        } else {
            None
        };

        // Miner allocation and strategy.
        let per_shard_miners: Vec<usize> = match self.config.allocation {
            MinerAllocation::OnePerShard => vec![1; groups.len()],
            MinerAllocation::PerShard(n) => {
                if n == 0 {
                    return Err(Error::Config {
                        field: "allocation",
                        reason: "shards need at least one miner".into(),
                    });
                }
                vec![n; groups.len()]
            }
            MinerAllocation::Proportional { total } => {
                if total < groups.len() {
                    return Err(Error::InsufficientMiners {
                        shards: groups.len(),
                        miners: total,
                    });
                }
                proportional_split(
                    &groups
                        .iter()
                        .map(|(_, q)| q.len() as u64)
                        .collect::<Vec<_>>(),
                    total,
                )
            }
        };
        let specs: Vec<ShardSpec> = groups
            .iter()
            .zip(&per_shard_miners)
            .map(|((shard, queue), &miners)| {
                let strategy = match self.config.selection {
                    Some(max_rounds) if miners > 1 => SelectionStrategy::Equilibrium { max_rounds },
                    _ => SelectionStrategy::IdenticalGreedy,
                };
                ShardSpec {
                    shard: *shard,
                    fees: queue.clone(),
                    miners,
                    strategy,
                }
            })
            .collect();

        let run = simulate(&specs, &self.config.runtime)?;
        Ok(SystemReport {
            run,
            shard_sizes: groups.iter().map(|(s, q)| (*s, q.len() as u64)).collect(),
            merge,
            comm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::throughput_improvement;
    use crate::runtime::simulate_ethereum;
    use cshard_primitives::SimTime;
    use cshard_workload::FeeDistribution;

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 99 };

    fn runtime(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn testbed_run_confirms_everything() {
        let w = Workload::uniform_contracts(200, 8, FEES, 1);
        let report = ShardingSystem::testbed(runtime(1))
            .run(&w)
            .expect("valid config");
        assert_eq!(report.run.total_txs(), 200);
        assert_eq!(report.shard_sizes.len(), 9);
        assert!(report.merge.is_none());
        assert_eq!(report.comm.total(), 0, "no communication without merging");
        assert!(report.run.shards.iter().all(|s| s.confirmed == s.txs));
    }

    #[test]
    fn fig3a_improvement_grows_with_shards() {
        // Throughput improvement vs Ethereum rises ~linearly in the shard
        // count (Fig. 3(a): 7.2× at 9 shards on the testbed).
        let mut prev = 0.0;
        for contracts in [1usize, 4, 8] {
            let mut imp_sum = 0.0;
            for seed in 0..5u64 {
                let w = Workload::uniform_contracts(200, contracts, FEES, 2);
                let sharded = ShardingSystem::testbed(runtime(seed))
                    .run(&w)
                    .expect("valid config");
                let eth = simulate_ethereum(w.fees(), 1, &runtime(seed)).expect("valid config");
                imp_sum += throughput_improvement(&eth, &sharded.run);
            }
            let imp = imp_sum / 5.0;
            assert!(
                imp > prev * 0.8,
                "contracts={contracts}: {imp:.2} after {prev:.2}"
            );
            prev = imp;
        }
        assert!(prev > 2.8, "9-shard improvement {prev:.2} too small");
    }

    #[test]
    fn merging_reduces_empty_blocks() {
        // Fig. 3(c): small shards idle and spin empty blocks; merging fuses
        // them into one busy shard.
        let w = Workload::with_small_shards(200, 9, 4, &[3, 4, 5, 4], FEES, 3);
        let base = SystemConfig {
            runtime: RuntimeConfig {
                mean_block_interval: SimTime::from_millis(1500),
                propagation: PropagationModel::Window(SimTime::from_millis(1500)),
                seed: 3,
                ..RuntimeConfig::default()
            },
            ..SystemConfig::default()
        };
        let unmerged = ShardingSystem::new(base.clone())
            .run(&w)
            .expect("valid config");
        let merged = ShardingSystem::new(SystemConfig {
            merging: Some(MergingConfig {
                lower_bound: 16,
                ..MergingConfig::default()
            }),
            ..base
        })
        .run(&w)
        .expect("valid config");
        let summary = merged.merge.clone().expect("merging ran");
        assert_eq!(summary.small_shards, 4);
        assert!(summary.new_shards >= 1, "no shard formed: {summary:?}");
        assert!(
            merged.run.total_empty_blocks() < unmerged.run.total_empty_blocks(),
            "merging did not reduce empties: {} vs {}",
            merged.run.total_empty_blocks(),
            unmerged.run.total_empty_blocks()
        );
        // Fewer shards after merging.
        assert!(merged.shard_sizes.len() < unmerged.shard_sizes.len());
        // Unification cost: exactly 2 per small shard.
        assert_eq!(merged.comm.total(), 8);
    }

    #[test]
    fn merged_runs_are_deterministic() {
        let w = Workload::with_small_shards(200, 9, 3, &[4, 5, 6], FEES, 4);
        let cfg = SystemConfig {
            runtime: runtime(9),
            merging: Some(MergingConfig {
                lower_bound: 18,
                ..MergingConfig::default()
            }),
            ..SystemConfig::default()
        };
        let a = ShardingSystem::new(cfg.clone())
            .run(&w)
            .expect("valid config");
        let b = ShardingSystem::new(cfg).run(&w).expect("valid config");
        assert_eq!(a.run.completion, b.run.completion);
        assert_eq!(a.shard_sizes, b.shard_sizes);
    }

    #[test]
    fn selection_strategy_applies_to_multi_miner_shards() {
        let w = Workload::uniform_contracts(200, 0, FEES, 5); // single MaxShard
        let mut imp_sum = 0.0;
        for seed in 0..6u64 {
            let cfg = SystemConfig {
                runtime: runtime(seed),
                selection: Some(500),
                allocation: MinerAllocation::PerShard(9),
                ..SystemConfig::default()
            };
            let with_game = ShardingSystem::new(cfg.clone())
                .run(&w)
                .expect("valid config");
            let without = ShardingSystem::new(SystemConfig {
                selection: None,
                ..cfg
            })
            .run(&w)
            .expect("valid config");
            imp_sum += throughput_improvement(&without.run, &with_game.run);
        }
        let imp = imp_sum / 6.0;
        assert!(imp > 1.2, "selection game improvement {imp:.2}");
    }

    #[test]
    fn proportional_allocation_tracks_shard_sizes() {
        // One dominant shard plus a small one: the dominant shard must get
        // the lion's share of a 20-miner pool, and all shards ≥ 1.
        let w = Workload::with_small_shards(200, 3, 1, &[8], FEES, 8);
        let report = ShardingSystem::new(SystemConfig {
            runtime: runtime(8),
            allocation: MinerAllocation::Proportional { total: 20 },
            ..SystemConfig::default()
        })
        .run(&w)
        .expect("valid config");
        assert_eq!(report.run.total_txs(), 200);
        assert!(report.run.shards.iter().all(|s| s.confirmed == s.txs));
    }

    #[test]
    fn proportional_split_properties() {
        let counts = super::proportional_split(&[100, 50, 5, 0], 31);
        assert_eq!(counts.iter().sum::<usize>(), 31);
        assert!(counts.iter().all(|&c| c >= 1));
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert_eq!(counts[3], 1, "empty shard still staffed");
        // Exactly one miner per shard when the pool equals the shard count.
        assert_eq!(super::proportional_split(&[7, 9], 2), vec![1, 1]);
    }

    #[test]
    fn builder_defaults_match_struct_defaults() {
        let built = ShardingSystem::builder().build().expect("defaults valid");
        let direct = ShardingSystem::new(SystemConfig::default());
        let w = Workload::uniform_contracts(100, 4, FEES, 11);
        let a = built.run(&w).expect("valid config");
        let b = direct.run(&w).expect("valid config");
        assert_eq!(a.run.completion, b.run.completion);
        assert_eq!(a.shard_sizes, b.shard_sizes);
    }

    #[test]
    fn builder_sets_every_knob() {
        let system = ShardingSystem::builder()
            .shards(9)
            .block_capacity(12)
            .mean_block_interval(SimTime::from_secs(30))
            .conflict_window(SimTime::from_secs(15))
            .empty_block_window(SimTime::from_secs(212))
            .seed(42)
            .threads(4)
            .total_miners(20)
            .merging(16)
            .selection(500)
            .epoch(3)
            .build()
            .expect("valid configuration");
        let cfg = system.config();
        assert_eq!(cfg.runtime.block_capacity, 12);
        assert_eq!(cfg.runtime.mean_block_interval, SimTime::from_secs(30));
        assert_eq!(
            cfg.runtime.propagation,
            PropagationModel::Window(SimTime::from_secs(15))
        );
        assert_eq!(cfg.runtime.conflict_window(), SimTime::from_secs(15));
        assert_eq!(
            cfg.runtime.empty_block_window,
            Some(SimTime::from_secs(212))
        );
        assert_eq!(cfg.runtime.seed, 42);
        assert_eq!(cfg.runtime.threads, 4);
        assert!(matches!(
            cfg.allocation,
            MinerAllocation::Proportional { total: 20 }
        ));
        assert_eq!(cfg.merging.as_ref().map(|m| m.lower_bound), Some(16));
        assert_eq!(cfg.selection, Some(500));
        assert_eq!(cfg.epoch, 3);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        use cshard_primitives::Error;
        assert!(matches!(
            ShardingSystem::builder().block_capacity(0).build(),
            Err(Error::Config {
                field: "block_capacity",
                ..
            })
        ));
        assert!(matches!(
            ShardingSystem::builder().miners_per_shard(0).build(),
            Err(Error::Config {
                field: "allocation",
                ..
            })
        ));
        assert!(matches!(
            ShardingSystem::builder().shards(9).total_miners(4).build(),
            Err(Error::InsufficientMiners {
                shards: 9,
                miners: 4
            })
        ));
        assert!(matches!(
            ShardingSystem::builder().selection(0).build(),
            Err(Error::Config {
                field: "selection",
                ..
            })
        ));
        assert!(matches!(
            ShardingSystem::builder()
                .mean_block_interval(SimTime::ZERO)
                .build(),
            Err(Error::Config {
                field: "mean_block_interval",
                ..
            })
        ));
    }

    #[test]
    fn run_rejects_invalid_direct_configs() {
        use cshard_primitives::Error;
        let w = Workload::uniform_contracts(50, 2, FEES, 12);
        let zero_cap = ShardingSystem::new(SystemConfig {
            runtime: RuntimeConfig {
                block_capacity: 0,
                ..RuntimeConfig::default()
            },
            ..SystemConfig::default()
        });
        assert!(matches!(
            zero_cap.run(&w),
            Err(Error::Config {
                field: "block_capacity",
                ..
            })
        ));
        let starved = ShardingSystem::new(SystemConfig {
            runtime: runtime(1),
            allocation: MinerAllocation::Proportional { total: 1 },
            ..SystemConfig::default()
        });
        assert!(matches!(
            starved.run(&w),
            Err(Error::InsufficientMiners { .. })
        ));
    }

    #[test]
    fn from_impls_wire_the_old_call_sites() {
        let w = Workload::uniform_contracts(80, 3, FEES, 13);
        let via_runtime: ShardingSystem = runtime(2).into();
        let via_config: ShardingSystem = SystemConfig {
            runtime: runtime(2),
            ..SystemConfig::default()
        }
        .into();
        let a = via_runtime.run(&w).expect("valid config");
        let b = via_config.run(&w).expect("valid config");
        assert_eq!(a.run.completion, b.run.completion);
        // SystemBuilder -> SystemConfig is the unvalidated escape hatch.
        let cfg: SystemConfig = ShardingSystem::builder().seed(9).into();
        assert_eq!(cfg.runtime.seed, 9);
    }

    #[test]
    fn total_txs_preserved_through_merging() {
        let w = Workload::with_small_shards(200, 9, 5, &[2, 3, 4, 5, 6], FEES, 6);
        let report = ShardingSystem::new(SystemConfig {
            runtime: runtime(7),
            merging: Some(MergingConfig {
                lower_bound: 15,
                ..MergingConfig::default()
            }),
            ..SystemConfig::default()
        })
        .run(&w)
        .expect("valid config");
        let total: u64 = report.shard_sizes.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 200);
        assert_eq!(report.run.total_txs(), 200);
    }
}
