//! The end-to-end sharding system.
//!
//! [`ShardingSystem::run`] is the whole pipeline of the paper on one
//! workload:
//!
//! 1. **Formation** (Sec. III-A) — classify transactions into contract
//!    shards + MaxShard via the call graph.
//! 2. **Miner assignment** (Sec. III-B) — allocate miners to shards, either
//!    one-per-shard (the paper's testbed) or proportionally via the
//!    verifiable-randomness rule.
//! 3. **Inter-shard merging** (Sec. IV-A) — optionally run Algorithm 1 over
//!    the small shards under unified parameters, fusing their queues.
//! 4. **Intra-shard selection** (Sec. IV-B) — optionally give multi-miner
//!    shards the congestion-game equilibrium strategy.
//! 5. **Run** — drive the block-production runtime to completion and
//!    report waiting time, empty blocks and communication counts.
//!
//! Every stage is independently switchable so experiments can ablate each
//! mechanism (Fig. 3 runs every combination).

use crate::formation::ShardPlan;
use crate::metrics::RunReport;
use crate::runtime::{simulate, RuntimeConfig, SelectionStrategy, ShardSpec};
use cshard_crypto::sha256;
use cshard_games::{GameInputs, MergingConfig, UnifiedParameters};
use cshard_ledger::CallGraph;
use cshard_network::CommStats;
use cshard_primitives::{MinerId, ShardId};
use cshard_workload::Workload;

/// How miners are spread over shards.
#[derive(Clone, Copy, Debug)]
pub enum MinerAllocation {
    /// One miner per shard — the paper's nine-server testbed (Sec. VI-A:
    /// "we just set the number of miners in each shard as 1").
    OnePerShard,
    /// A fixed miner count per shard (used by the Fig. 3(h) single-shard
    /// selection experiment).
    PerShard(usize),
    /// `total` miners split proportionally to shard transaction counts —
    /// the Sec. III-B requirement that "the fraction of miners in a shard
    /// shall keep up with the fraction of transactions in that shard".
    /// Every shard receives at least one miner (largest-remainder split).
    Proportional {
        /// Total miners across the system.
        total: usize,
    },
}

/// System-level configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Runtime (block production) parameters.
    pub runtime: RuntimeConfig,
    /// Enable inter-shard merging with this game configuration
    /// (`lower_bound` doubles as the small-shard threshold).
    pub merging: Option<MergingConfig>,
    /// Enable equilibrium transaction selection in shards with more than
    /// one miner (best-reply round cap).
    pub selection: Option<usize>,
    /// Miner spread.
    pub allocation: MinerAllocation,
    /// Epoch label — seeds leader randomness, so two systems with the same
    /// config and workload are bit-identical.
    pub epoch: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            runtime: RuntimeConfig::default(),
            merging: None,
            selection: None,
            allocation: MinerAllocation::OnePerShard,
            epoch: 0,
        }
    }
}

/// Summary of the merge stage.
#[derive(Clone, Debug)]
pub struct MergeSummary {
    /// Small shards that entered the game.
    pub small_shards: usize,
    /// New (merged) shards formed.
    pub new_shards: usize,
    /// Small shards left unmerged.
    pub leftover: usize,
}

/// The full result of a system run.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Block-production results.
    pub run: RunReport,
    /// Shards that actually ran (after any merging), with their sizes.
    pub shard_sizes: Vec<(ShardId, u64)>,
    /// Merge-stage summary, when merging was enabled.
    pub merge: Option<MergeSummary>,
    /// Cross-shard communication incurred (validation is always zero for
    /// the contract-centric design; merging contributes 2 per small shard).
    pub comm: CommStats,
}

/// Splits `total` miners over shards proportionally to `sizes`, giving
/// every shard at least one miner (largest-remainder on the remainder).
fn proportional_split(sizes: &[u64], total: usize) -> Vec<usize> {
    assert!(total >= sizes.len());
    let total_size: u64 = sizes.iter().sum::<u64>().max(1);
    let spare = total - sizes.len();
    // Exact shares of the spare pool.
    let exact: Vec<f64> = sizes
        .iter()
        .map(|&s| s as f64 * spare as f64 / total_size as f64)
        .collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| 1 + e.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Largest remainders get the leftovers; ties by index (deterministic).
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra).expect("finite").then(a.cmp(&b))
    });
    for &i in order.iter().take(total.saturating_sub(assigned)) {
        counts[i] += 1;
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    counts
}

/// The contract-centric sharding system.
#[derive(Clone, Debug)]
pub struct ShardingSystem {
    config: SystemConfig,
}

impl ShardingSystem {
    /// Builds a system.
    pub fn new(config: SystemConfig) -> Self {
        ShardingSystem { config }
    }

    /// Convenience: the paper's testbed shape (one greedy miner per shard,
    /// no merging, no selection game).
    pub fn testbed(runtime: RuntimeConfig) -> Self {
        ShardingSystem::new(SystemConfig {
            runtime,
            ..SystemConfig::default()
        })
    }

    /// Runs the pipeline on a workload.
    pub fn run(&self, workload: &Workload) -> SystemReport {
        let comm = CommStats::new();
        let plan = ShardPlan::build(&workload.transactions, &CallGraph::new());
        let fees = workload.fees();

        // Per-shard local fee queues.
        let mut groups: Vec<(ShardId, Vec<u64>)> = plan
            .contract_shards
            .iter()
            .map(|(&shard, idxs)| (shard, idxs.iter().map(|&i| fees[i]).collect()))
            .collect();
        if !plan.maxshard.is_empty() {
            groups.push((
                ShardId::MAX_SHARD,
                plan.maxshard.iter().map(|&i| fees[i]).collect(),
            ));
        }

        // Inter-shard merging (Algorithm 1 under unified parameters).
        let merge = self.config.merging.as_ref().map(|mcfg| {
            let small: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, (shard, txs))| {
                    !shard.is_max_shard() && (txs.len() as u64) < mcfg.lower_bound
                })
                .map(|(i, _)| i)
                .collect();
            let shard_sizes: Vec<(ShardId, u64)> = small
                .iter()
                .map(|&i| (groups[i].0, groups[i].1.len() as u64))
                .collect();
            let params = UnifiedParameters::from_randomness(
                sha256(self.config.epoch.to_be_bytes()),
                (0..groups.len() as u32).map(MinerId::new).collect(),
                GameInputs::Merge {
                    shard_sizes,
                    config: *mcfg,
                },
            );
            params.record_communication(&comm);
            let outcome = params.merge_outcome();

            // Fuse the merged groups. New shards take the id of their
            // lowest-numbered member; consumed members are dropped.
            let mut consumed: Vec<usize> = Vec::new();
            let mut fused: Vec<(ShardId, Vec<u64>)> = Vec::new();
            for players in &outcome.new_shards {
                let members: Vec<usize> = players.iter().map(|&p| small[p]).collect();
                let id = members
                    .iter()
                    .map(|&g| groups[g].0)
                    .min()
                    .expect("merged shard has members");
                let mut queue = Vec::new();
                for &g in &members {
                    queue.extend_from_slice(&groups[g].1);
                }
                consumed.extend_from_slice(&members);
                fused.push((id, queue));
            }
            let summary = MergeSummary {
                small_shards: small.len(),
                new_shards: outcome.new_shards.len(),
                leftover: outcome.leftover.len(),
            };
            consumed.sort_unstable();
            consumed.dedup();
            for &g in consumed.iter().rev() {
                groups.remove(g);
            }
            groups.extend(fused);
            groups.sort_by_key(|&(shard, _)| shard);
            summary
        });

        // Miner allocation and strategy.
        let per_shard_miners: Vec<usize> = match self.config.allocation {
            MinerAllocation::OnePerShard => vec![1; groups.len()],
            MinerAllocation::PerShard(n) => {
                assert!(n > 0, "shards need at least one miner");
                vec![n; groups.len()]
            }
            MinerAllocation::Proportional { total } => {
                assert!(
                    total >= groups.len(),
                    "need at least one miner per shard ({} shards, {total} miners)",
                    groups.len()
                );
                proportional_split(
                    &groups.iter().map(|(_, q)| q.len() as u64).collect::<Vec<_>>(),
                    total,
                )
            }
        };
        let specs: Vec<ShardSpec> = groups
            .iter()
            .zip(&per_shard_miners)
            .map(|((shard, queue), &miners)| {
                let strategy = match self.config.selection {
                    Some(max_rounds) if miners > 1 => {
                        SelectionStrategy::Equilibrium { max_rounds }
                    }
                    _ => SelectionStrategy::IdenticalGreedy,
                };
                ShardSpec {
                    shard: *shard,
                    fees: queue.clone(),
                    miners,
                    strategy,
                }
            })
            .collect();

        let run = simulate(&specs, &self.config.runtime);
        SystemReport {
            run,
            shard_sizes: groups
                .iter()
                .map(|(s, q)| (*s, q.len() as u64))
                .collect(),
            merge,
            comm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::throughput_improvement;
    use crate::runtime::simulate_ethereum;
    use cshard_primitives::SimTime;
    use cshard_workload::FeeDistribution;

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 99 };

    fn runtime(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn testbed_run_confirms_everything() {
        let w = Workload::uniform_contracts(200, 8, FEES, 1);
        let report = ShardingSystem::testbed(runtime(1)).run(&w);
        assert_eq!(report.run.total_txs(), 200);
        assert_eq!(report.shard_sizes.len(), 9);
        assert!(report.merge.is_none());
        assert_eq!(report.comm.total(), 0, "no communication without merging");
        assert!(report
            .run
            .shards
            .iter()
            .all(|s| s.confirmed == s.txs));
    }

    #[test]
    fn fig3a_improvement_grows_with_shards() {
        // Throughput improvement vs Ethereum rises ~linearly in the shard
        // count (Fig. 3(a): 7.2× at 9 shards on the testbed).
        let mut prev = 0.0;
        for contracts in [1usize, 4, 8] {
            let mut imp_sum = 0.0;
            for seed in 0..5u64 {
                let w = Workload::uniform_contracts(200, contracts, FEES, 2);
                let sharded = ShardingSystem::testbed(runtime(seed)).run(&w);
                let eth = simulate_ethereum(w.fees(), 1, &runtime(seed));
                imp_sum += throughput_improvement(&eth, &sharded.run);
            }
            let imp = imp_sum / 5.0;
            assert!(imp > prev * 0.8, "contracts={contracts}: {imp:.2} after {prev:.2}");
            prev = imp;
        }
        assert!(prev > 2.8, "9-shard improvement {prev:.2} too small");
    }

    #[test]
    fn merging_reduces_empty_blocks() {
        // Fig. 3(c): small shards idle and spin empty blocks; merging fuses
        // them into one busy shard.
        let w = Workload::with_small_shards(200, 9, 4, &[3, 4, 5, 4], FEES, 3);
        let base = SystemConfig {
            runtime: RuntimeConfig {
                mean_block_interval: SimTime::from_millis(1500),
                conflict_window: SimTime::from_millis(1500),
                seed: 3,
                ..RuntimeConfig::default()
            },
            ..SystemConfig::default()
        };
        let unmerged = ShardingSystem::new(base.clone()).run(&w);
        let merged = ShardingSystem::new(SystemConfig {
            merging: Some(MergingConfig {
                lower_bound: 16,
                ..MergingConfig::default()
            }),
            ..base
        })
        .run(&w);
        let summary = merged.merge.clone().expect("merging ran");
        assert_eq!(summary.small_shards, 4);
        assert!(summary.new_shards >= 1, "no shard formed: {summary:?}");
        assert!(
            merged.run.total_empty_blocks() < unmerged.run.total_empty_blocks(),
            "merging did not reduce empties: {} vs {}",
            merged.run.total_empty_blocks(),
            unmerged.run.total_empty_blocks()
        );
        // Fewer shards after merging.
        assert!(merged.shard_sizes.len() < unmerged.shard_sizes.len());
        // Unification cost: exactly 2 per small shard.
        assert_eq!(merged.comm.total(), 8);
    }

    #[test]
    fn merged_runs_are_deterministic() {
        let w = Workload::with_small_shards(200, 9, 3, &[4, 5, 6], FEES, 4);
        let cfg = SystemConfig {
            runtime: runtime(9),
            merging: Some(MergingConfig {
                lower_bound: 18,
                ..MergingConfig::default()
            }),
            ..SystemConfig::default()
        };
        let a = ShardingSystem::new(cfg.clone()).run(&w);
        let b = ShardingSystem::new(cfg).run(&w);
        assert_eq!(a.run.completion, b.run.completion);
        assert_eq!(a.shard_sizes, b.shard_sizes);
    }

    #[test]
    fn selection_strategy_applies_to_multi_miner_shards() {
        let w = Workload::uniform_contracts(200, 0, FEES, 5); // single MaxShard
        let mut imp_sum = 0.0;
        for seed in 0..6u64 {
            let cfg = SystemConfig {
                runtime: runtime(seed),
                selection: Some(500),
                allocation: MinerAllocation::PerShard(9),
                ..SystemConfig::default()
            };
            let with_game = ShardingSystem::new(cfg.clone()).run(&w);
            let without = ShardingSystem::new(SystemConfig {
                selection: None,
                ..cfg
            })
            .run(&w);
            imp_sum += throughput_improvement(&without.run, &with_game.run);
        }
        let imp = imp_sum / 6.0;
        assert!(imp > 1.2, "selection game improvement {imp:.2}");
    }

    #[test]
    fn proportional_allocation_tracks_shard_sizes() {
        // One dominant shard plus a small one: the dominant shard must get
        // the lion's share of a 20-miner pool, and all shards ≥ 1.
        let w = Workload::with_small_shards(200, 3, 1, &[8], FEES, 8);
        let report = ShardingSystem::new(SystemConfig {
            runtime: runtime(8),
            allocation: MinerAllocation::Proportional { total: 20 },
            ..SystemConfig::default()
        })
        .run(&w);
        assert_eq!(report.run.total_txs(), 200);
        assert!(report.run.shards.iter().all(|s| s.confirmed == s.txs));
    }

    #[test]
    fn proportional_split_properties() {
        let counts = super::proportional_split(&[100, 50, 5, 0], 31);
        assert_eq!(counts.iter().sum::<usize>(), 31);
        assert!(counts.iter().all(|&c| c >= 1));
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert_eq!(counts[3], 1, "empty shard still staffed");
        // Exactly one miner per shard when the pool equals the shard count.
        assert_eq!(super::proportional_split(&[7, 9], 2), vec![1, 1]);
    }

    #[test]
    fn total_txs_preserved_through_merging() {
        let w = Workload::with_small_shards(200, 9, 5, &[2, 3, 4, 5, 6], FEES, 6);
        let report = ShardingSystem::new(SystemConfig {
            runtime: runtime(7),
            merging: Some(MergingConfig {
                lower_bound: 15,
                ..MergingConfig::default()
            }),
            ..SystemConfig::default()
        })
        .run(&w);
        let total: u64 = report.shard_sizes.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 200);
        assert_eq!(report.run.total_txs(), 200);
    }
}
