//! Stage 2 — Form: per-shard local fee queues.

use super::{missing_product, EpochCtx, PipelineStage, StageKind, StageOutput};
use cshard_primitives::{Error, ShardId};

/// Materializes one local fee queue per active shard from the classify
/// stage's plan — contract shards in id order, the MaxShard last (its id
/// sorts highest, so the order survives the merge stage's re-sort).
#[derive(Debug, Default)]
pub struct FormStage;

impl FormStage {
    /// A formation stage (stateless; queues are rebuilt per epoch).
    pub fn new() -> Self {
        FormStage
    }
}

impl PipelineStage for FormStage {
    fn kind(&self) -> StageKind {
        StageKind::Form
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        let Some(plan) = ctx.plan.as_ref() else {
            return Err(missing_product("form", "classify"));
        };
        let fees = ctx.fees;
        let mut groups: Vec<(ShardId, Vec<u64>)> = plan
            .contract_shards
            .iter()
            .map(|(&shard, idxs)| (shard, idxs.iter().map(|&i| fees[i]).collect()))
            .collect();
        if !plan.maxshard.is_empty() {
            groups.push((
                ShardId::MAX_SHARD,
                plan.maxshard.iter().map(|&i| fees[i]).collect(),
            ));
        }
        let out = StageOutput {
            items: groups.len() as u64,
            ..StageOutput::default()
        };
        ctx.groups = groups;
        Ok(out)
    }
}
