//! The staged epoch pipeline: one implementation of the paper's per-epoch
//! protocol.
//!
//! Every consumer of the protocol — [`crate::system::ShardingSystem`] on a
//! single workload, [`crate::longrun::LongRun`] across epochs, the fault
//! harness replaying the same drivers — runs the *same* fixed sequence:
//!
//! ```text
//! Classify → Form → Merge → Select → Unify → Place
//! ```
//!
//! * [`ClassifyStage`] (Sec. III-A) — absorb the batch into the owned call
//!   graph and classify every transaction into contract shards + MaxShard.
//! * [`FormStage`] — materialize per-shard local fee queues from the plan.
//! * [`MergeStage`] (Sec. IV-A) — run Algorithm 1 over the small shards
//!   under unified parameters and fuse the merged queues. With placement
//!   enabled it carries merge groups across epochs, re-validating each
//!   carried group and re-running the dynamics only where sizes moved.
//! * [`SelectStage`] (Sec. III-B / IV-B) — allocate miners to shards and
//!   attach each shard's selection strategy.
//! * [`UnifyStage`] (Sec. IV-C) — every miner replays the agreed
//!   parameters; the block-production runtime drives all shards to
//!   completion.
//! * [`PlacementStage`] — observe the epoch's MaxShard traffic and, when
//!   placement is enabled, propose hot-account migrations that take
//!   effect next epoch (off by default; bit-invisible when off).
//!
//! Each stage is a struct implementing [`PipelineStage`]: it reads and
//! writes the epoch's [`EpochCtx`] and may carry **persistent cross-epoch
//! state** (the classifier's accumulated call graph, the merge stage's
//! outcome memo, the unify stage's per-shard warm caches). Warm-start
//! state never changes results — identical inputs reach bit-identical
//! equilibria, only the iteration counters shrink — and is off by default
//! ([`PipelineConfig::warm_start`]), which keeps every golden fingerprint
//! byte-identical to the pre-pipeline code.
//!
//! Instrumentation is split per the determinism contract: iteration and
//! item *counts* (sim-clock-free) accumulate in [`PipelineMetrics`] inside
//! this crate; wall-clock timing belongs to the caller via
//! [`StageObserver`] (the bench harness times stages with host clocks —
//! rule ND001 keeps such reads out of protocol crates).

pub mod classify;
pub mod form;
pub mod merge;
pub mod place;
pub mod select;
pub mod unify;

pub use classify::ClassifyStage;
pub use form::FormStage;
pub use merge::{MergeStage, MergeSummary};
pub use place::PlacementStage;
pub use select::SelectStage;
pub use unify::UnifyStage;

use crate::formation::ShardPlan;
use crate::system::MinerAllocation;
use cshard_games::MergingConfig;
use cshard_ledger::Transaction;
use cshard_network::CommStats;
use cshard_place::{Migration, PlacementConfig};
use cshard_primitives::{Error, Hash32, ShardId};
use cshard_runtime::{RunReport, RuntimeConfig, ShardSpec};

/// The six stages, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Call-graph classification into shards.
    Classify,
    /// Per-shard fee-queue formation.
    Form,
    /// Inter-shard merging (Algorithm 1).
    Merge,
    /// Miner allocation + selection strategy.
    Select,
    /// Unified replay: the block-production run.
    Unify,
    /// Cross-epoch placement: migration proposals for the next epoch.
    Place,
}

impl StageKind {
    /// Every stage, in pipeline order.
    pub const ALL: [StageKind; 6] = [
        StageKind::Classify,
        StageKind::Form,
        StageKind::Merge,
        StageKind::Select,
        StageKind::Unify,
        StageKind::Place,
    ];

    /// The stage's display name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Classify => "classify",
            StageKind::Form => "form",
            StageKind::Merge => "merge",
            StageKind::Select => "select",
            StageKind::Unify => "unify",
            StageKind::Place => "place",
        }
    }

    fn index(self) -> usize {
        match self {
            StageKind::Classify => 0,
            StageKind::Form => 1,
            StageKind::Merge => 2,
            StageKind::Select => 3,
            StageKind::Unify => 4,
            StageKind::Place => 5,
        }
    }
}

/// What one stage reports for one epoch: counts only, no clocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageOutput {
    /// Stage-specific unit count (shards classified, groups formed, new
    /// shards merged, specs built, shards run).
    pub items: u64,
    /// Game-dynamics iterations the stage executed this epoch (replicator
    /// slots for merge; best-reply sweeps for the selection games, counted
    /// in the unify stage where they run).
    pub iterations: u64,
    /// Warm-start cache hits this epoch.
    pub warm_hits: u64,
    /// Warm-start cache misses (computed cold, stored for reuse).
    pub warm_misses: u64,
    /// Scheduler task slots admitted (they had queued work) while the
    /// stage ran. Only the unify stage — the one that launches the
    /// block-production run — reports these; see
    /// `cshard_runtime::RunSchedStats`.
    pub tasks_scheduled: u64,
    /// Scheduler task slots skipped (no queued work, never stepped) — the
    /// idle-shard saving, as a number.
    pub tasks_skipped: u64,
    /// Senders whose classification was recomputed this epoch because
    /// their call-graph participation changed (classify stage only).
    pub reclassified: u64,
    /// Batch senders whose cached classification was carried forward
    /// unchanged (classify stage only) — the churn-proportionality
    /// saving, as a number.
    pub carried: u64,
}

/// Cumulative per-stage counters across a pipeline's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Epochs this stage ran in.
    pub runs: u64,
    /// Sum of [`StageOutput::items`].
    pub items: u64,
    /// Sum of [`StageOutput::iterations`].
    pub iterations: u64,
    /// Sum of [`StageOutput::warm_hits`].
    pub warm_hits: u64,
    /// Sum of [`StageOutput::warm_misses`].
    pub warm_misses: u64,
    /// Sum of [`StageOutput::tasks_scheduled`].
    pub tasks_scheduled: u64,
    /// Sum of [`StageOutput::tasks_skipped`].
    pub tasks_skipped: u64,
    /// Sum of [`StageOutput::reclassified`].
    pub reclassified: u64,
    /// Sum of [`StageOutput::carried`].
    pub carried: u64,
}

/// Iteration accounting for a whole pipeline, surfaced in
/// [`crate::system::SystemReport`]. Deliberately *not* part of any golden
/// fingerprint: counters describe the work done, not the outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Epochs completed end to end.
    pub epochs: u64,
    counters: [StageCounters; 6],
}

impl PipelineMetrics {
    /// The cumulative counters of one stage.
    pub fn stage(&self, kind: StageKind) -> &StageCounters {
        &self.counters[kind.index()]
    }

    /// Total game-dynamics iterations across all stages and epochs — the
    /// number warm starts strictly shrink.
    pub fn total_iterations(&self) -> u64 {
        self.counters.iter().map(|c| c.iterations).sum()
    }

    /// Total warm-start cache hits across all stages.
    pub fn total_warm_hits(&self) -> u64 {
        self.counters.iter().map(|c| c.warm_hits).sum()
    }

    /// Total scheduler task slots admitted across all stages and epochs.
    pub fn total_tasks_scheduled(&self) -> u64 {
        self.counters.iter().map(|c| c.tasks_scheduled).sum()
    }

    /// Total scheduler task slots skipped (idle shards never scheduled)
    /// across all stages and epochs — the number the shard-lifecycle
    /// scheduler exists to make nonzero on sparse workloads.
    pub fn total_tasks_skipped(&self) -> u64 {
        self.counters.iter().map(|c| c.tasks_skipped).sum()
    }

    /// Total senders reclassified across all epochs (classify stage).
    pub fn total_reclassified(&self) -> u64 {
        self.counters.iter().map(|c| c.reclassified).sum()
    }

    /// Total cached sender classifications carried forward across all
    /// epochs (classify stage) — what churn-proportional classification
    /// saves over reclassify-everything.
    pub fn total_carried(&self) -> u64 {
        self.counters.iter().map(|c| c.carried).sum()
    }

    fn absorb(&mut self, kind: StageKind, out: &StageOutput) {
        let c = &mut self.counters[kind.index()];
        c.runs += 1;
        c.items += out.items;
        c.iterations += out.iterations;
        c.warm_hits += out.warm_hits;
        c.warm_misses += out.warm_misses;
        c.tasks_scheduled += out.tasks_scheduled;
        c.tasks_skipped += out.tasks_skipped;
        c.reclassified += out.reclassified;
        c.carried += out.carried;
    }
}

/// Caller-side stage hooks. The pipeline itself never reads a clock
/// (ND001); a harness that wants per-stage wall time implements this and
/// brackets each stage with its own `Instant` reads.
pub trait StageObserver {
    /// Called immediately before a stage runs.
    fn stage_started(&mut self, stage: StageKind) {
        let _ = stage;
    }
    /// Called after the stage completed, with its counters.
    fn stage_finished(&mut self, stage: StageKind, output: &StageOutput) {
        let _ = (stage, output);
    }
}

/// The do-nothing observer [`EpochPipeline::run_epoch`] uses.
struct SilentObserver;
impl StageObserver for SilentObserver {}

/// Static pipeline configuration: which optional stages engage and whether
/// cross-epoch warm-start state is consulted.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Inter-shard merging game settings; `None` makes [`MergeStage`] a
    /// no-op.
    pub merging: Option<MergingConfig>,
    /// Best-reply round cap for multi-miner shards; `None` keeps every
    /// shard fee-greedy.
    pub selection: Option<usize>,
    /// How miners spread over shards.
    pub allocation: MinerAllocation,
    /// Consult cross-epoch warm-start state (merge-outcome memo, selection
    /// equilibrium caches). Results are bit-identical either way; only
    /// iteration counts differ. Off by default.
    pub warm_start: bool,
    /// The cross-epoch placement engine: merge-group carry-over and
    /// hot-account migration. Off by default; bit-invisible when off.
    pub placement: PlacementConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            merging: None,
            selection: None,
            allocation: MinerAllocation::OnePerShard,
            warm_start: false,
            placement: PlacementConfig::disabled(),
        }
    }
}

/// One epoch's inputs.
#[derive(Clone, Debug)]
pub struct EpochInput<'a> {
    /// The epoch's transaction batch.
    pub transactions: &'a [Transaction],
    /// Fee of each transaction, by batch index (`fees.len() ==
    /// transactions.len()`).
    pub fees: &'a [u64],
    /// The epoch's leader randomness — seeds the unified game parameters.
    pub randomness: Hash32,
    /// Block-production parameters for the epoch's run.
    pub runtime: RuntimeConfig,
}

/// The working state stages read and write while an epoch executes.
#[derive(Debug)]
pub struct EpochCtx<'a> {
    /// The epoch's transaction batch.
    pub transactions: &'a [Transaction],
    /// Fee of each transaction, by batch index.
    pub fees: &'a [u64],
    /// The epoch's leader randomness.
    pub randomness: Hash32,
    /// Block-production parameters.
    pub runtime: RuntimeConfig,
    /// Set by [`ClassifyStage`]: the batch's shard plan.
    pub plan: Option<ShardPlan>,
    /// Set by [`FormStage`], rewritten by [`MergeStage`]: per-shard local
    /// fee queues, in shard-id order.
    pub groups: Vec<(ShardId, Vec<u64>)>,
    /// Set by [`MergeStage`] when merging is enabled.
    pub merge: Option<MergeSummary>,
    /// Set by [`SelectStage`]: one runtime spec per shard.
    pub specs: Vec<ShardSpec>,
    /// Cross-shard communication booked during the epoch.
    pub comm: CommStats,
    /// Set by [`UnifyStage`]: the epoch's block-production report.
    pub run: Option<RunReport>,
    /// Set by [`PlacementStage`]: migrations to take effect next epoch.
    pub migrations: Vec<Migration>,
}

/// One completed epoch, as the pipeline hands it back.
#[derive(Clone, Debug)]
pub struct EpochRun {
    /// The batch's shard plan (pre-merge classification).
    pub plan: ShardPlan,
    /// Shards that actually ran (post-merge), with their sizes.
    pub shard_sizes: Vec<(ShardId, u64)>,
    /// Merge-stage summary, when merging was enabled.
    pub merge: Option<MergeSummary>,
    /// Cross-shard communication incurred.
    pub comm: CommStats,
    /// The block-production report.
    pub run: RunReport,
    /// Migrations the placement stage proposed this epoch. Already applied
    /// to the classify stage's route map — routing changes next epoch —
    /// and handed out so a runtime harness can execute the moves (drain,
    /// re-key, switch) through `Event::Migration`.
    pub migrations: Vec<Migration>,
}

/// One pipeline stage: reads and writes the [`EpochCtx`], may keep
/// persistent cross-epoch state on `self`, and reports sim-clock-free
/// counters. See the module docs for the "writing a new stage" contract
/// (DESIGN.md §4 walks through an example).
pub trait PipelineStage {
    /// Which of the six slots this stage fills.
    fn kind(&self) -> StageKind;
    /// Executes the stage for one epoch.
    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error>;
}

/// A typed out-of-order error: `stage` ran before the stage that produces
/// its input. Unreachable through [`EpochPipeline`], which fixes the
/// order; kept typed so a hand-assembled pipeline cannot panic (PH001).
pub(crate) fn missing_product(stage: &'static str, needs: &'static str) -> Error {
    Error::Config {
        field: "pipeline",
        reason: format!("{stage} stage ran before {needs} produced its output"),
    }
}

/// The staged epoch driver: owns the six stages and their cross-epoch
/// state, and runs them in order once per [`EpochPipeline::run_epoch`].
#[derive(Debug)]
pub struct EpochPipeline {
    classify: ClassifyStage,
    form: FormStage,
    merge: MergeStage,
    select: SelectStage,
    unify: UnifyStage,
    place: PlacementStage,
    metrics: PipelineMetrics,
}

impl EpochPipeline {
    /// Builds a pipeline; each stage takes its slice of the configuration.
    pub fn new(config: PipelineConfig) -> Self {
        let carry = config.placement.enabled && config.placement.carry_merge_groups;
        EpochPipeline {
            classify: ClassifyStage::new(),
            form: FormStage::new(),
            merge: MergeStage::new(config.merging, config.warm_start, carry),
            select: SelectStage::new(config.allocation, config.selection),
            unify: UnifyStage::new(config.warm_start),
            place: PlacementStage::new(config.placement),
            metrics: PipelineMetrics::default(),
        }
    }

    /// Cumulative per-stage counters since construction.
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Runs one epoch through all six stages.
    pub fn run_epoch(&mut self, input: EpochInput<'_>) -> Result<EpochRun, Error> {
        self.run_epoch_observed(input, &mut SilentObserver)
    }

    /// Like [`EpochPipeline::run_epoch`], bracketing every stage with the
    /// observer's hooks (how the bench harness times stages without this
    /// crate touching a clock).
    pub fn run_epoch_observed(
        &mut self,
        input: EpochInput<'_>,
        observer: &mut dyn StageObserver,
    ) -> Result<EpochRun, Error> {
        if input.runtime.block_capacity == 0 {
            return Err(Error::Config {
                field: "block_capacity",
                reason: "must be positive".into(),
            });
        }
        let mut ctx = EpochCtx {
            transactions: input.transactions,
            fees: input.fees,
            randomness: input.randomness,
            runtime: input.runtime,
            plan: None,
            groups: Vec::new(),
            merge: None,
            specs: Vec::new(),
            comm: CommStats::new(),
            run: None,
            migrations: Vec::new(),
        };
        let EpochPipeline {
            classify,
            form,
            merge,
            select,
            unify,
            place,
            metrics,
        } = self;
        let stages: [&mut dyn PipelineStage; 6] =
            [&mut *classify, form, merge, select, unify, place];
        for stage in stages {
            let kind = stage.kind();
            observer.stage_started(kind);
            let out = stage.run(&mut ctx)?;
            metrics.absorb(kind, &out);
            observer.stage_finished(kind, &out);
        }
        metrics.epochs += 1;
        // Feed the epoch's migrations back into the classifier so the
        // moves take effect from the next epoch on.
        classify.apply_migrations(&ctx.migrations);
        let (Some(plan), Some(run)) = (ctx.plan.take(), ctx.run.take()) else {
            return Err(missing_product("report", "a mandatory stage"));
        };
        Ok(EpochRun {
            plan,
            shard_sizes: ctx
                .groups
                .iter()
                .map(|(s, q)| (*s, q.len() as u64))
                .collect(),
            merge: ctx.merge,
            comm: ctx.comm,
            run,
            migrations: ctx.migrations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_crypto::sha256;
    use cshard_workload::{FeeDistribution, Workload};

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 99 };

    fn input_for<'a>(w: &'a Workload, fees: &'a [u64], seed: u64) -> EpochInput<'a> {
        EpochInput {
            transactions: &w.transactions,
            fees,
            randomness: sha256(0u64.to_be_bytes()),
            runtime: RuntimeConfig {
                seed,
                ..RuntimeConfig::default()
            },
        }
    }

    #[test]
    fn pipeline_matches_system_run_exactly() {
        use crate::system::{ShardingSystem, SystemConfig};
        let w = Workload::uniform_contracts(200, 8, FEES, 1);
        let fees = w.fees();
        let report = ShardingSystem::new(SystemConfig {
            runtime: RuntimeConfig {
                seed: 3,
                ..RuntimeConfig::default()
            },
            ..SystemConfig::default()
        })
        .run(&w)
        .expect("valid config");
        let mut pipeline = EpochPipeline::new(PipelineConfig::default());
        let out = pipeline
            .run_epoch(input_for(&w, &fees, 3))
            .expect("valid config");
        assert_eq!(out.run.fingerprint(), report.run.fingerprint());
        assert_eq!(out.shard_sizes, report.shard_sizes);
    }

    #[test]
    fn metrics_accumulate_across_epochs() {
        let w = Workload::uniform_contracts(120, 4, FEES, 7);
        let fees = w.fees();
        let mut pipeline = EpochPipeline::new(PipelineConfig::default());
        for _ in 0..3 {
            pipeline
                .run_epoch(input_for(&w, &fees, 7))
                .expect("valid config");
        }
        let m = pipeline.metrics();
        assert_eq!(m.epochs, 3);
        for kind in StageKind::ALL {
            assert_eq!(m.stage(kind).runs, 3, "{} runs", kind.name());
        }
        // 4 contract shards + MaxShard, every epoch.
        assert_eq!(m.stage(StageKind::Form).items, 15);
        // No games configured: zero dynamics iterations.
        assert_eq!(m.total_iterations(), 0);
    }

    #[test]
    fn observer_sees_every_stage_in_order() {
        #[derive(Default)]
        struct Recorder {
            started: Vec<StageKind>,
            finished: Vec<StageKind>,
        }
        impl StageObserver for Recorder {
            fn stage_started(&mut self, stage: StageKind) {
                self.started.push(stage);
            }
            fn stage_finished(&mut self, stage: StageKind, _output: &StageOutput) {
                self.finished.push(stage);
            }
        }
        let w = Workload::uniform_contracts(60, 2, FEES, 2);
        let fees = w.fees();
        let mut pipeline = EpochPipeline::new(PipelineConfig::default());
        let mut rec = Recorder::default();
        pipeline
            .run_epoch_observed(input_for(&w, &fees, 2), &mut rec)
            .expect("valid config");
        assert_eq!(rec.started, StageKind::ALL.to_vec());
        assert_eq!(rec.finished, StageKind::ALL.to_vec());
    }

    #[test]
    fn zero_capacity_is_rejected_before_any_stage() {
        let w = Workload::uniform_contracts(30, 2, FEES, 4);
        let fees = w.fees();
        let mut pipeline = EpochPipeline::new(PipelineConfig::default());
        let mut input = input_for(&w, &fees, 4);
        input.runtime.block_capacity = 0;
        let err = pipeline.run_epoch(input).unwrap_err();
        assert!(matches!(
            err,
            Error::Config {
                field: "block_capacity",
                ..
            }
        ));
        assert_eq!(pipeline.metrics().epochs, 0);
    }
}
