//! Stage 1 — Classify: call-graph classification (Sec. III-A).

use super::{EpochCtx, PipelineStage, StageKind, StageOutput};
use crate::formation::ShardPlan;
use cshard_ledger::CallGraph;
use cshard_primitives::Error;

/// Classifies each epoch's batch against the call graph it **owns** and
/// keeps across epochs: the batch is absorbed once, then classified in
/// place ([`ShardPlan::classify`]) — no per-epoch clone of the whole
/// accumulated history, which is what made the pre-pipeline
/// `ShardPlan::build` path O(history) per epoch.
///
/// A fresh stage starts with an empty graph (single-workload runs); a
/// long-running pipeline accumulates sender history here, so users who
/// diversify migrate to the MaxShard exactly as under the old
/// `EpochManager`-owned history.
#[derive(Debug, Default)]
pub struct ClassifyStage {
    graph: CallGraph,
}

impl ClassifyStage {
    /// A classifier with no history.
    pub fn new() -> Self {
        ClassifyStage {
            graph: CallGraph::new(),
        }
    }

    /// A classifier seeded with pre-existing history.
    pub fn with_history(graph: CallGraph) -> Self {
        ClassifyStage { graph }
    }

    /// The accumulated cross-epoch call graph.
    pub fn history(&self) -> &CallGraph {
        &self.graph
    }
}

impl PipelineStage for ClassifyStage {
    fn kind(&self) -> StageKind {
        StageKind::Classify
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        self.graph.observe_all(ctx.transactions.iter());
        let plan = ShardPlan::classify(ctx.transactions, &self.graph);
        let out = StageOutput {
            items: plan.active_shard_count() as u64,
            ..StageOutput::default()
        };
        ctx.plan = Some(plan);
        Ok(out)
    }
}
