//! Stage 1 — Classify: call-graph classification (Sec. III-A).

use super::{EpochCtx, PipelineStage, StageKind, StageOutput};
use crate::formation::ShardPlan;
use cshard_ledger::{CallGraph, SenderClass};
use cshard_place::Migration;
use cshard_primitives::{Address, Error, ShardId};
use std::collections::{BTreeMap, BTreeSet};

/// Classifies each epoch's batch against the call graph it **owns** and
/// keeps across epochs, reclassifying only *dirty* senders.
///
/// [`CallGraph::observe_all`] reports exactly the addresses whose
/// participation record changed; everyone else's cached [`SenderClass`]
/// is carried forward untouched (classification is a pure function of
/// the participation record, so a clean sender classifies exactly as
/// before). The plan is then built from the cache
/// ([`ShardPlan::classify_cached`]), bit-identical to a full
/// reclassification but with per-epoch classification work proportional
/// to *churn* — new or diversifying senders — instead of batch size.
///
/// A fresh stage starts with an empty graph and cache (single-workload
/// runs); a long-running pipeline accumulates sender history here, so
/// users who diversify migrate to the MaxShard exactly as under the old
/// `EpochManager`-owned history.
/// When placement is enabled, migrations feed back into the stage between
/// epochs ([`ClassifyStage::apply_migrations`]): a moved sender's cached
/// route is *invalidated* — dirty-sender churn alone would never touch it,
/// since a migration changes where the sender lives, not what it calls —
/// and a pin records its new home so [`ShardPlan::classify_placed`] routes
/// its home-contract calls there from the next epoch on.
#[derive(Debug, Default)]
pub struct ClassifyStage {
    graph: CallGraph,
    /// Cached class per ever-observed sender; refreshed only for dirty
    /// addresses each epoch.
    routes: BTreeMap<Address, SenderClass>,
    /// Placement pins: migrated senders and the shard they moved to.
    pins: BTreeMap<Address, ShardId>,
}

impl ClassifyStage {
    /// A classifier with no history.
    pub fn new() -> Self {
        ClassifyStage::default()
    }

    /// A classifier seeded with pre-existing history. The route cache is
    /// rebuilt from the graph so carried-forward assignments agree with
    /// the seeded history from the first epoch on.
    pub fn with_history(graph: CallGraph) -> Self {
        let routes = graph.senders().map(|a| (a, graph.classify(a))).collect();
        ClassifyStage {
            graph,
            routes,
            pins: BTreeMap::new(),
        }
    }

    /// The accumulated cross-epoch call graph.
    pub fn history(&self) -> &CallGraph {
        &self.graph
    }

    /// Applies the epoch's migrations: each moved sender's cached route is
    /// dropped — it must reclassify next epoch even with zero call-graph
    /// churn — and a pin records its new home shard.
    pub fn apply_migrations(&mut self, moves: &[Migration]) {
        for m in moves {
            self.routes.remove(&m.account);
            self.pins.insert(m.account, m.to);
        }
    }

    /// The currently pinned senders and their home shards.
    pub fn pins(&self) -> &BTreeMap<Address, ShardId> {
        &self.pins
    }
}

impl PipelineStage for ClassifyStage {
    fn kind(&self) -> StageKind {
        StageKind::Classify
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        let dirty = self.graph.observe_all(ctx.transactions.iter());
        for &addr in &dirty {
            self.routes.insert(addr, self.graph.classify(addr));
        }
        let batch_senders: BTreeSet<Address> =
            ctx.transactions.iter().map(|tx| tx.sender).collect();
        // A clean sender missing from the cache was invalidated by a
        // migration (first sight always dirties): reclassify it now.
        let mut reclassified = dirty.len() as u64;
        let mut carried = 0u64;
        for &addr in &batch_senders {
            if dirty.contains(&addr) {
                continue;
            }
            if self.routes.contains_key(&addr) {
                carried += 1;
            } else {
                self.routes.insert(addr, self.graph.classify(addr));
                reclassified += 1;
            }
        }
        let plan = ShardPlan::classify_placed(ctx.transactions, &self.routes, &self.pins);
        let out = StageOutput {
            items: plan.active_shard_count() as u64,
            reclassified,
            carried,
            ..StageOutput::default()
        };
        ctx.plan = Some(plan);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_ledger::Transaction;
    use cshard_primitives::{Amount, ContractId};

    fn call(user: u64, contract: u32, nonce: u64) -> Transaction {
        Transaction::call(
            Address::user(user),
            nonce,
            ContractId::new(contract),
            Amount(10),
            Amount(1),
        )
    }

    fn run_stage(stage: &mut ClassifyStage, txs: &[Transaction]) -> (ShardPlan, StageOutput) {
        let mut ctx = EpochCtx {
            transactions: txs,
            fees: &[],
            randomness: cshard_crypto::sha256(0u64.to_be_bytes()),
            runtime: cshard_runtime::RuntimeConfig::default(),
            plan: None,
            groups: Vec::new(),
            merge: None,
            specs: Vec::new(),
            comm: cshard_network::CommStats::new(),
            run: None,
            migrations: Vec::new(),
        };
        let out = stage.run(&mut ctx).expect("classify never fails");
        (ctx.plan.expect("classify sets the plan"), out)
    }

    #[test]
    fn incremental_plan_matches_full_reclassification() {
        // Run the same epoch sequence through the incremental stage and a
        // from-scratch classifier; plans must be bit-identical each epoch.
        let epochs: Vec<Vec<Transaction>> = vec![
            (0..10).map(|u| call(u, (u % 3) as u32, 0)).collect(),
            // Repeat senders (clean) + one diversifier (dirty).
            (0..10)
                .map(|u| {
                    if u == 4 {
                        call(u, 9, 1)
                    } else {
                        call(u, (u % 3) as u32, 1)
                    }
                })
                .collect(),
            // Fresh senders only.
            (100..110).map(|u| call(u, 0, 0)).collect(),
        ];
        let mut stage = ClassifyStage::new();
        let mut full_graph = CallGraph::new();
        for batch in &epochs {
            let (plan, _) = run_stage(&mut stage, batch);
            full_graph.observe_all(batch.iter());
            let full = ShardPlan::classify(batch, &full_graph);
            assert_eq!(plan.shard_of, full.shard_of);
            assert_eq!(plan.contract_shards, full.contract_shards);
            assert_eq!(plan.maxshard, full.maxshard);
        }
    }

    #[test]
    fn repeat_senders_are_carried_not_reclassified() {
        let batch: Vec<Transaction> = (0..8).map(|u| call(u, 0, 0)).collect();
        let mut stage = ClassifyStage::new();
        let (_, first) = run_stage(&mut stage, &batch);
        assert_eq!(first.reclassified, 8, "first sight dirties everyone");
        assert_eq!(first.carried, 0);
        let repeat: Vec<Transaction> = (0..8).map(|u| call(u, 0, 1)).collect();
        let (_, second) = run_stage(&mut stage, &repeat);
        assert_eq!(second.reclassified, 0, "no participation change");
        assert_eq!(second.carried, 8);
    }

    #[test]
    fn diversifying_sender_is_reclassified_and_moves_to_maxshard() {
        let mut stage = ClassifyStage::new();
        run_stage(&mut stage, &[call(1, 0, 0)]);
        let (plan, out) = run_stage(&mut stage, &[call(1, 1, 1)]);
        assert_eq!(out.reclassified, 1);
        assert_eq!(out.carried, 0);
        assert_eq!(plan.maxshard, vec![0], "multi-contract sender → MaxShard");
    }

    #[test]
    fn migrated_sender_is_invalidated_and_routed_to_its_pin() {
        use cshard_primitives::ShardId;
        let mut stage = ClassifyStage::new();
        // Sender 1 calls two contracts: MultiContract, lands on MaxShard.
        let (plan0, _) = run_stage(&mut stage, &[call(1, 0, 0), call(1, 1, 1)]);
        assert_eq!(plan0.maxshard, vec![0, 1]);
        // Placement moves sender 1 home to contract 0's shard.
        stage.apply_migrations(&[Migration {
            account: Address::user(1),
            from: ShardId::MAX_SHARD,
            to: ShardId::new(0),
            txs: 2,
        }]);
        // Next epoch repeats the same participation — zero call-graph
        // churn — yet the mover must be reclassified, not carried, and its
        // home-contract call must route to the pinned shard.
        let (plan, out) = run_stage(&mut stage, &[call(1, 0, 2), call(1, 1, 3)]);
        assert_eq!(out.reclassified, 1, "moved sender reclassifies");
        assert_eq!(out.carried, 0);
        assert_eq!(
            plan.shard_of[0],
            ShardId::new(0),
            "home call follows the pin"
        );
        assert_eq!(plan.shard_of[1], ShardId::MAX_SHARD, "foreign call stays");
        // A further epoch with unchanged behaviour is carried again.
        let (_, out2) = run_stage(&mut stage, &[call(1, 0, 4)]);
        assert_eq!(out2.carried, 1);
        assert_eq!(out2.reclassified, 0);
    }

    #[test]
    fn with_history_seeds_the_route_cache() {
        // Pre-existing history must constrain the first epoch even though
        // the batch itself leaves the sender's participation unchanged.
        let mut graph = CallGraph::new();
        graph.observe(&Transaction::direct(
            Address::user(1),
            0,
            Address::user(9),
            Amount(5),
            Amount(1),
        ));
        let mut stage = ClassifyStage::with_history(graph);
        let (plan, out) = run_stage(&mut stage, &[call(1, 0, 1)]);
        assert_eq!(
            plan.maxshard,
            vec![0],
            "direct history forces MaxShard on a carried sender"
        );
        assert_eq!(out.reclassified, 1, "first call still adds a contract");
        // A pure repeat afterwards is carried and classifies the same.
        let (plan2, out2) = run_stage(&mut stage, &[call(1, 0, 2)]);
        assert_eq!(out2.carried, 1);
        assert_eq!(plan2.maxshard, vec![0]);
    }
}
