//! Stage 4 — Select: miner allocation (Sec. III-B) and per-shard selection
//! strategy (Sec. IV-B).

use super::{EpochCtx, PipelineStage, StageKind, StageOutput};
use crate::system::MinerAllocation;
use cshard_primitives::Error;
use cshard_runtime::{SelectionStrategy, ShardSpec};

/// Splits `total` miners over shards proportionally to `sizes`, giving
/// every shard at least one miner (largest-remainder on the remainder).
pub(crate) fn proportional_split(sizes: &[u64], total: usize) -> Vec<usize> {
    assert!(total >= sizes.len());
    let total_size: u64 = sizes.iter().sum::<u64>().max(1);
    let spare = total - sizes.len();
    // Exact shares of the spare pool.
    let exact: Vec<f64> = sizes
        .iter()
        .map(|&s| s as f64 * spare as f64 / total_size as f64)
        .collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| 1 + e.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Largest remainders get the leftovers; ties by index (deterministic).
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    for &i in order.iter().take(total.saturating_sub(assigned)) {
        counts[i] += 1;
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    counts
}

/// Allocates miners to the (post-merge) shards and attaches each shard's
/// selection behaviour: the congestion-game equilibrium where a selection
/// round cap is configured and the shard is contended, fee-greedy
/// otherwise.
#[derive(Debug)]
pub struct SelectStage {
    allocation: MinerAllocation,
    selection: Option<usize>,
}

impl SelectStage {
    /// A selection stage over the given miner spread and round cap.
    pub fn new(allocation: MinerAllocation, selection: Option<usize>) -> Self {
        SelectStage {
            allocation,
            selection,
        }
    }
}

impl PipelineStage for SelectStage {
    fn kind(&self) -> StageKind {
        StageKind::Select
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        let groups = &ctx.groups;
        let per_shard_miners: Vec<usize> = match self.allocation {
            MinerAllocation::OnePerShard => vec![1; groups.len()],
            MinerAllocation::PerShard(n) => {
                if n == 0 {
                    return Err(Error::Config {
                        field: "allocation",
                        reason: "shards need at least one miner".into(),
                    });
                }
                vec![n; groups.len()]
            }
            MinerAllocation::Proportional { total } => {
                if total < groups.len() {
                    return Err(Error::InsufficientMiners {
                        shards: groups.len(),
                        miners: total,
                    });
                }
                proportional_split(
                    &groups
                        .iter()
                        .map(|(_, q)| q.len() as u64)
                        .collect::<Vec<_>>(),
                    total,
                )
            }
        };
        let specs: Vec<ShardSpec> = groups
            .iter()
            .zip(&per_shard_miners)
            .map(|((shard, queue), &miners)| {
                let strategy = match self.selection {
                    Some(max_rounds) if miners > 1 => SelectionStrategy::Equilibrium { max_rounds },
                    _ => SelectionStrategy::IdenticalGreedy,
                };
                ShardSpec {
                    shard: *shard,
                    fees: queue.clone(),
                    miners,
                    strategy,
                }
            })
            .collect();
        let out = StageOutput {
            items: specs.len() as u64,
            ..StageOutput::default()
        };
        ctx.specs = specs;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn proportional_split_properties() {
        let counts = super::proportional_split(&[100, 50, 5, 0], 31);
        assert_eq!(counts.iter().sum::<usize>(), 31);
        assert!(counts.iter().all(|&c| c >= 1));
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert_eq!(counts[3], 1, "empty shard still staffed");
        // Exactly one miner per shard when the pool equals the shard count.
        assert_eq!(super::proportional_split(&[7, 9], 2), vec![1, 1]);
    }
}
