//! Stage 6 — Place: cross-epoch placement decisions.
//!
//! Runs last so it sees the epoch whole: the classified plan (who routed
//! to the MaxShard), the post-merge shard sizes and the communication the
//! epoch actually booked. It feeds the persistent [`PlacementEngine`] and
//! emits the epoch's [`Migration`] list into the context; the pipeline
//! applies those to the classify stage *after* the epoch completes, so a
//! move decided in epoch `e` reroutes traffic from epoch `e + 1` on —
//! matching the runtime side, where the migrating driver executes the
//! move at the start of the next epoch's run.

use super::{missing_product, EpochCtx, PipelineStage, StageKind, StageOutput};
use crate::formation::ShardPlan;
use cshard_ledger::TxKind;
use cshard_place::{Migration, PlacementConfig, PlacementEngine};
use cshard_primitives::{Error, ShardId};

/// The placement stage: disabled it is a no-op with a default output —
/// bit-invisible, like a disabled merge stage — and enabled it observes
/// MaxShard traffic and proposes hot-account migrations when the epoch's
/// load imbalance crosses the configured threshold.
#[derive(Debug)]
pub struct PlacementStage {
    config: PlacementConfig,
    engine: PlacementEngine,
}

impl PlacementStage {
    /// Builds the stage; the engine persists across epochs.
    pub fn new(config: PlacementConfig) -> Self {
        PlacementStage {
            config,
            engine: PlacementEngine::new(config),
        }
    }

    /// The persistent placement engine (traffic counters, moved set).
    pub fn engine(&self) -> &PlacementEngine {
        &self.engine
    }
}

impl PipelineStage for PlacementStage {
    fn kind(&self) -> StageKind {
        StageKind::Place
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        if !self.config.enabled {
            return Ok(StageOutput::default());
        }
        let plan = ctx
            .plan
            .as_ref()
            .ok_or_else(|| missing_product("place", "classify"))?;
        for &i in &plan.maxshard {
            if let Some(tx) = ctx.transactions.get(i) {
                if let TxKind::ContractCall { contract, .. } = &tx.kind {
                    self.engine.observe(tx.sender, *contract);
                }
            }
        }
        let sizes: Vec<(ShardId, u64)> = ctx
            .groups
            .iter()
            .map(|(s, q)| (*s, q.len() as u64))
            .collect();
        let imbalance = PlacementEngine::imbalance(&sizes, &ctx.comm.snapshot());
        if imbalance >= self.config.min_imbalance {
            ctx.migrations = self
                .engine
                .propose()
                .into_iter()
                .map(|hot| Migration {
                    account: hot.account,
                    from: ShardId::MAX_SHARD,
                    to: ShardPlan::shard_for_contract(hot.contract),
                    txs: hot.txs,
                })
                .collect();
        }
        Ok(StageOutput {
            items: ctx.migrations.len() as u64,
            ..StageOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_ledger::Transaction;
    use cshard_network::CommStats;
    use cshard_primitives::{Address, Amount, ContractId, Hash32};
    use cshard_runtime::RuntimeConfig;

    fn call(user: u64, contract: u32, nonce: u64) -> Transaction {
        Transaction::call(
            Address::user(user),
            nonce,
            ContractId::new(contract),
            Amount(10),
            Amount(1),
        )
    }

    fn run_stage(
        stage: &mut PlacementStage,
        txs: &[Transaction],
        maxshard: Vec<usize>,
    ) -> (Vec<Migration>, StageOutput) {
        let shard_of = txs
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if maxshard.contains(&i) {
                    ShardId::MAX_SHARD
                } else {
                    ShardId::new(0)
                }
            })
            .collect();
        let plan = ShardPlan {
            contract_shards: Default::default(),
            maxshard,
            shard_of,
        };
        let mut ctx = EpochCtx {
            transactions: txs,
            fees: &[],
            randomness: Hash32::default(),
            runtime: RuntimeConfig::default(),
            plan: Some(plan),
            groups: Vec::new(),
            merge: None,
            specs: Vec::new(),
            comm: CommStats::new(),
            run: None,
            migrations: Vec::new(),
        };
        let out = stage.run(&mut ctx).expect("place never fails with a plan");
        (ctx.migrations, out)
    }

    #[test]
    fn disabled_stage_is_inert() {
        let mut stage = PlacementStage::new(PlacementConfig::disabled());
        let txs: Vec<Transaction> = (0..6).map(|n| call(1, 0, n)).collect();
        let (migrations, out) = run_stage(&mut stage, &txs, vec![0, 1, 2, 3, 4, 5]);
        assert!(migrations.is_empty());
        assert_eq!(out, StageOutput::default());
        assert_eq!(stage.engine().tracked_senders(), 0);
    }

    #[test]
    fn dominant_maxshard_sender_is_proposed_for_its_home_shard() {
        let mut stage = PlacementStage::new(PlacementConfig::engaged());
        // Sender 1's calls all sit on the MaxShard and target contract 3;
        // sender 2's call is already on a contract shard and is ignored.
        let mut txs: Vec<Transaction> = (0..5).map(|n| call(1, 3, n)).collect();
        txs.push(call(2, 0, 0));
        let (migrations, out) = run_stage(&mut stage, &txs, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.items, 1);
        assert_eq!(
            migrations,
            vec![Migration {
                account: Address::user(1),
                from: ShardId::MAX_SHARD,
                to: ShardId::new(3),
                txs: 5,
            }]
        );
        assert_eq!(
            stage.engine().tracked_senders(),
            1,
            "contract-shard traffic untracked"
        );
        // The same epoch again proposes nothing: the account moved.
        let (again, _) = run_stage(&mut stage, &txs, vec![0, 1, 2, 3, 4]);
        assert!(again.is_empty());
    }

    #[test]
    fn imbalance_threshold_gates_proposals() {
        let mut stage = PlacementStage::new(PlacementConfig {
            min_imbalance: 100.0,
            ..PlacementConfig::engaged()
        });
        let txs: Vec<Transaction> = (0..5).map(|n| call(1, 3, n)).collect();
        // Empty groups -> imbalance 0.0 < 100.0: observed but not proposed.
        let (migrations, _) = run_stage(&mut stage, &txs, vec![0, 1, 2, 3, 4]);
        assert!(migrations.is_empty());
        assert_eq!(stage.engine().tracked_senders(), 1);
    }
}
