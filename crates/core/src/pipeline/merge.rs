//! Stage 3 — Merge: the inter-shard merging game (Sec. IV-A, Algorithm 1)
//! under unified parameters (Sec. IV-C).

use super::{EpochCtx, PipelineStage, StageKind, StageOutput};
use cshard_games::{GameInputs, IterativeMergeOutcome, MergingConfig, UnifiedParameters};
use cshard_primitives::{Error, Hash32, MinerId, ShardId};
use std::collections::BTreeMap;

/// Summary of the merge stage.
#[derive(Clone, Debug)]
pub struct MergeSummary {
    /// Small shards that entered the game.
    pub small_shards: usize,
    /// New (merged) shards formed.
    pub new_shards: usize,
    /// Small shards left unmerged.
    pub leftover: usize,
}

/// Runs Algorithm 1 over the small shards and fuses the merged queues.
///
/// With warm starts enabled, the replayed outcome is memoized by the
/// unified broadcast's canonical [`UnifiedParameters::digest`]: a repeated
/// epoch (same randomness, miner set, shard sizes and game config) reuses
/// the stored equilibrium instead of re-running the replicator dynamics.
/// The digest covers *every* input the dynamics read, so a hit is exact by
/// construction — the fused groups are bit-identical, only the slot count
/// drops to zero. (Re-running "fewer slots from a warm seed" is not an
/// option here: the one-shot game draws its realization randomness from
/// the stream position the slots leave behind, so a shorter run would
/// change the outcome. Memoization is the warm start that preserves
/// bit-identity.)
#[derive(Debug)]
pub struct MergeStage {
    config: Option<MergingConfig>,
    warm: bool,
    memo: BTreeMap<Hash32, IterativeMergeOutcome>,
}

impl MergeStage {
    /// A merge stage; `config: None` disables merging entirely.
    pub fn new(config: Option<MergingConfig>, warm: bool) -> Self {
        MergeStage {
            config,
            warm,
            memo: BTreeMap::new(),
        }
    }

    /// Memoized merge outcomes currently held.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

impl PipelineStage for MergeStage {
    fn kind(&self) -> StageKind {
        StageKind::Merge
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        let Some(mcfg) = self.config.as_ref() else {
            return Ok(StageOutput::default());
        };
        let groups = &mut ctx.groups;
        let small: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, (shard, txs))| {
                !shard.is_max_shard() && (txs.len() as u64) < mcfg.lower_bound
            })
            .map(|(i, _)| i)
            .collect();
        let shard_sizes: Vec<(ShardId, u64)> = small
            .iter()
            .map(|&i| (groups[i].0, groups[i].1.len() as u64))
            .collect();
        let params = UnifiedParameters::from_randomness(
            ctx.randomness,
            (0..u32::try_from(groups.len()).unwrap_or(u32::MAX))
                .map(MinerId::new)
                .collect(),
            GameInputs::Merge {
                shard_sizes,
                config: *mcfg,
            },
        );
        params.record_communication(&ctx.comm);
        let mut warm_hit = false;
        let outcome = if self.warm {
            let key = params.digest();
            if let Some(memoized) = self.memo.get(&key) {
                warm_hit = true;
                memoized.clone()
            } else {
                let fresh = params.merge_outcome()?;
                self.memo.insert(key, fresh.clone());
                fresh
            }
        } else {
            params.merge_outcome()?
        };

        // Fuse the merged groups. New shards take the id of their
        // lowest-numbered member; consumed members are dropped.
        let mut consumed: Vec<usize> = Vec::new();
        let mut fused: Vec<(ShardId, Vec<u64>)> = Vec::new();
        for players in &outcome.new_shards {
            let members: Vec<usize> = players.iter().map(|&p| small[p]).collect();
            // The merge game never emits an empty group, but a typed
            // skip keeps this off the panic path (audit rule PH001).
            let Some(id) = members.iter().map(|&g| groups[g].0).min() else {
                continue;
            };
            let mut queue = Vec::new();
            for &g in &members {
                queue.extend_from_slice(&groups[g].1);
            }
            consumed.extend_from_slice(&members);
            fused.push((id, queue));
        }
        let summary = MergeSummary {
            small_shards: small.len(),
            new_shards: outcome.new_shards.len(),
            leftover: outcome.leftover.len(),
        };
        consumed.sort_unstable();
        consumed.dedup();
        for &g in consumed.iter().rev() {
            groups.remove(g);
        }
        groups.extend(fused);
        groups.sort_by_key(|&(shard, _)| shard);

        let out = StageOutput {
            items: summary.new_shards as u64,
            iterations: if warm_hit {
                0
            } else {
                outcome.total_slots as u64
            },
            warm_hits: u64::from(warm_hit),
            warm_misses: u64::from(self.warm && !warm_hit),
            ..StageOutput::default()
        };
        ctx.merge = Some(summary);
        Ok(out)
    }
}
