//! Stage 3 — Merge: the inter-shard merging game (Sec. IV-A, Algorithm 1)
//! under unified parameters (Sec. IV-C).

use super::{EpochCtx, PipelineStage, StageKind, StageOutput};
use cshard_games::{GameInputs, IterativeMergeOutcome, MergingConfig, UnifiedParameters};
use cshard_primitives::{Error, Hash32, MinerId, ShardId};
use std::collections::{BTreeMap, BTreeSet};

/// Summary of the merge stage.
#[derive(Clone, Debug)]
pub struct MergeSummary {
    /// Small shards that entered the game.
    pub small_shards: usize,
    /// New (merged) shards formed.
    pub new_shards: usize,
    /// Small shards left unmerged.
    pub leftover: usize,
}

/// The merge groups decided in a previous epoch, kept for carry-over.
///
/// Each group records its members as `(shard id, size-at-decision)` so a
/// later epoch can re-validate it: the group still stands iff every
/// member is again a small shard of exactly that size — then its
/// equilibrium is unchanged by construction and the dynamics need not
/// re-run for it.
#[derive(Clone, Debug)]
struct CarriedMerge {
    /// Digest of the unified broadcast that produced the groups.
    digest: Hash32,
    /// Decided groups: members with their sizes at decision time.
    groups: Vec<Vec<(ShardId, u64)>>,
}

/// Runs Algorithm 1 over the small shards and fuses the merged queues.
///
/// With warm starts enabled, the replayed outcome is memoized by the
/// unified broadcast's canonical [`UnifiedParameters::digest`]: a repeated
/// epoch (same randomness, miner set, shard sizes and game config) reuses
/// the stored equilibrium instead of re-running the replicator dynamics.
/// The digest covers *every* input the dynamics read, so a hit is exact by
/// construction — the fused groups are bit-identical, only the slot count
/// drops to zero. (Re-running "fewer slots from a warm seed" is not an
/// option here: the one-shot game draws its realization randomness from
/// the stream position the slots leave behind, so a shorter run would
/// change the outcome. Memoization is the warm start that preserves
/// bit-identity.)
///
/// With the placement engine's carry switch on, the stage additionally
/// keeps the *decided groups* across epochs. An epoch whose broadcast
/// digest matches the carried one reuses the whole partition (zero
/// dynamics slots, bit-identical to a cold run — the digest covers every
/// input). When the digest differs, each carried group is re-validated
/// against the new small-shard sizes: groups whose members all survived
/// at the same size are kept as-is, and the replicator dynamics re-run
/// only over the shards left outside any surviving group. Carry-over can
/// change outcomes relative to a cold run when sizes drift (that is its
/// point — placement persistence), which is why it lives behind the
/// off-by-default placement switch rather than the always-bit-identical
/// `warm_start` flag. The unified broadcast itself is unchanged in every
/// path: full parameters are built and their communication recorded, so
/// a disabled engine is bit-invisible and an enabled one books identical
/// cross-shard messaging.
#[derive(Debug)]
pub struct MergeStage {
    config: Option<MergingConfig>,
    warm: bool,
    carry: bool,
    memo: BTreeMap<Hash32, IterativeMergeOutcome>,
    carried: Option<CarriedMerge>,
}

impl MergeStage {
    /// A merge stage; `config: None` disables merging entirely, `carry`
    /// enables cross-epoch group carry-over (the placement engine's
    /// merge-persistence half).
    pub fn new(config: Option<MergingConfig>, warm: bool, carry: bool) -> Self {
        MergeStage {
            config,
            warm,
            carry,
            memo: BTreeMap::new(),
            carried: None,
        }
    }

    /// Memoized merge outcomes currently held.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Whether a decided partition is currently carried.
    pub fn has_carried_groups(&self) -> bool {
        self.carried.is_some()
    }
}

impl PipelineStage for MergeStage {
    fn kind(&self) -> StageKind {
        StageKind::Merge
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        let Some(mcfg) = self.config.as_ref() else {
            return Ok(StageOutput::default());
        };
        let groups = &mut ctx.groups;
        let small: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, (shard, txs))| {
                !shard.is_max_shard() && (txs.len() as u64) < mcfg.lower_bound
            })
            .map(|(i, _)| i)
            .collect();
        let shard_sizes: Vec<(ShardId, u64)> = small
            .iter()
            .map(|&i| (groups[i].0, groups[i].1.len() as u64))
            .collect();
        let miners: Vec<MinerId> = (0..u32::try_from(groups.len()).unwrap_or(u32::MAX))
            .map(MinerId::new)
            .collect();
        let params = UnifiedParameters::from_randomness(
            ctx.randomness,
            miners.clone(),
            GameInputs::Merge {
                shard_sizes: shard_sizes.clone(),
                config: *mcfg,
            },
        );
        params.record_communication(&ctx.comm);
        let digest = params.digest();
        // Where each small shard id currently sits in `groups`.
        let pos: BTreeMap<ShardId, usize> = small.iter().map(|&i| (groups[i].0, i)).collect();

        // Decide the merged groups, as member-index lists into `groups`.
        let mut warm_hit = false;
        let mut warm_miss = false;
        let mut carried_groups = 0u64;
        let iterations: u64;
        let leftover: usize;
        let member_groups: Vec<Vec<usize>>;

        let carry_match = self
            .carry
            .then_some(self.carried.as_ref())
            .flatten()
            .filter(|c| c.digest == digest)
            .cloned();
        let memo_hit = if self.warm {
            self.memo.get(&digest).cloned()
        } else {
            None
        };
        if let Some(c) = carry_match {
            // Identical broadcast: the whole carried partition stands.
            member_groups = c
                .groups
                .iter()
                .map(|g| {
                    g.iter()
                        .filter_map(|(id, _)| pos.get(id).copied())
                        .collect()
                })
                .collect();
            carried_groups = member_groups.len() as u64;
            iterations = 0;
            leftover = small.len()
                - member_groups
                    .iter()
                    .map(|g: &Vec<usize>| g.len())
                    .sum::<usize>();
        } else if let Some(outcome) = memo_hit {
            warm_hit = true;
            member_groups = outcome
                .new_shards
                .iter()
                .map(|players| {
                    players
                        .iter()
                        .filter_map(|&p| small.get(p).copied())
                        .collect()
                })
                .collect();
            iterations = 0;
            leftover = outcome.leftover.len();
        } else if let Some(c) = self.carry.then(|| self.carried.take()).flatten() {
            // Changed inputs: keep every group whose members all survived
            // at their decision size, re-run the game for the rest.
            let size_of: BTreeMap<ShardId, u64> = shard_sizes.iter().copied().collect();
            let mut taken: BTreeSet<ShardId> = BTreeSet::new();
            let mut decided: Vec<Vec<usize>> = Vec::new();
            for g in &c.groups {
                let valid = !g.is_empty()
                    && g.iter()
                        .all(|(id, sz)| size_of.get(id) == Some(sz) && !taken.contains(id));
                if valid {
                    taken.extend(g.iter().map(|(id, _)| *id));
                    decided.push(
                        g.iter()
                            .filter_map(|(id, _)| pos.get(id).copied())
                            .collect(),
                    );
                }
            }
            carried_groups = decided.len() as u64;
            let rerun: Vec<usize> = small
                .iter()
                .copied()
                .filter(|&i| !taken.contains(&groups[i].0))
                .collect();
            let rerun_sizes: Vec<(ShardId, u64)> = rerun
                .iter()
                .map(|&i| (groups[i].0, groups[i].1.len() as u64))
                .collect();
            // Same broadcast randomness, restricted player set. The full
            // broadcast's communication is already recorded above; the
            // restricted re-run is local replay work, not a second round
            // of messages.
            let rparams = UnifiedParameters::from_randomness(
                ctx.randomness,
                miners,
                GameInputs::Merge {
                    shard_sizes: rerun_sizes,
                    config: *mcfg,
                },
            );
            let outcome = rparams.merge_outcome()?;
            iterations = outcome.total_slots as u64;
            leftover = outcome.leftover.len();
            decided.extend(outcome.new_shards.iter().map(|players| {
                players
                    .iter()
                    .filter_map(|&p| rerun.get(p).copied())
                    .collect::<Vec<usize>>()
            }));
            member_groups = decided;
        } else {
            let outcome = params.merge_outcome()?;
            if self.warm {
                warm_miss = true;
                self.memo.insert(digest, outcome.clone());
            }
            member_groups = outcome
                .new_shards
                .iter()
                .map(|players| {
                    players
                        .iter()
                        .filter_map(|&p| small.get(p).copied())
                        .collect()
                })
                .collect();
            iterations = outcome.total_slots as u64;
            leftover = outcome.leftover.len();
        }

        // Snapshot the decided partition (member ids + sizes) before
        // fusion rewrites the groups.
        if self.carry {
            self.carried = Some(CarriedMerge {
                digest,
                groups: member_groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .map(|&i| (groups[i].0, groups[i].1.len() as u64))
                            .collect()
                    })
                    .collect(),
            });
        }

        // Fuse the merged groups. New shards take the id of their
        // lowest-numbered member; consumed members are dropped.
        let mut consumed: Vec<usize> = Vec::new();
        let mut fused: Vec<(ShardId, Vec<u64>)> = Vec::new();
        for members in &member_groups {
            // The merge game never emits an empty group, but a typed
            // skip keeps this off the panic path (audit rule PH001).
            let Some(id) = members.iter().map(|&g| groups[g].0).min() else {
                continue;
            };
            let mut queue = Vec::new();
            for &g in members {
                queue.extend_from_slice(&groups[g].1);
            }
            consumed.extend_from_slice(members);
            fused.push((id, queue));
        }
        let summary = MergeSummary {
            small_shards: small.len(),
            new_shards: member_groups.len(),
            leftover,
        };
        consumed.sort_unstable();
        consumed.dedup();
        for &g in consumed.iter().rev() {
            groups.remove(g);
        }
        groups.extend(fused);
        groups.sort_by_key(|&(shard, _)| shard);

        let out = StageOutput {
            items: summary.new_shards as u64,
            iterations,
            warm_hits: u64::from(warm_hit),
            warm_misses: u64::from(warm_miss),
            carried: carried_groups,
            ..StageOutput::default()
        };
        ctx.merge = Some(summary);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_crypto::sha256;
    use cshard_network::CommStats;
    use cshard_runtime::RuntimeConfig;

    fn ctx_with_groups(groups: Vec<(ShardId, Vec<u64>)>) -> EpochCtx<'static> {
        EpochCtx {
            transactions: &[],
            fees: &[],
            randomness: sha256(9u64.to_be_bytes()),
            runtime: RuntimeConfig::default(),
            plan: None,
            groups,
            merge: None,
            specs: Vec::new(),
            comm: CommStats::new(),
            run: None,
            migrations: Vec::new(),
        }
    }

    /// Twelve small shards (sizes 3–5) plus one large shard that never
    /// enters the game; a `lower_bound` of 10 lets several groups form.
    fn small_world() -> Vec<(ShardId, Vec<u64>)> {
        let mut groups: Vec<(ShardId, Vec<u64>)> = (0..12)
            .map(|i| (ShardId::new(i), vec![1u64; 3 + (i as usize % 3)]))
            .collect();
        groups.push((ShardId::new(100), vec![2u64; 64]));
        groups
    }

    fn config() -> Option<MergingConfig> {
        Some(MergingConfig {
            lower_bound: 10,
            ..MergingConfig::default()
        })
    }

    #[test]
    fn identical_broadcast_reuses_the_carried_partition_bit_identically() {
        let mut carry = MergeStage::new(config(), false, true);
        let mut c1 = ctx_with_groups(small_world());
        let o1 = carry.run(&mut c1).expect("valid merge config");
        assert!(o1.iterations > 0, "the first epoch runs the dynamics");
        assert_eq!(o1.carried, 0, "nothing to carry on first sight");
        assert!(carry.has_carried_groups());

        let mut c2 = ctx_with_groups(small_world());
        let o2 = carry.run(&mut c2).expect("valid merge config");
        assert_eq!(o2.iterations, 0, "identical broadcast re-runs nothing");
        assert_eq!(o2.carried, o2.items, "the whole partition is carried");

        let mut cold_stage = MergeStage::new(config(), false, false);
        let mut cc = ctx_with_groups(small_world());
        let oc = cold_stage.run(&mut cc).expect("valid merge config");
        assert_eq!(c2.groups, cc.groups, "carried fusion is bit-identical");
        assert_eq!(o2.items, oc.items);
    }

    #[test]
    fn changed_shard_keeps_valid_groups_and_reruns_only_the_rest() {
        let mut carry = MergeStage::new(config(), false, true);
        let mut c1 = ctx_with_groups(small_world());
        let o1 = carry.run(&mut c1).expect("valid merge config");
        assert!(o1.items >= 2, "the world must form several groups");

        // Grow one small shard by a transaction: only groups containing
        // it go invalid; everything else stands at its decision size.
        let mut grown = small_world();
        grown[0].1.push(7);
        let mut c2 = ctx_with_groups(grown.clone());
        let o2 = carry.run(&mut c2).expect("valid merge config");

        let mut cold_stage = MergeStage::new(config(), false, false);
        let mut cc = ctx_with_groups(grown);
        let oc = cold_stage.run(&mut cc).expect("valid merge config");

        assert!(o2.carried >= 1, "groups without the grown shard stand");
        assert!(
            o2.iterations < oc.iterations,
            "only the uncovered remainder re-runs: carried {} < cold {}",
            o2.iterations,
            oc.iterations
        );
    }

    #[test]
    fn fully_invalidated_carry_matches_a_cold_recompute() {
        let mut carry = MergeStage::new(config(), false, true);
        let mut c1 = ctx_with_groups(small_world());
        carry.run(&mut c1).expect("valid merge config");

        // Grow every small shard: no carried group survives validation,
        // so the re-run covers the full player set under the same
        // broadcast randomness — bit-identical to a cold recompute.
        let mut grown = small_world();
        for (id, queue) in grown.iter_mut() {
            if !id.is_max_shard() && queue.len() < 10 {
                queue.push(3);
            }
        }
        let mut c2 = ctx_with_groups(grown.clone());
        let o2 = carry.run(&mut c2).expect("valid merge config");

        let mut cold_stage = MergeStage::new(config(), false, false);
        let mut cc = ctx_with_groups(grown);
        let oc = cold_stage.run(&mut cc).expect("valid merge config");

        assert_eq!(o2.carried, 0, "no group survives a global size drift");
        assert_eq!(o2.iterations, oc.iterations);
        assert_eq!(c2.groups, cc.groups, "full re-run is bit-identical");
    }
}
