//! Stage 5 — Unify: the unified-replay block-production run (Sec. IV-C).
//!
//! Every miner holds the same broadcast parameters by this point; the
//! stage builds one [`ContractShardDriver`] per shard and drives them all
//! to completion on the shared event-loop runtime. This is the *only*
//! place the workspace turns shard specs into an epoch run — the
//! `ShardingSystem`, the long run, and (through the same driver type) the
//! fault harness all end here.

use super::{EpochCtx, PipelineStage, StageKind, StageOutput};
use cshard_games::SelectionWarmCache;
use cshard_primitives::{Error, ShardId};
use cshard_runtime::{ContractShardDriver, Runtime, SelectionDynamicsStats};
use std::collections::BTreeMap;

/// Runs the epoch. With warm starts enabled, each shard's
/// [`SelectionWarmCache`] is threaded from epoch to epoch: a shard whose
/// selection game repeats an earlier epoch's exact inputs seeds the
/// best-reply dynamics at the cached equilibrium and certifies it in one
/// sweep. The run is bit-identical either way (the cache key covers every
/// game input, and a Nash equilibrium certifies to itself); only the
/// sweep counters shrink.
#[derive(Debug)]
pub struct UnifyStage {
    warm: bool,
    caches: BTreeMap<ShardId, SelectionWarmCache>,
    epochs: u64,
    rounds: u64,
}

impl UnifyStage {
    /// A unify stage; `warm` enables the cross-epoch selection caches.
    pub fn new(warm: bool) -> Self {
        UnifyStage {
            warm,
            caches: BTreeMap::new(),
            epochs: 0,
            rounds: 0,
        }
    }

    /// Cumulative selection-dynamics accounting across every epoch this
    /// stage ran (sweep counts from the drivers, hit/miss counts from the
    /// per-shard caches).
    pub fn selection_stats(&self) -> SelectionDynamicsStats {
        let (hits, misses) = self.cache_counts();
        SelectionDynamicsStats {
            epochs: self.epochs,
            rounds: self.rounds,
            warm_hits: hits,
            warm_misses: misses,
        }
    }

    fn cache_counts(&self) -> (u64, u64) {
        self.caches
            .values()
            .fold((0, 0), |(h, m), c| (h + c.hits(), m + c.misses()))
    }
}

impl PipelineStage for UnifyStage {
    fn kind(&self) -> StageKind {
        StageKind::Unify
    }

    fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<StageOutput, Error> {
        // The same validation `cshard_runtime::simulate` performs, ahead
        // of driver construction (whose constructor asserts).
        if let Some(spec) = ctx.specs.iter().find(|s| s.miners == 0) {
            return Err(Error::NoMiners { shard: spec.shard });
        }
        let (hits_before, misses_before) = self.cache_counts();
        let drivers: Vec<ContractShardDriver> = ctx
            .specs
            .iter()
            .map(|spec| {
                if self.warm {
                    let cache = match self.caches.remove(&spec.shard) {
                        Some(carried) => carried,
                        None => SelectionWarmCache::new(),
                    };
                    ContractShardDriver::with_warm_cache(spec, &ctx.runtime, cache)
                } else {
                    ContractShardDriver::new(spec, &ctx.runtime)
                }
            })
            .collect();
        let outcome = Runtime::builder()
            .scheduler(ctx.runtime.scheduler)
            .run(drivers)?;
        let (run, finished, sched) = (outcome.report, outcome.drivers, outcome.sched);

        let mut epoch_rounds = 0;
        for (spec, driver) in ctx.specs.iter().zip(finished) {
            let stats = driver.selection_stats();
            self.epochs += stats.epochs;
            epoch_rounds += stats.rounds;
            if self.warm {
                if let Some(cache) = driver.into_warm_cache() {
                    self.caches.insert(spec.shard, cache);
                }
            }
        }
        self.rounds += epoch_rounds;
        let (hits_after, misses_after) = self.cache_counts();

        let out = StageOutput {
            items: ctx.specs.len() as u64,
            iterations: epoch_rounds,
            warm_hits: hits_after - hits_before,
            warm_misses: misses_after - misses_before,
            tasks_scheduled: sched.scheduled(),
            tasks_skipped: sched.skipped(),
            ..StageOutput::default()
        };
        ctx.run = Some(run);
        Ok(out)
    }
}
