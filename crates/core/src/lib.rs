//! The paper's primary contribution: contract-centric distributed sharding.
//!
//! * [`formation`] — Sec. III-A: transactions whose senders participate in
//!   a single smart contract form that contract's shard; everything else
//!   goes to the MaxShard. Classification runs on the locally-maintained
//!   call graph (Sec. III-C).
//! * [`assignment`] — Sec. III-B: miners are mapped to shards by verifiable
//!   leader randomness, proportionally to each shard's transaction
//!   fraction, and any claimed assignment is publicly checkable.
//! * [`runtime`] — the discrete-event block-production simulator standing
//!   in for the paper's nine-server testbed: per-shard PoW chains,
//!   fee-greedy or game-equilibrium transaction selection, window- or
//!   latency-modelled propagation, and empty-block accounting. The
//!   machinery itself lives in `cshard-runtime` (typed events, the
//!   `ProtocolDriver` trait, the shared harness); this module is the
//!   compatibility facade over it.
//! * [`metrics`] — waiting times, throughput improvement (`W_E / W_S`,
//!   Sec. VI-A), empty blocks and communication counts.
//! * [`system`] — [`system::ShardingSystem`]: the end-to-end pipeline
//!   (form shards → assign miners → merge small shards → select
//!   transactions → run) with every stage optional, so experiments can
//!   ablate each mechanism.
//! * [`node`] — a full miner node over the real substrates (ledger +
//!   actual PoW + block verification), used by examples and integration
//!   tests to demonstrate the protocol end-to-end rather than in the
//!   statistical model.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod epoch;
pub mod formation;
pub mod longrun;
pub mod metrics;
pub mod node;
pub mod runtime;
pub mod system;

pub use assignment::MinerAssignment;
pub use epoch::{EpochManager, EpochOutcome};
pub use formation::ShardPlan;
pub use longrun::{LongRun, LongRunConfig};
pub use metrics::{RunReport, ShardReport};
pub use runtime::{
    simulate, ContractShardDriver, EthereumDriver, Event, PropagationModel, ProtocolDriver,
    Runtime, RuntimeConfig, SelectionStrategy, ShardSpec,
};
pub use system::{ShardingSystem, SystemBuilder, SystemConfig, SystemReport};
