//! The paper's primary contribution: contract-centric distributed sharding.
//!
//! * [`formation`] — Sec. III-A: transactions whose senders participate in
//!   a single smart contract form that contract's shard; everything else
//!   goes to the MaxShard. Classification runs on the locally-maintained
//!   call graph (Sec. III-C).
//! * [`assignment`] — Sec. III-B: miners are mapped to shards by verifiable
//!   leader randomness, proportionally to each shard's transaction
//!   fraction, and any claimed assignment is publicly checkable.
//! * [`pipeline`] — the staged epoch: `Classify → Form → Merge → Select →
//!   Unify`, each stage a struct with persistent cross-epoch state
//!   (call-graph history, merge memoization, selection warm caches) and
//!   per-stage counters. This is the *only* epoch implementation in the
//!   workspace; everything below drives it.
//! * [`system`] — [`system::ShardingSystem`]: the workload-level facade
//!   over one cold pipeline epoch, with every stage optional so
//!   experiments can ablate each mechanism; [`builder`] holds its
//!   validated fluent configuration.
//! * [`longrun`] — epoch-driven evolution: leader election per epoch
//!   ([`epoch`]) over one persistent pipeline.
//! * [`node`] — a full miner node over the real substrates (ledger +
//!   actual PoW + block verification), used by examples and integration
//!   tests to demonstrate the protocol end-to-end rather than in the
//!   statistical model.
//!
//! The discrete-event simulator itself (typed events, the
//! `ProtocolDriver` trait, the shared harness, run reports) lives in
//! [`cshard_runtime`]; this crate re-exports the common pieces at its
//! root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod builder;
pub mod epoch;
pub mod formation;
pub mod longrun;
pub mod node;
pub mod pipeline;
pub mod system;

pub use assignment::MinerAssignment;
pub use cshard_runtime::report::{throughput_improvement, RunReport, ShardReport};
pub use cshard_runtime::{
    simulate, simulate_ethereum, ContractShardDriver, EthereumDriver, Event, PropagationModel,
    ProtocolDriver, Runtime, RuntimeConfig, SelectionStrategy, ShardSpec,
};
pub use epoch::{EpochManager, EpochOutcome};
pub use formation::ShardPlan;
pub use longrun::{LongRun, LongRunConfig};
pub use pipeline::{
    EpochInput, EpochPipeline, EpochRun, MergeSummary, PipelineConfig, PipelineMetrics, StageKind,
    StageObserver, StageOutput,
};
pub use system::{MinerAllocation, ShardingSystem, SystemBuilder, SystemConfig, SystemReport};
