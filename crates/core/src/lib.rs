//! The paper's primary contribution: contract-centric distributed sharding.
//!
//! * [`formation`] — Sec. III-A: transactions whose senders participate in
//!   a single smart contract form that contract's shard; everything else
//!   goes to the MaxShard. Classification runs on the locally-maintained
//!   call graph (Sec. III-C).
//! * [`assignment`] — Sec. III-B: miners are mapped to shards by verifiable
//!   leader randomness, proportionally to each shard's transaction
//!   fraction, and any claimed assignment is publicly checkable.
//! * [`pipeline`] — the staged epoch: `Classify → Form → Merge → Select →
//!   Unify → Place`, each stage a struct with persistent cross-epoch state
//!   (call-graph history, merge memoization and carried merge groups,
//!   selection warm caches, placement traffic counters) and per-stage
//!   counters. This is the *only* epoch implementation in the workspace;
//!   everything below drives it.
//! * [`system`] — [`system::ShardingSystem`]: the workload-level facade
//!   over one cold pipeline epoch, with every stage optional so
//!   experiments can ablate each mechanism; [`builder`] holds its
//!   validated fluent configuration.
//! * [`longrun`] — epoch-driven evolution: leader election per epoch
//!   ([`epoch`]) over one persistent pipeline.
//! * [`node`] — a full miner node over the real substrates (ledger +
//!   actual PoW + block verification), used by examples and integration
//!   tests to demonstrate the protocol end-to-end rather than in the
//!   statistical model.
//!
//! The discrete-event simulator itself (typed events, the
//! `ProtocolDriver` trait, the shared harness, run reports) lives in
//! [`cshard_runtime`]; this crate re-exports the common pieces at its
//! root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod builder;
pub mod epoch;
pub mod formation;
pub mod longrun;
pub mod node;
pub mod pipeline;
pub mod system;

pub use assignment::MinerAssignment;
pub use cshard_place::{HotAccount, Migration, PlacementConfig, PlacementEngine};
pub use cshard_runtime::report::{throughput_improvement, RunReport, ShardReport};
pub use cshard_runtime::{
    simulate, simulate_ethereum, ContractShardDriver, EthereumDriver, Event, MigratingShardDriver,
    MigrationStats, MigrationTicket, PropagationModel, ProtocolDriver, RunBuilder, RunObserver,
    RunOutcome, RunPhase, RunSchedStats, Runtime, RuntimeConfig, SchedulerConfig,
    SelectionStrategy, SettleConfig, SettleStats, SettlingShardDriver, ShardSpec, StreamDriver,
};
pub use epoch::{EpochManager, EpochOutcome};
pub use formation::ShardPlan;
pub use longrun::{LongRun, LongRunConfig};
pub use pipeline::{
    EpochInput, EpochPipeline, EpochRun, MergeSummary, PipelineConfig, PipelineMetrics,
    PlacementStage, StageKind, StageObserver, StageOutput,
};
pub use system::{MinerAllocation, ShardingSystem, SystemBuilder, SystemConfig, SystemReport};

/// The most commonly used items for driving the sharded system — import
/// `cshard_core::prelude::*` instead of reaching into crate internals.
///
/// Fault-injection types (`FaultPlan`, `run_with_faults`, …) live one
/// level *above* this crate (`cshard-faults` depends on `cshard-core`),
/// so they are re-exported by the facade crate's `contractshard::prelude`
/// rather than here.
pub mod prelude {
    pub use crate::builder::SystemBuilder;
    pub use crate::epoch::{EpochManager, EpochOutcome};
    pub use crate::formation::ShardPlan;
    pub use crate::longrun::{LongRun, LongRunConfig};
    pub use crate::pipeline::{
        EpochInput, EpochPipeline, EpochRun, PipelineConfig, PipelineMetrics, PlacementStage,
        StageKind, StageObserver, StageOutput,
    };
    pub use crate::system::{MinerAllocation, ShardingSystem, SystemConfig, SystemReport};
    pub use crate::{simulate, simulate_ethereum, throughput_improvement, MinerAssignment};
    pub use cshard_games::dynamics::GameDynamics;
    pub use cshard_games::{MergingConfig, SelectionConfig, UnifiedParameters};
    pub use cshard_place::{Migration, PlacementConfig, PlacementEngine};
    pub use cshard_primitives::{Error, ShardId, SimTime};
    pub use cshard_runtime::{
        ContractShardDriver, Ctx, EthereumDriver, Event, MigratingShardDriver, MigrationStats,
        MigrationTicket, PropagationModel, ProtocolDriver, RunBuilder, RunObserver, RunOutcome,
        RunPhase, RunReport, RunSchedStats, Runtime, RuntimeConfig, SchedulerConfig,
        SelectionStrategy, SettleConfig, SettleStats, SettlingShardDriver, ShardSpec, StreamDriver,
    };
    pub use cshard_workload::{StreamConfig, TxStream};
}
