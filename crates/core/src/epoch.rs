//! Multi-epoch operation: periodic re-randomization of miner assignment.
//!
//! Sharded systems must reconfigure shards and reshuffle validators
//! periodically, or an adaptive adversary slowly concentrates on one shard
//! (the Sybil-attack argument the paper cites in Sec. VII). This module
//! runs the Sec. III-B assignment across epochs: each epoch elects a
//! leader by VRF lottery, derives fresh randomness, recomputes transaction
//! fractions from the epoch's workload, and reassigns every miner. The
//! call graph persists across epochs — sender history accumulates, so a
//! user who diversifies eventually migrates to the MaxShard.

use crate::assignment::MinerAssignment;
use crate::formation::ShardPlan;
use cshard_crypto::{elect_leader, Vrf, VrfPublicKey};
use cshard_ledger::{CallGraph, Transaction};
use cshard_primitives::{MinerId, ShardId};
use std::collections::BTreeMap;

/// A registered miner: id plus VRF key pair.
#[derive(Clone, Debug)]
pub struct EnrolledMiner {
    /// The miner's id.
    pub id: MinerId,
    /// Its VRF key pair (the secret stays with the miner; the simulation
    /// holds both, playing all roles).
    pub vrf: Vrf,
}

/// The outcome of one epoch's reconfiguration.
#[derive(Clone, Debug)]
pub struct EpochOutcome {
    /// Epoch number.
    pub epoch: u64,
    /// The VRF-elected leader.
    pub leader: MinerId,
    /// The shard plan of the epoch's transaction batch.
    pub plan: ShardPlan,
    /// The public assignment rule (randomness + fractions).
    pub assignment: MinerAssignment,
    /// Every miner's shard this epoch.
    pub shard_of: BTreeMap<MinerId, ShardId>,
}

/// Drives epochs over a fixed miner enrolment.
#[derive(Debug)]
pub struct EpochManager {
    miners: Vec<EnrolledMiner>,
    history: CallGraph,
    epoch: u64,
}

impl EpochManager {
    /// Creates a manager over an enrolment. Miner keys are derived
    /// deterministically when built via [`EpochManager::with_miner_count`].
    pub fn new(miners: Vec<EnrolledMiner>) -> Self {
        assert!(!miners.is_empty(), "need at least one miner");
        EpochManager {
            miners,
            history: CallGraph::new(),
            epoch: 0,
        }
    }

    /// Convenience: `n` miners with seed-derived keys.
    pub fn with_miner_count(n: u32) -> Self {
        Self::new(
            (0..n)
                .map(|i| EnrolledMiner {
                    id: MinerId::new(i),
                    vrf: Vrf::from_seed((i as u64).to_be_bytes()),
                })
                .collect(),
        )
    }

    /// Number of epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The accumulated cross-epoch call graph.
    pub fn history(&self) -> &CallGraph {
        &self.history
    }

    /// Runs one epoch over a transaction batch: elect leader → derive
    /// randomness → form shards (using all accumulated history) → assign
    /// miners. The batch is then absorbed into the history.
    pub fn run_epoch(&mut self, batch: &[Transaction]) -> EpochOutcome {
        let epoch = self.epoch;
        self.epoch += 1;

        // Leader election: lowest VRF output on the epoch tag wins.
        let vrfs: Vec<Vrf> = self.miners.iter().map(|m| m.vrf.clone()).collect();
        // `vrfs` is never empty: the constructor asserts at least one miner,
        // so a `None` here is unreachable and 0 is a safe fallback (PH001).
        let winner = elect_leader(&vrfs, epoch).unwrap_or(0);
        let leader = self.miners[winner].id;
        let (randomness, _proof) = self.miners[winner].vrf.evaluate(epoch.to_be_bytes());

        // Formation against accumulated history.
        let plan = ShardPlan::build(batch, &self.history);
        let assignment = MinerAssignment::new(randomness, &plan.fractions_percent());
        let shard_of: BTreeMap<MinerId, ShardId> = self
            .miners
            .iter()
            .map(|m| (m.id, assignment.shard_of(m.vrf.public_key())))
            .collect();

        // Absorb the batch.
        self.history.observe_all(batch.iter());

        EpochOutcome {
            epoch,
            leader,
            plan,
            assignment,
            shard_of,
        }
    }

    /// Public key of a miner (for verification paths in tests/examples).
    pub fn public_key(&self, id: MinerId) -> Option<VrfPublicKey> {
        self.miners
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.vrf.public_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_workload::{FeeDistribution, Workload};

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 50 };

    fn batch(seed: u64) -> Vec<Transaction> {
        Workload::uniform_contracts(120, 5, FEES, seed).transactions
    }

    #[test]
    fn epochs_advance_and_elect_leaders() {
        let mut mgr = EpochManager::with_miner_count(20);
        let mut leaders = std::collections::HashSet::new();
        for e in 0..10 {
            let out = mgr.run_epoch(&batch(e));
            assert_eq!(out.epoch, e);
            leaders.insert(out.leader);
        }
        assert_eq!(mgr.epoch(), 10);
        // VRF lottery rotates leadership.
        assert!(leaders.len() >= 3, "leaders too concentrated: {leaders:?}");
    }

    #[test]
    fn reassignment_shuffles_between_epochs() {
        let mut mgr = EpochManager::with_miner_count(200);
        let a = mgr.run_epoch(&batch(1));
        let b = mgr.run_epoch(&batch(2));
        let moved = a
            .shard_of
            .iter()
            .filter(|(id, shard)| b.shard_of[id] != **shard)
            .count();
        assert!(moved > 50, "only {moved}/200 miners moved");
    }

    #[test]
    fn every_assignment_is_verifiable() {
        let mut mgr = EpochManager::with_miner_count(30);
        let out = mgr.run_epoch(&batch(3));
        for (id, shard) in &out.shard_of {
            let pk = mgr.public_key(*id).unwrap();
            assert!(out.assignment.verify_claim(pk, *shard));
        }
    }

    #[test]
    fn history_accumulates_and_reclassifies_senders() {
        use cshard_primitives::{Address, Amount, ContractId};
        let mut mgr = EpochManager::with_miner_count(10);
        // Epoch 0: user calls contract 0 — isolable.
        let tx0 = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount(10),
            Amount(1),
        );
        let out0 = mgr.run_epoch(std::slice::from_ref(&tx0));
        assert_eq!(out0.plan.maxshard.len(), 0);
        // Epoch 1: same user calls contract 1 — multi-contract now, so the
        // new call goes to the MaxShard.
        let tx1 = Transaction::call(
            Address::user(1),
            1,
            ContractId::new(1),
            Amount(10),
            Amount(1),
        );
        let out1 = mgr.run_epoch(std::slice::from_ref(&tx1));
        assert_eq!(out1.plan.maxshard.len(), 1, "history must persist");
    }

    #[test]
    fn deterministic_across_replays() {
        let run = || {
            let mut mgr = EpochManager::with_miner_count(25);
            let a = mgr.run_epoch(&batch(7));
            let b = mgr.run_epoch(&batch(8));
            (a.leader, a.shard_of, b.leader, b.shard_of)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_enrolment_rejected() {
        EpochManager::new(vec![]);
    }
}
