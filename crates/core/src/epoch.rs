//! Multi-epoch operation: periodic re-randomization of miner assignment.
//!
//! Sharded systems must reconfigure shards and reshuffle validators
//! periodically, or an adaptive adversary slowly concentrates on one shard
//! (the Sybil-attack argument the paper cites in Sec. VII). This module
//! runs the Sec. III-B assignment across epochs: each epoch elects a
//! leader by VRF lottery, derives fresh randomness, recomputes transaction
//! fractions from the epoch's workload, and reassigns every miner. The
//! call graph persists across epochs — sender history accumulates, so a
//! user who diversifies eventually migrates to the MaxShard.

use crate::assignment::MinerAssignment;
use crate::formation::ShardPlan;
use cshard_crypto::{elect_leader, rank_leaders, Vrf, VrfPublicKey};
use cshard_ledger::{CallGraph, Transaction};
use cshard_primitives::{Error, MinerId, ShardId};
use std::collections::{BTreeMap, BTreeSet};

/// A registered miner: id plus VRF key pair.
#[derive(Clone, Debug)]
pub struct EnrolledMiner {
    /// The miner's id.
    pub id: MinerId,
    /// Its VRF key pair (the secret stays with the miner; the simulation
    /// holds both, playing all roles).
    pub vrf: Vrf,
}

/// The outcome of one epoch's reconfiguration.
#[derive(Clone, Debug)]
pub struct EpochOutcome {
    /// Epoch number.
    pub epoch: u64,
    /// The VRF-elected leader (after any failover).
    pub leader: MinerId,
    /// How many ranked leaders were skipped before a live one took over:
    /// `0` means the primary lottery winner led; `k > 0` means the first
    /// `k` entries of the VRF failover ranking were down and rank `k`
    /// produced the epoch's parameters instead.
    pub failover_depth: usize,
    /// The shard plan of the epoch's transaction batch.
    pub plan: ShardPlan,
    /// The public assignment rule (randomness + fractions).
    pub assignment: MinerAssignment,
    /// Every miner's shard this epoch.
    pub shard_of: BTreeMap<MinerId, ShardId>,
}

/// Drives epochs over a fixed miner enrolment.
#[derive(Debug)]
pub struct EpochManager {
    miners: Vec<EnrolledMiner>,
    history: CallGraph,
    epoch: u64,
}

impl EpochManager {
    /// Creates a manager over an enrolment. Miner keys are derived
    /// deterministically when built via [`EpochManager::with_miner_count`].
    pub fn new(miners: Vec<EnrolledMiner>) -> Self {
        assert!(!miners.is_empty(), "need at least one miner");
        EpochManager {
            miners,
            history: CallGraph::new(),
            epoch: 0,
        }
    }

    /// Convenience: `n` miners with seed-derived keys.
    pub fn with_miner_count(n: u32) -> Self {
        Self::new(
            (0..n)
                .map(|i| EnrolledMiner {
                    id: MinerId::new(i),
                    vrf: Vrf::from_seed((i as u64).to_be_bytes()),
                })
                .collect(),
        )
    }

    /// Number of epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The accumulated cross-epoch call graph.
    pub fn history(&self) -> &CallGraph {
        &self.history
    }

    /// Runs one epoch over a transaction batch: elect leader → derive
    /// randomness → form shards (using all accumulated history) → assign
    /// miners. The batch is then absorbed into the history.
    pub fn run_epoch(&mut self, batch: &[Transaction]) -> EpochOutcome {
        let epoch = self.epoch;
        self.epoch += 1;

        // Leader election: lowest VRF output on the epoch tag wins.
        let vrfs: Vec<Vrf> = self.miners.iter().map(|m| m.vrf.clone()).collect();
        // `vrfs` is never empty: the constructor asserts at least one miner,
        // so a `None` here is unreachable and 0 is a safe fallback (PH001).
        let winner = elect_leader(&vrfs, epoch).unwrap_or(0);
        self.complete_epoch(epoch, winner, 0, batch)
    }

    /// Elects the next epoch's leader and consumes the epoch number,
    /// without forming shards or absorbing a batch. This is the election
    /// half of [`EpochManager::run_epoch`] — the long run uses it when the
    /// classification half is handled by the pipeline's persistent
    /// classify stage (which accumulates the same cross-epoch call graph).
    /// The leader sequence is bit-identical to `run_epoch`'s.
    pub fn elect(&mut self) -> (u64, MinerId) {
        let epoch = self.epoch;
        self.epoch += 1;
        let vrfs: Vec<Vrf> = self.miners.iter().map(|m| m.vrf.clone()).collect();
        // Same unreachable-`None` reasoning as in `run_epoch` (PH001).
        let winner = elect_leader(&vrfs, epoch).unwrap_or(0);
        (epoch, self.miners[winner].id)
    }

    /// Runs one epoch like [`EpochManager::run_epoch`], but with a set of
    /// miners known to be down (crashed, or caught equivocating by the
    /// fault detector). The VRF failover ranking is walked in order and
    /// the first live entry leads; the skipped count is recorded as the
    /// outcome's `failover_depth`. Every honest miner replays this same
    /// walk locally, so the fallback is agreed without extra rounds.
    ///
    /// Fails with [`Error::NoLiveLeader`] — without consuming the epoch
    /// number or absorbing the batch — when every candidate is down.
    pub fn run_epoch_with_downs(
        &mut self,
        batch: &[Transaction],
        down: &BTreeSet<MinerId>,
    ) -> Result<EpochOutcome, Error> {
        let epoch = self.epoch;
        let vrfs: Vec<Vrf> = self.miners.iter().map(|m| m.vrf.clone()).collect();
        let ranking = rank_leaders(&vrfs, epoch);
        let live = ranking
            .iter()
            .enumerate()
            .find(|(_, &i)| !down.contains(&self.miners[i].id));
        let Some((depth, &winner)) = live else {
            return Err(Error::NoLiveLeader { epoch });
        };
        self.epoch += 1;
        Ok(self.complete_epoch(epoch, winner, depth, batch))
    }

    /// The epoch's full VRF failover schedule: rank 0 is the lottery
    /// winner ([`elect_leader`] over the same enrolment), rank 1 takes
    /// over if rank 0 misses the broadcast timeout, and so on.
    pub fn leader_ranking(&self, epoch: u64) -> Vec<MinerId> {
        let vrfs: Vec<Vrf> = self.miners.iter().map(|m| m.vrf.clone()).collect();
        rank_leaders(&vrfs, epoch)
            .into_iter()
            .map(|i| self.miners[i].id)
            .collect()
    }

    /// Verifies a failover claim: given the miners known to be down this
    /// epoch, is `claimed` exactly the first live entry of the ranking?
    /// Any miner can replay this check from public data, which is what
    /// makes the takeover deterministic rather than negotiated.
    pub fn verify_failover(&self, epoch: u64, down: &BTreeSet<MinerId>, claimed: MinerId) -> bool {
        self.leader_ranking(epoch)
            .into_iter()
            .find(|id| !down.contains(id))
            == Some(claimed)
    }

    /// The enrolled miners, in registration order (the fault subsystem
    /// uses this to reconstruct leader broadcasts for equivocation
    /// checks).
    pub fn enrolled(&self) -> &[EnrolledMiner] {
        &self.miners
    }

    /// Shared epoch body: the elected (or failed-over) `winner` derives
    /// the randomness, shards are formed against accumulated history, and
    /// every miner is reassigned. The batch is then absorbed.
    fn complete_epoch(
        &mut self,
        epoch: u64,
        winner: usize,
        failover_depth: usize,
        batch: &[Transaction],
    ) -> EpochOutcome {
        let leader = self.miners[winner].id;
        let (randomness, _proof) = self.miners[winner].vrf.evaluate(epoch.to_be_bytes());

        // Formation against accumulated history.
        let plan = ShardPlan::build(batch, &self.history);
        let assignment = MinerAssignment::new(randomness, &plan.fractions_percent());
        let shard_of: BTreeMap<MinerId, ShardId> = self
            .miners
            .iter()
            .map(|m| (m.id, assignment.shard_of(m.vrf.public_key())))
            .collect();

        // Absorb the batch.
        self.history.observe_all(batch.iter());

        EpochOutcome {
            epoch,
            leader,
            failover_depth,
            plan,
            assignment,
            shard_of,
        }
    }

    /// Public key of a miner (for verification paths in tests/examples).
    pub fn public_key(&self, id: MinerId) -> Option<VrfPublicKey> {
        self.miners
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.vrf.public_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_workload::{FeeDistribution, Workload};

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 50 };

    fn batch(seed: u64) -> Vec<Transaction> {
        Workload::uniform_contracts(120, 5, FEES, seed).transactions
    }

    #[test]
    fn epochs_advance_and_elect_leaders() {
        let mut mgr = EpochManager::with_miner_count(20);
        let mut leaders = std::collections::HashSet::new();
        for e in 0..10 {
            let out = mgr.run_epoch(&batch(e));
            assert_eq!(out.epoch, e);
            leaders.insert(out.leader);
        }
        assert_eq!(mgr.epoch(), 10);
        // VRF lottery rotates leadership.
        assert!(leaders.len() >= 3, "leaders too concentrated: {leaders:?}");
    }

    #[test]
    fn reassignment_shuffles_between_epochs() {
        let mut mgr = EpochManager::with_miner_count(200);
        let a = mgr.run_epoch(&batch(1));
        let b = mgr.run_epoch(&batch(2));
        let moved = a
            .shard_of
            .iter()
            .filter(|(id, shard)| b.shard_of[id] != **shard)
            .count();
        assert!(moved > 50, "only {moved}/200 miners moved");
    }

    #[test]
    fn every_assignment_is_verifiable() {
        let mut mgr = EpochManager::with_miner_count(30);
        let out = mgr.run_epoch(&batch(3));
        for (id, shard) in &out.shard_of {
            let pk = mgr.public_key(*id).unwrap();
            assert!(out.assignment.verify_claim(pk, *shard));
        }
    }

    #[test]
    fn history_accumulates_and_reclassifies_senders() {
        use cshard_primitives::{Address, Amount, ContractId};
        let mut mgr = EpochManager::with_miner_count(10);
        // Epoch 0: user calls contract 0 — isolable.
        let tx0 = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount(10),
            Amount(1),
        );
        let out0 = mgr.run_epoch(std::slice::from_ref(&tx0));
        assert_eq!(out0.plan.maxshard.len(), 0);
        // Epoch 1: same user calls contract 1 — multi-contract now, so the
        // new call goes to the MaxShard.
        let tx1 = Transaction::call(
            Address::user(1),
            1,
            ContractId::new(1),
            Amount(10),
            Amount(1),
        );
        let out1 = mgr.run_epoch(std::slice::from_ref(&tx1));
        assert_eq!(out1.plan.maxshard.len(), 1, "history must persist");
    }

    #[test]
    fn deterministic_across_replays() {
        let run = || {
            let mut mgr = EpochManager::with_miner_count(25);
            let a = mgr.run_epoch(&batch(7));
            let b = mgr.run_epoch(&batch(8));
            (a.leader, a.shard_of, b.leader, b.shard_of)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_enrolment_rejected() {
        EpochManager::new(vec![]);
    }

    #[test]
    fn empty_down_set_matches_plain_run_epoch() {
        let mut plain = EpochManager::with_miner_count(15);
        let mut faulty = EpochManager::with_miner_count(15);
        for e in 0..4 {
            let a = plain.run_epoch(&batch(e));
            let b = faulty
                .run_epoch_with_downs(&batch(e), &BTreeSet::new())
                .expect("a live leader always exists with no downs");
            assert_eq!(a.leader, b.leader);
            assert_eq!(a.failover_depth, 0);
            assert_eq!(b.failover_depth, 0);
            assert_eq!(a.shard_of, b.shard_of);
        }
    }

    #[test]
    fn failover_skips_down_leaders_in_rank_order() {
        let mut mgr = EpochManager::with_miner_count(12);
        let ranking = mgr.leader_ranking(0);
        // Knock out the first two ranked leaders: rank 2 must take over.
        let down: BTreeSet<MinerId> = ranking.iter().take(2).copied().collect();
        let out = mgr.run_epoch_with_downs(&batch(0), &down).unwrap();
        assert_eq!(out.leader, ranking[2]);
        assert_eq!(out.failover_depth, 2);
        // The fallback changes the epoch randomness (different leader VRF),
        // so assignments differ from the no-fault run.
        let mut plain = EpochManager::with_miner_count(12);
        let base = plain.run_epoch(&batch(0));
        assert_ne!(base.leader, out.leader);
    }

    #[test]
    fn verify_failover_replays_the_ranking() {
        let mgr = EpochManager::with_miner_count(10);
        let ranking = mgr.leader_ranking(5);
        let down: BTreeSet<MinerId> = ranking.iter().take(1).copied().collect();
        assert!(mgr.verify_failover(5, &down, ranking[1]));
        assert!(!mgr.verify_failover(5, &down, ranking[0]), "down leader");
        assert!(
            !mgr.verify_failover(5, &down, ranking[2]),
            "skipped a live rank"
        );
    }

    #[test]
    fn all_down_is_a_typed_error_and_preserves_state() {
        let mut mgr = EpochManager::with_miner_count(3);
        let down: BTreeSet<MinerId> = (0..3).map(MinerId::new).collect();
        let err = mgr.run_epoch_with_downs(&batch(0), &down).unwrap_err();
        assert_eq!(err, cshard_primitives::Error::NoLiveLeader { epoch: 0 });
        // The failed attempt consumed nothing: the next epoch is still 0.
        assert_eq!(mgr.epoch(), 0);
        let out = mgr.run_epoch(&batch(0));
        assert_eq!(out.epoch, 0);
    }

    #[test]
    fn elect_matches_run_epoch_leader_sequence() {
        let mut electing = EpochManager::with_miner_count(20);
        let mut running = EpochManager::with_miner_count(20);
        for e in 0..8 {
            let (epoch, leader) = electing.elect();
            let out = running.run_epoch(&batch(e));
            assert_eq!(epoch, out.epoch);
            assert_eq!(leader, out.leader, "epoch {e}");
        }
    }

    #[test]
    fn ranking_head_is_the_lottery_winner() {
        let mut mgr = EpochManager::with_miner_count(16);
        for e in 0..6 {
            let head = mgr.leader_ranking(mgr.epoch())[0];
            let out = mgr.run_epoch(&batch(e));
            assert_eq!(out.leader, head);
        }
    }
}
