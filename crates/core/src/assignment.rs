//! Miner-to-shard assignment (Sec. III-B).
//!
//! The verifiable leader broadcasts (a) fresh randomness and (b) the
//! per-shard transaction fractions βᵢ reported by MaxShard miners. Each
//! miner then: sorts the shards, runs the RandHound-style beacon to obtain
//! a group number `r ∈ 1..=100`, and joins shard `s` when `r` falls in the
//! cumulative interval `(Σ_{i<s} βᵢ, Σ_{i≤s} βᵢ]`. Because the beacon is a
//! public function of `(randomness, pk)`, "users can verify whether a miner
//! is in shard s … given that miner's public key, the randomness, as well
//! as the fractions of transactions received from the verifiable leader".

use cshard_crypto::{RandomnessBeacon, VrfPublicKey};
use cshard_primitives::{Hash32, MinerId, ShardId};
use std::collections::BTreeMap;

/// The public assignment rule for one epoch.
#[derive(Clone, Debug)]
pub struct MinerAssignment {
    beacon: RandomnessBeacon,
    /// Shards in canonical (sorted) order with their cumulative percentage
    /// upper bounds: shard `k` owns groups `(bounds[k-1], bounds[k]]`.
    shards: Vec<ShardId>,
    cumulative: Vec<u32>,
}

impl MinerAssignment {
    /// Builds the rule from leader randomness and the broadcast fractions
    /// (percent, summing to 100 — `ShardPlan::fractions_percent` output).
    ///
    /// Shards with a zero fraction receive no miners (an empty interval).
    pub fn new(randomness: Hash32, fractions_percent: &[(ShardId, u32)]) -> Self {
        let total: u32 = fractions_percent.iter().map(|&(_, p)| p).sum();
        assert_eq!(total, 100, "fractions must sum to 100, got {total}");
        // Canonical order: sort by shard id ("she first sorts all the
        // shards"), deterministic at every replica.
        let sorted: BTreeMap<ShardId, u32> = fractions_percent.iter().copied().collect();
        assert_eq!(
            sorted.len(),
            fractions_percent.len(),
            "duplicate shard in fractions"
        );
        let mut shards = Vec::with_capacity(sorted.len());
        let mut cumulative = Vec::with_capacity(sorted.len());
        let mut acc = 0;
        for (shard, pct) in sorted {
            acc += pct;
            shards.push(shard);
            cumulative.push(acc);
        }
        MinerAssignment {
            beacon: RandomnessBeacon::new(randomness),
            shards,
            cumulative,
        }
    }

    /// The group number `r ∈ 1..=100` of a miner.
    pub fn group_of(&self, pk: VrfPublicKey) -> u64 {
        self.beacon.group_of(pk)
    }

    /// The shard a miner belongs to this epoch.
    pub fn shard_of(&self, pk: VrfPublicKey) -> ShardId {
        let r = self.group_of(pk) as u32;
        // First shard whose cumulative bound covers r.
        let idx = self.cumulative.partition_point(|&bound| bound < r);
        self.shards[idx.min(self.shards.len() - 1)]
    }

    /// Sec. III-C block check #1: "X verifies whether Y really corresponds
    /// to the ShardID in the block header."
    pub fn verify_claim(&self, pk: VrfPublicKey, claimed: ShardId) -> bool {
        self.shard_of(pk) == claimed
    }

    /// Assigns a whole roster, returning each miner's shard.
    pub fn assign_all(&self, roster: &[(MinerId, VrfPublicKey)]) -> Vec<(MinerId, ShardId)> {
        roster
            .iter()
            .map(|&(m, pk)| (m, self.shard_of(pk)))
            .collect()
    }

    /// Miner counts per shard for a roster — used to check the "fraction of
    /// miners keeps up with the fraction of transactions" property.
    pub fn shard_miner_counts(
        &self,
        roster: &[(MinerId, VrfPublicKey)],
    ) -> BTreeMap<ShardId, usize> {
        let mut counts = BTreeMap::new();
        for &(_, pk) in roster {
            *counts.entry(self.shard_of(pk)).or_insert(0) += 1;
        }
        counts
    }

    /// The shards of this epoch, canonical order.
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_crypto::{sha256, Vrf};

    fn roster(n: u64) -> Vec<(MinerId, VrfPublicKey)> {
        (0..n)
            .map(|i| {
                (
                    MinerId::new(i as u32),
                    Vrf::from_seed(i.to_be_bytes()).public_key(),
                )
            })
            .collect()
    }

    fn even_fractions(shards: u32) -> Vec<(ShardId, u32)> {
        let base = 100 / shards;
        let extra = 100 % shards;
        (0..shards)
            .map(|i| (ShardId::new(i), base + u32::from(i < extra)))
            .collect()
    }

    #[test]
    fn assignment_is_deterministic_and_verifiable() {
        let a = MinerAssignment::new(sha256(b"epoch"), &even_fractions(5));
        for (_, pk) in roster(50) {
            let s = a.shard_of(pk);
            assert!(a.verify_claim(pk, s));
            // Any other claim fails.
            for other in a.shards() {
                if *other != s {
                    assert!(!a.verify_claim(pk, *other));
                }
            }
        }
    }

    #[test]
    fn miners_distribute_proportionally_to_fractions() {
        // 80/20 split over two shards → miner counts near 80/20.
        let fr = vec![(ShardId::new(0), 80), (ShardId::new(1), 20)];
        let a = MinerAssignment::new(sha256(b"r"), &fr);
        let counts = a.shard_miner_counts(&roster(2000));
        let big = counts[&ShardId::new(0)] as f64;
        let small = counts[&ShardId::new(1)] as f64;
        assert!((big / 2000.0 - 0.8).abs() < 0.05, "big {big}");
        assert!((small / 2000.0 - 0.2).abs() < 0.05, "small {small}");
    }

    #[test]
    fn zero_fraction_shard_gets_no_miners() {
        let fr = vec![(ShardId::new(0), 0), (ShardId::new(1), 100)];
        let a = MinerAssignment::new(sha256(b"r"), &fr);
        let counts = a.shard_miner_counts(&roster(500));
        assert_eq!(counts.get(&ShardId::new(0)), None);
        assert_eq!(counts[&ShardId::new(1)], 500);
    }

    #[test]
    fn maxshard_participates_in_assignment() {
        let fr = vec![(ShardId::new(0), 40), (ShardId::MAX_SHARD, 60)];
        let a = MinerAssignment::new(sha256(b"r"), &fr);
        let counts = a.shard_miner_counts(&roster(1000));
        assert!(counts[&ShardId::MAX_SHARD] > counts[&ShardId::new(0)]);
    }

    #[test]
    fn new_randomness_reshuffles() {
        let fr = even_fractions(4);
        let a = MinerAssignment::new(sha256(b"epoch-1"), &fr);
        let b = MinerAssignment::new(sha256(b"epoch-2"), &fr);
        let moved = roster(300)
            .into_iter()
            .filter(|&(_, pk)| a.shard_of(pk) != b.shard_of(pk))
            .count();
        assert!(moved > 150, "only {moved}/300 moved");
    }

    #[test]
    fn every_group_maps_to_some_shard() {
        // Interval tiling: groups 1..=100 all land somewhere, boundaries
        // included.
        let fr = vec![
            (ShardId::new(0), 33),
            (ShardId::new(1), 33),
            (ShardId::new(2), 34),
        ];
        let a = MinerAssignment::new(sha256(b"r"), &fr);
        let counts = a.shard_miner_counts(&roster(5000));
        let total: usize = counts.values().sum();
        assert_eq!(total, 5000);
        assert_eq!(counts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "must sum to 100")]
    fn bad_fractions_rejected() {
        MinerAssignment::new(sha256(b"r"), &[(ShardId::new(0), 50)]);
    }

    #[test]
    #[should_panic(expected = "duplicate shard")]
    fn duplicate_shard_rejected() {
        MinerAssignment::new(
            sha256(b"r"),
            &[(ShardId::new(0), 50), (ShardId::new(0), 50)],
        );
    }
}
