//! A full miner node over the real substrates (Sec. III-C's workflow).
//!
//! Where `cshard_runtime` is the statistical model used by the large
//! evaluation runs, `Node` is the real thing in miniature: it keeps an
//! actual [`Chain`] (with state validation), a [`Mempool`], a local
//! [`CallGraph`], mines blocks with genuine SHA-256 PoW, and performs both
//! receiver-side checks of Sec. III-C:
//!
//! 1. the packer really belongs to the ShardID in the header (via the
//!    miner-assignment randomness), and
//! 2. the block's shard is the receiver's own — otherwise it is simply not
//!    recorded.
//!
//! Examples and integration tests drive networks of these nodes.

use crate::assignment::MinerAssignment;
use cshard_consensus::pow;
use cshard_crypto::{Vrf, VrfPublicKey};
use cshard_ledger::{Block, CallGraph, Chain, LedgerError, Mempool, State, Transaction};
use cshard_primitives::{MinerId, ShardId, SimTime};
use std::collections::BTreeMap;

/// Why a node rejected an incoming block or transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeError {
    /// The packer's public key is not in the epoch roster.
    UnknownPacker(MinerId),
    /// The packer does not belong to the shard claimed in the header —
    /// "if Y cheats on her shard, X will find that and reject the block".
    ShardClaimMismatch {
        /// The lying miner.
        packer: MinerId,
        /// The shard the header claimed.
        claimed: ShardId,
    },
    /// The block belongs to a different shard than this node's; not an
    /// attack, just not ours to record.
    NotOurShard(ShardId),
    /// The transaction does not belong to this node's shard.
    TxNotOurShard,
    /// The PoW search exhausted its iteration budget without finding a
    /// nonce — the difficulty is set beyond what the node can mine.
    PowExhausted {
        /// The difficulty the block asked for.
        difficulty_bits: u32,
    },
    /// The underlying ledger rejected the block.
    Ledger(LedgerError),
}

impl From<LedgerError> for NodeError {
    fn from(e: LedgerError) -> Self {
        NodeError::Ledger(e)
    }
}

/// A miner node of one shard.
pub struct Node {
    id: MinerId,
    vrf: Vrf,
    shard: ShardId,
    chain: Chain,
    mempool: Mempool,
    callgraph: CallGraph,
    assignment: MinerAssignment,
    /// Epoch roster: who owns which key (public information).
    roster: BTreeMap<MinerId, VrfPublicKey>,
    difficulty_bits: u32,
    block_capacity: usize,
}

impl Node {
    /// Creates a node for `shard`.
    ///
    /// # Panics
    /// Panics if the assignment rule does not actually place this node's
    /// key in `shard` — an honest node never claims a foreign shard.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: MinerId,
        vrf: Vrf,
        shard: ShardId,
        genesis: State,
        assignment: MinerAssignment,
        roster: BTreeMap<MinerId, VrfPublicKey>,
        difficulty_bits: u32,
        block_capacity: usize,
    ) -> Self {
        assert!(
            assignment.verify_claim(vrf.public_key(), shard),
            "node constructed for a shard it is not assigned to"
        );
        assert!(block_capacity > 0);
        Node {
            id,
            vrf,
            shard,
            chain: Chain::new(shard, difficulty_bits, genesis),
            mempool: Mempool::new(),
            callgraph: CallGraph::new(),
            assignment,
            roster,
            difficulty_bits,
            block_capacity,
        }
    }

    /// This node's miner id.
    pub fn id(&self) -> MinerId {
        self.id
    }

    /// This node's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// This node's public key.
    pub fn public_key(&self) -> VrfPublicKey {
        self.vrf.public_key()
    }

    /// The node's chain (read access for assertions and inspection).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Pending transactions.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Handles a broadcast transaction: the node first "figures out whether
    /// the sender of that transaction is only involved in the current
    /// shard" (via its local call graph) and only pools transactions of its
    /// own shard. MaxShard nodes take everything that is not isolable.
    pub fn submit_transaction(&mut self, tx: Transaction) -> Result<(), NodeError> {
        self.callgraph.observe(&tx);
        let home = match self.callgraph.isolable_contract(&tx) {
            Some(c) => crate::formation::ShardPlan::shard_for_contract(c),
            None => ShardId::MAX_SHARD,
        };
        if home != self.shard {
            return Err(NodeError::TxNotOurShard);
        }
        self.mempool.insert(tx);
        Ok(())
    }

    /// Mines one block: greedy fee selection from the mempool, sequential
    /// validation against the tip state, real PoW search. Returns the block
    /// (possibly empty — block rewards make empty blocks worthwhile,
    /// Sec. III-D), or [`NodeError::PowExhausted`] when the difficulty is
    /// set beyond the search's iteration budget.
    pub fn mine_block(&mut self, timestamp: SimTime) -> Result<Block, NodeError> {
        // Greedy selection, dropping anything that no longer validates in
        // sequence (e.g. a second spend racing the first).
        let mut state = self.chain.state().clone();
        let coinbase = cshard_primitives::Address::miner(self.id.0 as u64);
        let mut chosen = Vec::with_capacity(self.block_capacity);
        for tx in self.mempool.sorted_by_fee() {
            if chosen.len() >= self.block_capacity {
                break;
            }
            if state.apply_transaction(tx, coinbase).is_ok() {
                chosen.push(tx.clone());
            }
        }
        let mut block = Block::assemble(
            self.chain.tip(),
            self.chain.height() + 1,
            self.shard,
            self.id,
            timestamp,
            self.difficulty_bits,
            chosen,
        );
        if pow::mine(&mut block).is_none() {
            return Err(NodeError::PowExhausted {
                difficulty_bits: self.difficulty_bits,
            });
        }
        Ok(block)
    }

    /// Receives a block from the network, performing the two Sec. III-C
    /// verifications before recording it.
    pub fn receive_block(&mut self, block: Block) -> Result<(), NodeError> {
        let packer = block.header.miner;
        let pk = *self
            .roster
            .get(&packer)
            .ok_or(NodeError::UnknownPacker(packer))?;
        // Check 1: does the packer really belong to the claimed shard?
        if !self.assignment.verify_claim(pk, block.header.shard) {
            return Err(NodeError::ShardClaimMismatch {
                packer,
                claimed: block.header.shard,
            });
        }
        // Check 2: is it our shard's block at all?
        if block.header.shard != self.shard {
            return Err(NodeError::NotOurShard(block.header.shard));
        }
        let ids: Vec<_> = block.transactions.iter().map(|t| t.id()).collect();
        self.chain.accept_block(block)?;
        self.mempool.remove_all(ids.iter());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_crypto::sha256;
    use cshard_ledger::SmartContract;
    use cshard_primitives::{Address, Amount, ContractId};

    const BITS: u32 = 8; // fast test PoW

    struct Net {
        nodes: Vec<Node>,
    }

    /// Builds one node per shard over `shards` contract shards, with an
    /// assignment rule that actually maps each node's key to its shard.
    fn build_net(shards: u32) -> Net {
        let mut genesis = State::new();
        for u in 0..64 {
            genesis.fund_user(Address::user(u), Amount::from_coins(100));
        }
        for c in 0..shards {
            genesis.register_contract(SmartContract::unconditional(
                ContractId::new(c),
                Address::user(1000 + c as u64),
            ));
        }
        for c in 0..shards {
            genesis.fund_user(Address::user(1000 + c as u64), Amount::ZERO);
        }

        // Even fractions over the contract shards plus MaxShard.
        let groups = shards + 1;
        let base = 100 / groups;
        let extra = 100 % groups;
        let mut fractions: Vec<(ShardId, u32)> = (0..shards)
            .map(|i| (ShardId::new(i), base + u32::from(i < extra)))
            .collect();
        fractions.push((ShardId::MAX_SHARD, base + u32::from(shards < extra)));
        let assignment = MinerAssignment::new(sha256(b"node-test-epoch"), &fractions);

        // Find, for every shard, a key the rule assigns there.
        let mut roster: BTreeMap<MinerId, VrfPublicKey> = BTreeMap::new();
        let mut vrfs: Vec<(ShardId, Vrf)> = Vec::new();
        let mut want: Vec<ShardId> = (0..shards).map(ShardId::new).collect();
        want.push(ShardId::MAX_SHARD);
        let mut seed = 0u64;
        for (i, target) in want.iter().enumerate() {
            loop {
                let vrf = Vrf::from_seed(seed.to_be_bytes());
                seed += 1;
                if assignment.shard_of(vrf.public_key()) == *target {
                    roster.insert(MinerId::new(i as u32), vrf.public_key());
                    vrfs.push((*target, vrf));
                    break;
                }
            }
        }
        let nodes = vrfs
            .into_iter()
            .enumerate()
            .map(|(i, (shard, vrf))| {
                Node::new(
                    MinerId::new(i as u32),
                    vrf,
                    shard,
                    genesis.clone(),
                    assignment.clone(),
                    roster.clone(),
                    BITS,
                    10,
                )
            })
            .collect();
        Net { nodes }
    }

    fn call_tx(user: u64, contract: u32, fee: u64) -> Transaction {
        Transaction::call(
            Address::user(user),
            0,
            ContractId::new(contract),
            Amount::from_coins(1),
            Amount::from_raw(fee),
        )
    }

    #[test]
    fn transactions_route_to_their_shard_only() {
        let mut net = build_net(2);
        let tx = call_tx(1, 0, 5);
        // Shard 0's node pools it; shard 1 and MaxShard nodes refuse.
        assert_eq!(net.nodes[0].submit_transaction(tx.clone()), Ok(()));
        assert_eq!(
            net.nodes[1].submit_transaction(tx.clone()),
            Err(NodeError::TxNotOurShard)
        );
        assert_eq!(
            net.nodes[2].submit_transaction(tx),
            Err(NodeError::TxNotOurShard)
        );
        // A direct transfer goes to the MaxShard node only.
        let direct = Transaction::direct(
            Address::user(2),
            0,
            Address::user(3),
            Amount::from_coins(1),
            Amount::from_raw(1),
        );
        assert_eq!(
            net.nodes[0].submit_transaction(direct.clone()),
            Err(NodeError::TxNotOurShard)
        );
        assert_eq!(net.nodes[2].submit_transaction(direct), Ok(()));
    }

    #[test]
    fn mine_and_accept_with_real_pow() {
        let mut net = build_net(1);
        net.nodes[0].submit_transaction(call_tx(1, 0, 5)).unwrap();
        net.nodes[0].submit_transaction(call_tx(2, 0, 9)).unwrap();
        let block = net.nodes[0]
            .mine_block(SimTime::from_secs(60))
            .expect("test-scale difficulty");
        assert_eq!(block.transactions.len(), 2);
        assert!(block.header.has_valid_pow());
        // Highest fee first (greedy order).
        assert_eq!(block.transactions[0].fee, Amount::from_raw(9));

        // The same-shard node is the miner itself here; accept updates the
        // chain and drains the mempool.
        net.nodes[0].receive_block(block).unwrap();
        assert_eq!(net.nodes[0].chain().height(), 1);
        assert_eq!(net.nodes[0].mempool_len(), 0);
    }

    #[test]
    fn foreign_shard_blocks_are_not_recorded() {
        let mut net = build_net(2);
        net.nodes[0].submit_transaction(call_tx(1, 0, 5)).unwrap();
        let block = net.nodes[0]
            .mine_block(SimTime::from_secs(60))
            .expect("test-scale difficulty");
        let err = net.nodes[1].receive_block(block).unwrap_err();
        assert_eq!(err, NodeError::NotOurShard(net.nodes[0].shard()));
        assert_eq!(net.nodes[1].chain().height(), 0);
    }

    #[test]
    fn shard_id_cheating_is_detected() {
        // Node 0 (shard 0) forges a block claiming node 1's shard. Every
        // receiver can tell from the assignment rule that the packer does
        // not belong there.
        let mut net = build_net(2);
        net.nodes[0].submit_transaction(call_tx(1, 0, 5)).unwrap();
        let mut block = net.nodes[0]
            .mine_block(SimTime::from_secs(60))
            .expect("test-scale difficulty");
        let victim_shard = net.nodes[1].shard();
        block.header.shard = victim_shard;
        pow::mine(&mut block); // re-grind after tampering
        let err = net.nodes[1].receive_block(block).unwrap_err();
        assert_eq!(
            err,
            NodeError::ShardClaimMismatch {
                packer: MinerId::new(0),
                claimed: victim_shard
            }
        );
    }

    #[test]
    fn unknown_packer_rejected() {
        let mut net = build_net(1);
        let mut block = net.nodes[0]
            .mine_block(SimTime::from_secs(60))
            .expect("test-scale difficulty");
        block.header.miner = MinerId::new(99);
        pow::mine(&mut block);
        assert_eq!(
            net.nodes[0].receive_block(block).unwrap_err(),
            NodeError::UnknownPacker(MinerId::new(99))
        );
    }

    #[test]
    fn empty_block_is_minable_and_acceptable() {
        let mut net = build_net(1);
        let block = net.nodes[0]
            .mine_block(SimTime::from_secs(60))
            .expect("test-scale difficulty");
        assert!(block.is_empty());
        net.nodes[0].receive_block(block).unwrap();
        assert_eq!(net.nodes[0].chain().height(), 1);
        assert_eq!(net.nodes[0].chain().empty_block_count(), 1);
    }

    #[test]
    fn invalid_ledger_blocks_surface_ledger_errors() {
        let mut net = build_net(1);
        let mut block = net.nodes[0]
            .mine_block(SimTime::from_secs(60))
            .expect("test-scale difficulty");
        block.header.height = 5; // breaks linkage
        pow::mine(&mut block);
        assert!(matches!(
            net.nodes[0].receive_block(block).unwrap_err(),
            NodeError::Ledger(LedgerError::BadHeight { .. })
        ));
    }

    #[test]
    fn conflicting_spends_leave_only_one_in_a_block() {
        let mut net = build_net(1);
        // Two spends from the same user with the same nonce: greedy mining
        // validates sequentially and keeps only the first that applies.
        let a = call_tx(1, 0, 9);
        let mut b = call_tx(1, 0, 5);
        b.kind = cshard_ledger::TxKind::ContractCall {
            contract: ContractId::new(0),
            value: Amount::from_coins(2),
        };
        net.nodes[0].submit_transaction(a).unwrap();
        net.nodes[0].submit_transaction(b).unwrap();
        let block = net.nodes[0]
            .mine_block(SimTime::from_secs(60))
            .expect("test-scale difficulty");
        assert_eq!(block.transactions.len(), 1, "double spend filtered");
        assert_eq!(block.transactions[0].fee, Amount::from_raw(9));
    }
}
