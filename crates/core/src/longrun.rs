//! Long-run operation: the sharding system across many epochs.
//!
//! One [`crate::system::ShardingSystem`] run answers "how fast does one
//! injection confirm?". A deployment lives longer: every epoch brings a new
//! transaction batch, a new VRF leader, fresh assignment randomness, and a
//! sender history that keeps accumulating (so the MaxShard's share grows as
//! users diversify). [`LongRun`] drives that loop — leader election from
//! the [`EpochManager`], epochs through one persistent
//! [`EpochPipeline`] (whose classify stage owns the accumulating call
//! graph) — and aggregates the metrics operators watch across epochs:
//! sustained throughput improvement, waste, communication, and MaxShard
//! drift.

use crate::epoch::EpochManager;
use crate::pipeline::{EpochInput, EpochPipeline, PipelineConfig, PipelineMetrics};
use crate::system::MinerAllocation;
use cshard_games::MergingConfig;
use cshard_ledger::Transaction;
use cshard_place::PlacementConfig;
use cshard_primitives::{Error, Hash32, MinerId, SimTime};
use cshard_runtime::report::throughput_improvement;
use cshard_runtime::{simulate_ethereum, Runtime, RuntimeConfig, StreamDriver};

/// The randomness an epoch's unified game parameters derive from (the
/// leader's VRF output is already baked into the assignment; a stable
/// sub-digest keyed by the epoch number seeds the game layer).
pub fn game_randomness(epoch: u64) -> Hash32 {
    cshard_crypto::sha256_concat(&[b"epoch-game-randomness".as_slice(), &epoch.to_be_bytes()])
}

/// Per-epoch aggregate results.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch number.
    pub epoch: u64,
    /// The elected leader.
    pub leader: MinerId,
    /// Active shards this epoch (post-merge).
    pub shards: usize,
    /// Fraction of the batch routed to the MaxShard (history drift).
    pub maxshard_fraction: f64,
    /// Throughput improvement vs. the one-chain baseline on this batch.
    pub improvement: f64,
    /// Empty blocks across the epoch's run.
    pub empty_blocks: usize,
    /// Cross-shard communication rounds this epoch (merging only; always
    /// zero for validation).
    pub comm_rounds: u64,
}

/// Configuration of a long run.
#[derive(Clone, Debug)]
pub struct LongRunConfig {
    /// Block-production parameters (the seed is varied per epoch).
    pub runtime: RuntimeConfig,
    /// Merging-game settings; `None` disables merging.
    pub merging: Option<MergingConfig>,
    /// Number of enrolled miners (assignment is proportional per epoch,
    /// but the simulated run still uses one miner per shard, as in the
    /// paper's testbed).
    pub miners: u32,
    /// Consult cross-epoch warm-start state in the pipeline (bit-identical
    /// results, fewer game iterations on repeated inputs). Off by default.
    pub warm_start: bool,
    /// The cross-epoch placement engine (merge-group carry-over +
    /// hot-account migration). Disabled by default.
    pub placement: PlacementConfig,
}

impl Default for LongRunConfig {
    fn default() -> Self {
        LongRunConfig {
            runtime: RuntimeConfig::default(),
            merging: Some(MergingConfig::default()),
            miners: 32,
            warm_start: false,
            placement: PlacementConfig::disabled(),
        }
    }
}

/// A multi-epoch simulation.
#[derive(Debug)]
pub struct LongRun {
    config: LongRunConfig,
    epochs: EpochManager,
    pipeline: EpochPipeline,
    reports: Vec<EpochReport>,
}

impl LongRun {
    /// Creates a long run with a fresh miner enrolment.
    pub fn new(config: LongRunConfig) -> Self {
        let epochs = EpochManager::with_miner_count(config.miners);
        let pipeline = EpochPipeline::new(PipelineConfig {
            merging: config.merging,
            selection: None,
            allocation: MinerAllocation::OnePerShard,
            warm_start: config.warm_start,
            placement: config.placement,
        });
        LongRun {
            config,
            epochs,
            pipeline,
            reports: Vec::new(),
        }
    }

    /// Completed epoch reports.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// Cumulative per-stage pipeline counters across every epoch run.
    pub fn pipeline_metrics(&self) -> &PipelineMetrics {
        self.pipeline.metrics()
    }

    /// Drives one epoch over `batch` (the epoch's injected transactions
    /// with their fees) and records its report.
    ///
    /// Errors on an empty batch, on merge-game misuse, or when the epoch's
    /// simulation run is rejected — the long run never panics on input.
    pub fn run_epoch(&mut self, batch: &[Transaction]) -> Result<EpochReport, Error> {
        if batch.is_empty() {
            return Err(Error::Config {
                field: "batch",
                reason: "an epoch needs transactions".into(),
            });
        }
        let fees: Vec<u64> = batch.iter().map(|t| t.fee.raw()).collect();
        let (epoch, leader) = self.epochs.elect();

        // Epoch-salted seed; the pipeline's persistent classify stage
        // carries the accumulated sender history.
        let runtime = RuntimeConfig {
            seed: self.config.runtime.seed ^ epoch.wrapping_mul(0x9E37_79B9),
            ..self.config.runtime.clone()
        };
        let out = self.pipeline.run_epoch(EpochInput {
            transactions: batch,
            fees: &fees,
            randomness: game_randomness(epoch),
            runtime: runtime.clone(),
        })?;
        let ethereum = simulate_ethereum(fees, 1, &runtime)?;

        let report = EpochReport {
            epoch,
            leader,
            shards: out.shard_sizes.len(),
            maxshard_fraction: out.plan.maxshard.len() as f64 / batch.len() as f64,
            improvement: throughput_improvement(&ethereum, &out.run),
            empty_blocks: out.run.total_empty_blocks(),
            comm_rounds: out.comm.total(),
        };
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Drives epochs from a lazy arrival stream instead of pre-cut
    /// batches: arrivals are injected through a
    /// [`cshard_runtime::StreamDriver`] (one [`cshard_runtime::Event::TxInjected`]
    /// in flight at a time), sealed into per-epoch batches every
    /// `epoch_interval` of simulated time, and each non-empty batch is
    /// replayed through [`LongRun::run_epoch`]. Intervals with no
    /// arrivals produce no epoch — a long-lived deployment idles through
    /// quiet periods instead of erroring on empty batches.
    ///
    /// Returns the reports of the epochs this call ran, in order (they
    /// are also appended to [`LongRun::reports`]). The injection run
    /// uses the configured scheduler; results are bit-identical at any
    /// thread count.
    pub fn run_stream(
        &mut self,
        stream: impl Iterator<Item = (SimTime, Transaction)> + Send + 'static,
        epoch_interval: SimTime,
    ) -> Result<Vec<EpochReport>, Error> {
        let driver = StreamDriver::new(stream, epoch_interval);
        let outcome = Runtime::builder()
            .scheduler(self.config.runtime.scheduler)
            .run(vec![driver])?;
        let mut drivers = outcome.drivers;
        let Some(driver) = drivers.pop() else {
            return Err(Error::Config {
                field: "stream",
                reason: "injection run returned no driver".into(),
            });
        };
        let mut reports = Vec::new();
        for (_sim_epoch, batch) in driver.into_batches() {
            reports.push(self.run_epoch(&batch)?);
        }
        Ok(reports)
    }

    /// Mean throughput improvement over all completed epochs.
    pub fn mean_improvement(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(|r| r.improvement).sum::<f64>() / self.reports.len() as f64
    }
}

impl crate::epoch::EpochOutcome {
    /// The randomness the epoch's unified parameters derive from — see
    /// [`game_randomness`].
    pub fn assignment_randomness(&self) -> Hash32 {
        game_randomness(self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_workload::{FeeDistribution, Workload};

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

    fn batch(epoch: u64, contracts: usize) -> Vec<Transaction> {
        Workload::uniform_contracts(160, contracts, FEES, 1000 + epoch).transactions
    }

    #[test]
    fn epochs_accumulate_reports() {
        let mut lr = LongRun::new(LongRunConfig::default());
        for e in 0..4 {
            let report = lr.run_epoch(&batch(e, 5)).expect("valid batch");
            assert_eq!(report.epoch, e);
            assert!(report.improvement > 1.0, "epoch {e}: {report:?}");
            assert!(report.shards >= 2);
        }
        assert_eq!(lr.reports().len(), 4);
        assert!(lr.mean_improvement() > 1.5);
        assert_eq!(lr.pipeline_metrics().epochs, 4);
    }

    #[test]
    fn merging_keeps_comm_at_two_per_small_shard() {
        let mut lr = LongRun::new(LongRunConfig {
            merging: Some(MergingConfig {
                lower_bound: 12,
                ..MergingConfig::default()
            }),
            ..LongRunConfig::default()
        });
        // A batch with deliberate small shards.
        let w = Workload::with_small_shards(160, 8, 3, &[4, 5, 6], FEES, 7);
        let report = lr.run_epoch(&w.transactions).expect("valid batch");
        assert_eq!(report.comm_rounds, 6, "2 per small shard");
    }

    #[test]
    fn history_drift_grows_the_maxshard() {
        // Re-sending from the same users across epochs with different
        // contracts pushes them into the MaxShard over time.
        let mut lr = LongRun::new(LongRunConfig {
            merging: None,
            ..LongRunConfig::default()
        });
        // Epoch 0: users 0..160 call contract set A.
        let w0 = Workload::uniform_contracts(160, 4, FEES, 42);
        let r0 = lr
            .run_epoch(&w0.transactions)
            .expect("valid batch")
            .maxshard_fraction;
        // Epoch 1: THE SAME senders now call a different contract each —
        // multi-contract history forces them into the MaxShard.
        let mut w1 = Vec::new();
        for (i, tx) in w0.transactions.iter().enumerate() {
            if let cshard_ledger::TxKind::ContractCall { contract, value } = &tx.kind {
                let other = cshard_primitives::ContractId::new((contract.0 + 1) % 4);
                let _ = (i, value);
                w1.push(Transaction::call(
                    tx.sender,
                    tx.nonce + 1,
                    other,
                    *value,
                    tx.fee,
                ));
            }
        }
        let r1 = lr.run_epoch(&w1).expect("valid batch").maxshard_fraction;
        assert!(r1 > r0 + 0.5, "drift not visible: {r0:.2} -> {r1:.2}");
    }

    #[test]
    fn deterministic_across_replays() {
        let run = || {
            let mut lr = LongRun::new(LongRunConfig::default());
            lr.run_epoch(&batch(0, 5)).expect("valid batch");
            lr.run_epoch(&batch(1, 6)).expect("valid batch");
            (lr.reports()[0].improvement, lr.reports()[1].improvement)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warm_start_never_changes_epoch_reports() {
        // A long run salts every epoch's randomness and seed, so the warm
        // caches never hit here — this pins the other half of the
        // contract: consulting them is bit-invisible regardless. (The
        // fewer-iterations half is pinned at pipeline level, where epochs
        // can repeat identical inputs.)
        let run = |warm: bool| {
            let mut lr = LongRun::new(LongRunConfig {
                warm_start: warm,
                ..LongRunConfig::default()
            });
            let b = batch(0, 5);
            let mut improvements = Vec::new();
            for _ in 0..3 {
                improvements.push(lr.run_epoch(&b).expect("valid batch").improvement);
            }
            improvements
        };
        assert_eq!(run(false), run(true), "warm start must be bit-invisible");
    }

    #[test]
    fn stream_fed_epochs_match_batch_fed() {
        // 120 txs at 40 ms spacing, sealed every 1 600 ms → 3 batches of
        // 40, identical to hand-cut chunks.
        let txs = Workload::uniform_contracts(120, 4, FEES, 9).transactions;
        let stream = txs
            .clone()
            .into_iter()
            .enumerate()
            .map(|(i, tx)| (SimTime::from_millis(i as u64 * 40), tx));
        let mut streamed = LongRun::new(LongRunConfig::default());
        let reports = streamed
            .run_stream(stream, SimTime::from_millis(1_600))
            .expect("valid stream");
        assert_eq!(reports.len(), 3);
        let mut batched = LongRun::new(LongRunConfig::default());
        for chunk in txs.chunks(40) {
            batched.run_epoch(chunk).expect("valid batch");
        }
        let a: Vec<f64> = reports.iter().map(|r| r.improvement).collect();
        let b: Vec<f64> = batched.reports().iter().map(|r| r.improvement).collect();
        assert_eq!(a, b, "stream-fed epochs must replay batch-fed exactly");
    }

    #[test]
    fn quiet_intervals_produce_no_epoch() {
        let txs = Workload::uniform_contracts(20, 2, FEES, 11).transactions;
        // Two tight clusters separated by a long silence.
        let stream = txs.into_iter().enumerate().map(|(i, tx)| {
            let at = if i < 10 {
                SimTime::from_millis(i as u64)
            } else {
                SimTime::from_millis(10_000 + i as u64)
            };
            (at, tx)
        });
        let mut lr = LongRun::new(LongRunConfig::default());
        let reports = lr
            .run_stream(stream, SimTime::from_millis(1_000))
            .expect("valid stream");
        assert_eq!(reports.len(), 2, "silent intervals are skipped, not run");
        assert_eq!(lr.reports().len(), 2);
    }

    #[test]
    fn streamed_epochs_reclassify_only_churn() {
        // A small account pool repeating into its home contracts: after
        // the first sightings, most senders are carried, not recomputed.
        use cshard_workload::{StreamConfig, TxStream};
        let stream = TxStream::new(StreamConfig {
            accounts: 50,
            contracts: 4,
            seed: 3,
            ..StreamConfig::default()
        })
        .take(400);
        let mut lr = LongRun::new(LongRunConfig {
            merging: None,
            ..LongRunConfig::default()
        });
        let reports = lr
            .run_stream(stream, SimTime::from_secs(60))
            .expect("valid stream");
        assert!(reports.len() >= 2, "expected several epochs");
        let m = lr.pipeline_metrics();
        assert!(
            m.total_carried() > m.total_reclassified(),
            "repeat-sender traffic must be carried, not reclassified: \
             carried={} reclassified={}",
            m.total_carried(),
            m.total_reclassified()
        );
    }

    #[test]
    fn empty_batch_rejected() {
        let err = LongRun::new(LongRunConfig::default())
            .run_epoch(&[])
            .unwrap_err();
        assert!(err.to_string().contains("needs transactions"));
    }
}
