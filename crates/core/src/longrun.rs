//! Long-run operation: the sharding system across many epochs.
//!
//! One [`crate::system::ShardingSystem`] run answers "how fast does one
//! injection confirm?". A deployment lives longer: every epoch brings a new
//! transaction batch, a new VRF leader, fresh assignment randomness, and a
//! sender history that keeps accumulating (so the MaxShard's share grows as
//! users diversify). [`LongRun`] drives that loop and aggregates the
//! metrics operators watch across epochs — sustained throughput
//! improvement, waste, communication, and MaxShard drift.

use crate::epoch::EpochManager;
use crate::metrics::throughput_improvement;
use crate::runtime::{simulate, simulate_ethereum, RuntimeConfig, SelectionStrategy, ShardSpec};
use cshard_games::{GameInputs, MergingConfig, UnifiedParameters};
use cshard_ledger::Transaction;
use cshard_network::CommStats;
use cshard_primitives::{Error, MinerId, ShardId};

/// Per-epoch aggregate results.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch number.
    pub epoch: u64,
    /// The elected leader.
    pub leader: MinerId,
    /// Active shards this epoch (post-merge).
    pub shards: usize,
    /// Fraction of the batch routed to the MaxShard (history drift).
    pub maxshard_fraction: f64,
    /// Throughput improvement vs. the one-chain baseline on this batch.
    pub improvement: f64,
    /// Empty blocks across the epoch's run.
    pub empty_blocks: usize,
    /// Cross-shard communication rounds this epoch (merging only; always
    /// zero for validation).
    pub comm_rounds: u64,
}

/// Configuration of a long run.
#[derive(Clone, Debug)]
pub struct LongRunConfig {
    /// Block-production parameters (the seed is varied per epoch).
    pub runtime: RuntimeConfig,
    /// Merging-game settings; `None` disables merging.
    pub merging: Option<MergingConfig>,
    /// Number of enrolled miners (assignment is proportional per epoch,
    /// but the simulated run still uses one miner per shard, as in the
    /// paper's testbed).
    pub miners: u32,
}

impl Default for LongRunConfig {
    fn default() -> Self {
        LongRunConfig {
            runtime: RuntimeConfig::default(),
            merging: Some(MergingConfig::default()),
            miners: 32,
        }
    }
}

/// A multi-epoch simulation.
#[derive(Debug)]
pub struct LongRun {
    config: LongRunConfig,
    epochs: EpochManager,
    reports: Vec<EpochReport>,
}

impl LongRun {
    /// Creates a long run with a fresh miner enrolment.
    pub fn new(config: LongRunConfig) -> Self {
        let epochs = EpochManager::with_miner_count(config.miners);
        LongRun {
            config,
            epochs,
            reports: Vec::new(),
        }
    }

    /// Completed epoch reports.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// Drives one epoch over `batch` (the epoch's injected transactions
    /// with their fees) and records its report.
    ///
    /// Errors on an empty batch, on merge-game misuse, or when the epoch's
    /// simulation run is rejected — the long run never panics on input.
    pub fn run_epoch(&mut self, batch: &[Transaction]) -> Result<EpochReport, Error> {
        if batch.is_empty() {
            return Err(Error::Config {
                field: "batch",
                reason: "an epoch needs transactions".into(),
            });
        }
        let fees: Vec<u64> = batch.iter().map(|t| t.fee.raw()).collect();
        let outcome = self.epochs.run_epoch(batch);
        let epoch = outcome.epoch;
        let comm = CommStats::new();

        // Per-shard queues from the epoch's plan.
        let mut groups: Vec<(ShardId, Vec<u64>)> = outcome
            .plan
            .contract_shards
            .iter()
            .map(|(&shard, idxs)| (shard, idxs.iter().map(|&i| fees[i]).collect()))
            .collect();
        if !outcome.plan.maxshard.is_empty() {
            groups.push((
                ShardId::MAX_SHARD,
                outcome.plan.maxshard.iter().map(|&i| fees[i]).collect(),
            ));
        }
        let maxshard_fraction = outcome.plan.maxshard.len() as f64 / batch.len() as f64;

        // Merge small shards under this epoch's unified parameters.
        if let Some(mcfg) = &self.config.merging {
            let small: Vec<usize> = (0..groups.len())
                .filter(|&i| {
                    !groups[i].0.is_max_shard() && (groups[i].1.len() as u64) < mcfg.lower_bound
                })
                .collect();
            if !small.is_empty() {
                let shard_sizes: Vec<(ShardId, u64)> = small
                    .iter()
                    .map(|&i| (groups[i].0, groups[i].1.len() as u64))
                    .collect();
                let params = UnifiedParameters::from_randomness(
                    outcome.assignment_randomness(),
                    (0..groups.len() as u32).map(MinerId::new).collect(),
                    GameInputs::Merge {
                        shard_sizes,
                        config: *mcfg,
                    },
                );
                params.record_communication(&comm);
                let merge = params.merge_outcome()?;
                let mut consumed: Vec<usize> = Vec::new();
                let mut fused: Vec<(ShardId, Vec<u64>)> = Vec::new();
                for players in &merge.new_shards {
                    let members: Vec<usize> = players.iter().map(|&p| small[p]).collect();
                    // The merge game never emits an empty group; skip
                    // rather than panic if one ever appears (rule PH001).
                    let Some(id) = members.iter().map(|&g| groups[g].0).min() else {
                        continue;
                    };
                    let mut queue = Vec::new();
                    for &g in &members {
                        queue.extend_from_slice(&groups[g].1);
                    }
                    consumed.extend_from_slice(&members);
                    fused.push((id, queue));
                }
                consumed.sort_unstable();
                consumed.dedup();
                for &g in consumed.iter().rev() {
                    groups.remove(g);
                }
                groups.extend(fused);
                groups.sort_by_key(|&(s, _)| s);
            }
        }

        // Run the epoch: one miner per shard, epoch-salted seed.
        let runtime = RuntimeConfig {
            seed: self.config.runtime.seed ^ epoch.wrapping_mul(0x9E37_79B9),
            ..self.config.runtime.clone()
        };
        let specs: Vec<ShardSpec> = groups
            .iter()
            .map(|(shard, queue)| ShardSpec {
                shard: *shard,
                fees: queue.clone(),
                miners: 1,
                strategy: SelectionStrategy::IdenticalGreedy,
            })
            .collect();
        let run = simulate(&specs, &runtime)?;
        let ethereum = simulate_ethereum(fees, 1, &runtime)?;

        let report = EpochReport {
            epoch,
            leader: outcome.leader,
            shards: groups.len(),
            maxshard_fraction,
            improvement: throughput_improvement(&ethereum, &run),
            empty_blocks: run.total_empty_blocks(),
            comm_rounds: comm.total(),
        };
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Mean throughput improvement over all completed epochs.
    pub fn mean_improvement(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(|r| r.improvement).sum::<f64>() / self.reports.len() as f64
    }
}

impl crate::epoch::EpochOutcome {
    /// The randomness the epoch's unified parameters derive from (the
    /// leader's VRF output is already baked into the assignment; re-use a
    /// stable sub-digest of it for the game layer).
    pub fn assignment_randomness(&self) -> cshard_primitives::Hash32 {
        cshard_crypto::sha256_concat(&[
            b"epoch-game-randomness".as_slice(),
            &self.epoch.to_be_bytes(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_workload::{FeeDistribution, Workload};

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

    fn batch(epoch: u64, contracts: usize) -> Vec<Transaction> {
        Workload::uniform_contracts(160, contracts, FEES, 1000 + epoch).transactions
    }

    #[test]
    fn epochs_accumulate_reports() {
        let mut lr = LongRun::new(LongRunConfig::default());
        for e in 0..4 {
            let report = lr.run_epoch(&batch(e, 5)).expect("valid batch");
            assert_eq!(report.epoch, e);
            assert!(report.improvement > 1.0, "epoch {e}: {report:?}");
            assert!(report.shards >= 2);
        }
        assert_eq!(lr.reports().len(), 4);
        assert!(lr.mean_improvement() > 1.5);
    }

    #[test]
    fn merging_keeps_comm_at_two_per_small_shard() {
        let mut lr = LongRun::new(LongRunConfig {
            merging: Some(MergingConfig {
                lower_bound: 12,
                ..MergingConfig::default()
            }),
            ..LongRunConfig::default()
        });
        // A batch with deliberate small shards.
        let w = Workload::with_small_shards(160, 8, 3, &[4, 5, 6], FEES, 7);
        let report = lr.run_epoch(&w.transactions).expect("valid batch");
        assert_eq!(report.comm_rounds, 6, "2 per small shard");
    }

    #[test]
    fn history_drift_grows_the_maxshard() {
        // Re-sending from the same users across epochs with different
        // contracts pushes them into the MaxShard over time.
        let mut lr = LongRun::new(LongRunConfig {
            merging: None,
            ..LongRunConfig::default()
        });
        // Epoch 0: users 0..160 call contract set A.
        let w0 = Workload::uniform_contracts(160, 4, FEES, 42);
        let r0 = lr
            .run_epoch(&w0.transactions)
            .expect("valid batch")
            .maxshard_fraction;
        // Epoch 1: THE SAME senders now call a different contract each —
        // multi-contract history forces them into the MaxShard.
        let mut w1 = Vec::new();
        for (i, tx) in w0.transactions.iter().enumerate() {
            if let cshard_ledger::TxKind::ContractCall { contract, value } = &tx.kind {
                let other = cshard_primitives::ContractId::new((contract.0 + 1) % 4);
                let _ = (i, value);
                w1.push(Transaction::call(
                    tx.sender,
                    tx.nonce + 1,
                    other,
                    *value,
                    tx.fee,
                ));
            }
        }
        let r1 = lr.run_epoch(&w1).expect("valid batch").maxshard_fraction;
        assert!(r1 > r0 + 0.5, "drift not visible: {r0:.2} -> {r1:.2}");
    }

    #[test]
    fn deterministic_across_replays() {
        let run = || {
            let mut lr = LongRun::new(LongRunConfig::default());
            lr.run_epoch(&batch(0, 5)).expect("valid batch");
            lr.run_epoch(&batch(1, 6)).expect("valid batch");
            (lr.reports()[0].improvement, lr.reports()[1].improvement)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_batch_rejected() {
        let err = LongRun::new(LongRunConfig::default())
            .run_epoch(&[])
            .unwrap_err();
        assert!(err.to_string().contains("needs transactions"));
    }
}
