//! Run reports and the paper's performance metrics (compatibility facade).
//!
//! [`RunReport`], [`ShardReport`] and [`throughput_improvement`] moved to
//! [`cshard_runtime::report`] when the simulation stack was unified — the
//! report is produced by the runtime harness, so it lives next to it.
//! These re-exports keep the historical `cshard_core::metrics` paths
//! (and the fingerprint preimage, which golden tests pin) intact.

pub use cshard_runtime::report::{throughput_improvement, RunReport, ShardReport};
