//! Placement knobs, off by default.

use cshard_primitives::Error;

/// Configuration for the cross-epoch placement engine.
///
/// Like `SettleConfig`, the disabled configuration is the [`Default`] and
/// is bit-invisible: with `enabled == false` the merge stage recomputes
/// from scratch every epoch, the placement stage emits no work and no
/// migration ever reaches the runtime, so every golden fingerprint is
/// byte-identical to a build without the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementConfig {
    /// Master switch. When `false` every other knob is ignored.
    pub enabled: bool,
    /// Carry merge groups across epochs: re-validate each carried group
    /// against the new shard sizes and re-run the replicator dynamics
    /// only for the shards whose groups went out of bounds.
    pub carry_merge_groups: bool,
    /// A MaxShard-routed sender is migration-eligible only when at least
    /// this percentage of its observed contract calls target one
    /// contract. Must lie in `1..=100` when enabled.
    pub min_dominance_percent: u32,
    /// Minimum observed contract calls before a sender is considered at
    /// all; filters one-shot senders. Must be at least 1 when enabled.
    pub min_account_txs: u64,
    /// Upper bound on migrations proposed per epoch. Zero is legal and
    /// means "carry merge groups but never move an account".
    pub max_moves_per_epoch: usize,
    /// Minimum load imbalance (see `PlacementEngine::imbalance`) before
    /// any move is proposed. Must be finite and non-negative.
    pub min_imbalance: f64,
}

impl PlacementConfig {
    /// Placement switched off: the pipeline behaves exactly as if the
    /// engine did not exist.
    pub const fn disabled() -> Self {
        PlacementConfig {
            enabled: false,
            carry_merge_groups: false,
            min_dominance_percent: 0,
            min_account_txs: 0,
            max_moves_per_epoch: 0,
            min_imbalance: 0.0,
        }
    }

    /// The engaged profile used by the experiments: carry merge groups
    /// and migrate senders with a 60%-dominant contract, at least four
    /// observed calls, at most sixteen moves per epoch.
    pub const fn engaged() -> Self {
        PlacementConfig {
            enabled: true,
            carry_merge_groups: true,
            min_dominance_percent: 60,
            min_account_txs: 4,
            max_moves_per_epoch: 16,
            min_imbalance: 0.0,
        }
    }

    /// Validates the knobs. A disabled configuration is always valid —
    /// the other fields are dead state, mirroring `SettleConfig`.
    pub fn validate(&self) -> Result<(), Error> {
        if !self.enabled {
            return Ok(());
        }
        if self.min_dominance_percent == 0 || self.min_dominance_percent > 100 {
            return Err(Error::Config {
                field: "placement.min_dominance_percent",
                reason: format!(
                    "dominance must lie in 1..=100, got {}",
                    self.min_dominance_percent
                ),
            });
        }
        if self.min_account_txs == 0 {
            return Err(Error::Config {
                field: "placement.min_account_txs",
                reason: "a sender needs at least one observed call".into(),
            });
        }
        if !self.min_imbalance.is_finite() || self.min_imbalance < 0.0 {
            return Err(Error::Config {
                field: "placement.min_imbalance",
                reason: format!(
                    "imbalance threshold must be finite and >= 0, got {}",
                    self.min_imbalance
                ),
            });
        }
        Ok(())
    }
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_valid_regardless_of_knobs() {
        let mut cfg = PlacementConfig::disabled();
        cfg.min_dominance_percent = 9999;
        cfg.min_imbalance = f64::NAN;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn engaged_profile_is_valid() {
        assert!(PlacementConfig::engaged().validate().is_ok());
    }

    #[test]
    fn zero_moves_is_legal_carry_only_mode() {
        let cfg = PlacementConfig {
            max_moves_per_epoch: 0,
            ..PlacementConfig::engaged()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn bad_knobs_are_rejected_with_the_field_name() {
        let field = |cfg: PlacementConfig| match cfg.validate() {
            Err(Error::Config { field, .. }) => field,
            other => panic!("expected config error, got {other:?}"),
        };
        assert_eq!(
            field(PlacementConfig {
                min_dominance_percent: 0,
                ..PlacementConfig::engaged()
            }),
            "placement.min_dominance_percent"
        );
        assert_eq!(
            field(PlacementConfig {
                min_dominance_percent: 101,
                ..PlacementConfig::engaged()
            }),
            "placement.min_dominance_percent"
        );
        assert_eq!(
            field(PlacementConfig {
                min_account_txs: 0,
                ..PlacementConfig::engaged()
            }),
            "placement.min_account_txs"
        );
        assert_eq!(
            field(PlacementConfig {
                min_imbalance: f64::NAN,
                ..PlacementConfig::engaged()
            }),
            "placement.min_imbalance"
        );
        assert_eq!(
            field(PlacementConfig {
                min_imbalance: -0.5,
                ..PlacementConfig::engaged()
            }),
            "placement.min_imbalance"
        );
    }

    #[test]
    fn default_is_disabled() {
        assert_eq!(PlacementConfig::default(), PlacementConfig::disabled());
        assert!(!PlacementConfig::default().enabled);
    }
}
