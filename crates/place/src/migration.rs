//! The shard-level migration record.

use cshard_primitives::{Address, ShardId};

/// One account move decided by the placement engine.
///
/// Produced by the pipeline's placement stage at the end of an epoch and
/// *executed* the following epoch: the classify stage re-keys the
/// account's route map entry, and the runtime's migrating driver drains
/// the account's in-flight settlement state before switching shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Migration {
    /// The account being moved.
    pub account: Address,
    /// The shard the account currently routes to.
    pub from: ShardId,
    /// The shard the account moves to.
    pub to: ShardId,
    /// Observed contract calls backing the decision (the hotness that
    /// ranked this move).
    pub txs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrations_are_copy_and_comparable() {
        let m = Migration {
            account: Address([7; 20]),
            from: ShardId::MAX_SHARD,
            to: ShardId::new(3),
            txs: 12,
        };
        let copy = m;
        assert_eq!(m, copy);
        assert!(m <= copy);
    }
}
