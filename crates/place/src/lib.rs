//! The cross-epoch placement engine.
//!
//! The paper's shard-formation games (Algorithm 1, Sec. V) recompute
//! placement from scratch every epoch and never move an account: a
//! zipf-hot contract therefore pins its callers' cross-shard traffic
//! forever. This crate holds the *policy* half of the fix — persistent
//! per-sender traffic accounting plus a migration proposer — while the
//! pipeline and runtime own the mechanism (route-map invalidation,
//! in-flight drains, the `Event::Migration` apply path):
//!
//! * [`PlacementConfig`] — the off-by-default knob block threaded through
//!   `SystemBuilder::placement()`. Disabled, the engine is bit-invisible;
//! * [`PlacementEngine`] — observes MaxShard-routed contract calls across
//!   epochs, measures load imbalance ([`PlacementEngine::imbalance`]) and
//!   proposes dominance-based hot-account moves ([`PlacementEngine::propose`]);
//! * [`HotAccount`] — a proposed move in contract space (who, where, how
//!   hot), mapped to a shard-level [`Migration`] by the pipeline's
//!   placement stage;
//! * [`Migration`] — the shard-level move record carried in each epoch's
//!   output and executed by the runtime's migrating driver.
//!
//! Everything here is deterministic: traffic counters live in `BTreeMap`s,
//! proposals sort by (descending traffic, address), and the imbalance
//! metric folds shard loads in key order.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Placement decisions feed the runtime's event loop; policy code must
// surface typed errors, not panics (PH001).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod engine;
pub mod migration;

pub use config::PlacementConfig;
pub use engine::{HotAccount, PlacementEngine};
pub use migration::Migration;
