//! Hot-account tracking and migration proposals.

use std::collections::{BTreeMap, BTreeSet};

use cshard_network::CommSnapshot;
use cshard_primitives::{Address, ContractId, ShardId};

use crate::config::PlacementConfig;

/// A migration-eligible sender: the contract that dominates its observed
/// traffic and how many calls back the decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotAccount {
    /// The sender to move.
    pub account: Address,
    /// The contract whose home shard the sender should move to.
    pub contract: ContractId,
    /// Observed calls from the sender to that contract.
    pub txs: u64,
}

/// Persistent placement state, carried across epochs.
///
/// The engine sees only what the classify stage routes to the MaxShard:
/// a sender whose contract calls land on a contract shard already sits
/// where its traffic is. Counters accumulate across epochs so a sender
/// slowly concentrating on one contract eventually crosses the dominance
/// threshold, and an account is proposed at most once — after a move its
/// calls are no longer MaxShard traffic, and the `moved` set keeps
/// re-proposals out even if stale observations linger.
#[derive(Clone, Debug, Default)]
pub struct PlacementEngine {
    config: PlacementConfig,
    /// Per-sender, per-contract observed MaxShard-routed calls.
    traffic: BTreeMap<Address, BTreeMap<ContractId, u64>>,
    /// Accounts already proposed for migration.
    moved: BTreeSet<Address>,
}

impl PlacementEngine {
    /// A fresh engine with the given knobs.
    pub fn new(config: PlacementConfig) -> Self {
        PlacementEngine {
            config,
            traffic: BTreeMap::new(),
            moved: BTreeSet::new(),
        }
    }

    /// The knobs the engine was built with.
    pub fn config(&self) -> &PlacementConfig {
        &self.config
    }

    /// Records one MaxShard-routed contract call.
    pub fn observe(&mut self, sender: Address, contract: ContractId) {
        *self
            .traffic
            .entry(sender)
            .or_default()
            .entry(contract)
            .or_insert(0) += 1;
    }

    /// Number of distinct senders observed so far.
    pub fn tracked_senders(&self) -> usize {
        self.traffic.len()
    }

    /// Number of accounts proposed for migration over the engine's life.
    pub fn moved_accounts(&self) -> usize {
        self.moved.len()
    }

    /// The epoch's load-imbalance metric: `max(load) / mean(load) - 1`,
    /// where a shard's load is its planned transaction count plus its
    /// recorded cross-shard messages. `0.0` means perfectly balanced; a
    /// value of `1.0` means the hottest shard carries twice the mean.
    /// Deterministic: folds in `sizes` order, reads the snapshot per key.
    pub fn imbalance(sizes: &[(ShardId, u64)], comm: &CommSnapshot) -> f64 {
        if sizes.is_empty() {
            return 0.0;
        }
        let loads: Vec<u64> = sizes
            .iter()
            .map(|&(id, size)| size + comm.for_shard(id))
            .collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = loads.iter().copied().max().unwrap_or(0);
        max as f64 / mean - 1.0
    }

    /// Proposes up to `max_moves_per_epoch` hot accounts, hottest first
    /// (ties broken by address). A sender qualifies when it has at least
    /// `min_account_txs` observed calls and one contract holds at least
    /// `min_dominance_percent` of them. Proposed accounts are marked
    /// moved and never proposed again.
    pub fn propose(&mut self) -> Vec<HotAccount> {
        if !self.config.enabled || self.config.max_moves_per_epoch == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<HotAccount> = Vec::new();
        for (&account, calls) in &self.traffic {
            if self.moved.contains(&account) {
                continue;
            }
            let total: u64 = calls.values().sum();
            if total < self.config.min_account_txs {
                continue;
            }
            // Ascending ContractId iteration + strict `>` keeps the
            // smallest dominant contract on a tie.
            let Some((&contract, &txs)) =
                calls
                    .iter()
                    .reduce(|best, cur| if cur.1 > best.1 { cur } else { best })
            else {
                continue;
            };
            if txs * 100 >= total * u64::from(self.config.min_dominance_percent) {
                candidates.push(HotAccount {
                    account,
                    contract,
                    txs,
                });
            }
        }
        candidates.sort_by(|a, b| b.txs.cmp(&a.txs).then(a.account.cmp(&b.account)));
        candidates.truncate(self.config.max_moves_per_epoch);
        for hot in &candidates {
            self.moved.insert(hot.account);
        }
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_network::CommStats;

    fn addr(n: u8) -> Address {
        Address([n; 20])
    }

    fn engine() -> PlacementEngine {
        PlacementEngine::new(PlacementConfig::engaged())
    }

    #[test]
    fn dominant_sender_is_proposed_once() {
        let mut e = engine();
        for _ in 0..5 {
            e.observe(addr(1), ContractId::new(2));
        }
        e.observe(addr(1), ContractId::new(3));
        let first = e.propose();
        assert_eq!(
            first,
            vec![HotAccount {
                account: addr(1),
                contract: ContractId::new(2),
                txs: 5
            }]
        );
        // Same traffic, second epoch: already moved, nothing proposed.
        assert!(e.propose().is_empty());
        assert_eq!(e.moved_accounts(), 1);
    }

    #[test]
    fn non_dominant_or_cold_senders_are_skipped() {
        let mut e = engine();
        // 50/50 split: below the 60% dominance bar.
        for _ in 0..4 {
            e.observe(addr(1), ContractId::new(0));
            e.observe(addr(1), ContractId::new(1));
        }
        // Dominant but only 2 calls: below min_account_txs = 4.
        e.observe(addr(2), ContractId::new(0));
        e.observe(addr(2), ContractId::new(0));
        assert!(e.propose().is_empty());
        // Two more calls push the cold sender over the activity bar.
        e.observe(addr(2), ContractId::new(0));
        e.observe(addr(2), ContractId::new(0));
        assert_eq!(e.propose().len(), 1);
    }

    #[test]
    fn proposals_rank_by_traffic_then_address_and_respect_the_cap() {
        let mut e = PlacementEngine::new(PlacementConfig {
            max_moves_per_epoch: 2,
            ..PlacementConfig::engaged()
        });
        for _ in 0..4 {
            e.observe(addr(9), ContractId::new(0));
            e.observe(addr(3), ContractId::new(1));
        }
        for _ in 0..7 {
            e.observe(addr(5), ContractId::new(2));
        }
        let hot = e.propose();
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].account, addr(5));
        // addr(3) and addr(9) tie on traffic; the smaller address wins.
        assert_eq!(hot[1].account, addr(3));
        // The loser stays eligible for the next epoch.
        assert_eq!(
            e.propose(),
            vec![HotAccount {
                account: addr(9),
                contract: ContractId::new(0),
                txs: 4
            }]
        );
    }

    #[test]
    fn disabled_or_zero_cap_engines_propose_nothing() {
        for config in [
            PlacementConfig::disabled(),
            PlacementConfig {
                max_moves_per_epoch: 0,
                ..PlacementConfig::engaged()
            },
        ] {
            let mut e = PlacementEngine::new(config);
            for _ in 0..10 {
                e.observe(addr(1), ContractId::new(0));
            }
            assert!(e.propose().is_empty());
            assert_eq!(e.moved_accounts(), 0);
        }
    }

    #[test]
    fn imbalance_is_zero_when_balanced_and_scales_with_skew() {
        let comm = CommStats::new();
        let even = [(ShardId::new(0), 10), (ShardId::new(1), 10)];
        assert_eq!(PlacementEngine::imbalance(&even, &comm.snapshot()), 0.0);
        let skewed = [(ShardId::new(0), 30), (ShardId::new(1), 10)];
        // loads 30/10, mean 20, max 30 -> 0.5
        assert!((PlacementEngine::imbalance(&skewed, &comm.snapshot()) - 0.5).abs() < 1e-12);
        // Communication counts toward load.
        comm.record_many(ShardId::new(1), cshard_network::CommKind::Crosslink, 20);
        assert!((PlacementEngine::imbalance(&even, &comm.snapshot()) - 0.5).abs() < 1e-12);
        assert_eq!(PlacementEngine::imbalance(&[], &comm.snapshot()), 0.0);
        assert_eq!(
            PlacementEngine::imbalance(&[(ShardId::new(0), 0)], &CommStats::new().snapshot()),
            0.0
        );
    }
}
