//! The `ProtocolDriver` trait and the context handed to its hooks.

use crate::event::Event;
use crate::report::ShardReport;
use cshard_network::CommStats;
use cshard_primitives::{Error, SimTime};
use cshard_settle::SettleStats;
use cshard_sim::EventQueue;
use std::time::Duration;

/// What a driver may do while handling an event: schedule further events
/// on its own shard's queue and account cross-shard messaging.
///
/// The context deliberately exposes no clock control and no access to
/// other shards — those constraints are what let the harness run one
/// driver per thread with bit-identical results at any thread count.
pub struct Ctx<'a> {
    queue: &'a mut EventQueue<Event>,
    comm: &'a CommStats,
}

impl<'a> Ctx<'a> {
    /// Wraps a shard's queue and the run-wide communication counter.
    pub fn new(queue: &'a mut EventQueue<Event>, comm: &'a CommStats) -> Self {
        Ctx { queue, comm }
    }

    /// The current simulated time (timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` is in the past — a simulation must never rewind.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.queue.schedule(at, event);
    }

    /// Schedules `event` after `delay`, saturating at the end of
    /// representable time rather than overflowing.
    pub fn schedule_in(&mut self, delay: SimTime, event: Event) {
        self.queue.schedule_in(delay, event);
    }

    /// The run's cross-shard communication counter. Drivers record each
    /// messaging round here *as it happens*, so Fig. 4's accounting is
    /// emitted from inside the event loop rather than reconstructed
    /// post-hoc.
    pub fn comm(&self) -> &CommStats {
        self.comm
    }
}

/// One shard's protocol logic, driven by the shared event loop.
///
/// A driver is a deterministic state machine: its entire trajectory is a
/// function of its construction parameters and the event stream. It must
/// not read host wall-clock time, global state, or unseeded randomness —
/// the harness owns all of those (and measures wall time around the
/// hooks, behind the report layer).
///
/// # Writing a new driver
///
/// 1. Seed initial events in [`ProtocolDriver::on_start`] (first mining
///    ticks, injection batches, an epoch kick-off).
/// 2. React in [`ProtocolDriver::on_event`]; reschedule recurring events
///    (a miner's next `BlockFound`) from inside the handler. Handlers
///    return `Err` (typed [`cshard_primitives::Error`]) for a malformed
///    event stream — e.g. an event this driver never schedules — instead
///    of panicking; the harness aborts the run and surfaces the error.
/// 3. Report local progress through [`ProtocolDriver::done`] and
///    [`ProtocolDriver::completion`]; the harness runs phase 1 until
///    every driver is done, then replays idle events up to the global
///    completion time so cross-shard accounting is exact.
pub trait ProtocolDriver: Send {
    /// Schedules the driver's initial events. Called once, at t = 0,
    /// before any event fires.
    fn on_start(&mut self, ctx: &mut Ctx);

    /// Handles one event at simulated time `t`. Returns `Err` on a
    /// malformed stream (an event this driver never scheduled); the
    /// harness stops the run and propagates the error — `on_event` paths
    /// must not panic.
    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error>;

    /// True when the shard's own workload is complete (phase-1 exit).
    /// After this returns true the harness only replays the driver for
    /// idle accounting, up to the run's global completion time.
    fn done(&self) -> bool;

    /// When the shard confirmed its last transaction (`None` if it had
    /// none). The maximum over drivers is the run's completion time.
    fn completion(&self) -> Option<SimTime>;

    /// The shard's final report. `events` and `wall` are supplied by the
    /// harness: events popped for this driver and host time spent in its
    /// hooks (diagnostic only, excluded from fingerprints).
    fn report(&self, events: usize, wall: Duration) -> ShardReport;

    /// Settlement accounting, for drivers that batch cross-shard
    /// transfers through a `cshard_settle::SettlementBatcher`. The run
    /// outcome aggregates these across drivers; the default (`None`) is
    /// for the overwhelming majority of drivers that do not settle.
    fn settle_stats(&self) -> Option<SettleStats> {
        None
    }
}

impl<D: ProtocolDriver + ?Sized> ProtocolDriver for Box<D> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        (**self).on_start(ctx)
    }
    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        (**self).on_event(t, ev, ctx)
    }
    fn done(&self) -> bool {
        (**self).done()
    }
    fn completion(&self) -> Option<SimTime> {
        (**self).completion()
    }
    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        (**self).report(events, wall)
    }
    fn settle_stats(&self) -> Option<SettleStats> {
        (**self).settle_stats()
    }
}
