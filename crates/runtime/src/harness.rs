//! The two-phase run harness: one driver per shard on the shard-lifecycle
//! scheduler, launched through [`Runtime::builder`].

use crate::driver::{Ctx, ProtocolDriver};
use crate::event::Event;
use crate::report::RunReport;
use cshard_network::CommStats;
use cshard_primitives::{Error, SimTime};
use cshard_settle::SettleStats;
use cshard_sim::{DrainStats, EventQueue, SchedulerConfig, Turn, WorkScheduler};
// Wall-clock reads are confined to this harness by design (audit rule
// ND001 allowlists exactly this file): `wall` feeds only the diagnostic
// fields of the report, never the simulation.
use std::time::{Duration, Instant};

/// One driver mid-run: its queue, its state, and the harness-side
/// accounting the driver itself is not allowed to touch.
struct DriverTask<D> {
    driver: D,
    queue: EventQueue<Event>,
    events: usize,
    wall: Duration,
    last_event: Option<Event>,
}

/// The run's two scheduler passes, as the [`RunObserver`] sees them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPhase {
    /// Phase 1: every driver with work runs to [`ProtocolDriver::done`].
    Active,
    /// Phase 2: early finishers replay pending events strictly before the
    /// global completion time (idle-mining accounting).
    IdleDrain,
}

/// Caller-side run hooks, mirroring the pipeline's `StageObserver`: the
/// harness itself reads wall clocks only for the report's diagnostic
/// fields, so a bench that wants per-phase timing brackets these hooks
/// with its own `Instant` reads.
pub trait RunObserver {
    /// Called immediately before a phase's scheduler drain starts.
    fn phase_started(&mut self, phase: RunPhase) {
        let _ = phase;
    }
    /// Called after the phase drained, with its scheduling statistics.
    fn phase_finished(&mut self, phase: RunPhase, stats: &DrainStats) {
        let _ = (phase, stats);
    }
}

/// Scheduling statistics of one completed run: what each of the two
/// phases admitted, skipped and executed. Sim-clock-free counters
/// (ND001-clean); deliberately outside the fingerprinted report surface.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunSchedStats {
    /// Phase 1 (active) drain statistics.
    pub active: DrainStats,
    /// Phase 2 (idle drain) statistics.
    pub idle_drain: DrainStats,
}

impl RunSchedStats {
    /// Task slots admitted across both phases.
    pub fn scheduled(&self) -> u64 {
        self.active.scheduled + self.idle_drain.scheduled
    }

    /// Task slots skipped (no queued work) across both phases — the
    /// idle-shard saving, as a number.
    pub fn skipped(&self) -> u64 {
        self.active.skipped + self.idle_drain.skipped
    }

    /// Scheduled turns across both phases.
    pub fn turns(&self) -> u64 {
        self.active.turns + self.idle_drain.turns
    }
}

/// Everything a run produced: the fingerprinted [`RunReport`], the
/// finished drivers (in input order), the communication counter the run
/// recorded into, and the scheduler's statistics.
pub struct RunOutcome<D> {
    /// The standard run report (the fingerprinted surface).
    pub report: RunReport,
    /// The finished drivers, in input order. Wrappers that accumulate
    /// extra per-shard state during the run — the fault-injection layer's
    /// `FaultyDriver` is the canonical case — read it back out of these.
    pub drivers: Vec<D>,
    /// The communication counter the drivers recorded into (Fig. 4(b)).
    pub comm: CommStats,
    /// Per-phase scheduling statistics (admitted/skipped/turns).
    pub sched: RunSchedStats,
    /// Settlement accounting, folded over every driver's
    /// [`ProtocolDriver::settle_stats`]. All-zero (and
    /// [`SettleStats::is_empty`]) for runs without settling drivers.
    pub settle: SettleStats,
}

// Manual impl: drivers are often not Debug (trait objects, fault
// wrappers); summarize them by count instead of bounding `D`.
impl<D> std::fmt::Debug for RunOutcome<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOutcome")
            .field("report", &self.report)
            .field("drivers", &self.drivers.len())
            .field("sched", &self.sched)
            .field("settle", &self.settle)
            .finish_non_exhaustive()
    }
}

/// The fluent launch surface for a protocol run.
///
/// ```
/// use cshard_runtime::{Runtime, ContractShardDriver, RuntimeConfig, ShardSpec};
/// use cshard_primitives::ShardId;
/// use cshard_sim::SchedulerConfig;
///
/// let config = RuntimeConfig::default();
/// let drivers = vec![ContractShardDriver::new(
///     &ShardSpec::solo_greedy(ShardId::new(0), vec![5, 3, 8]),
///     &config,
/// )];
/// let outcome = Runtime::builder()
///     .scheduler(SchedulerConfig::per_core())
///     .run(drivers)
///     .expect("well-formed");
/// assert_eq!(outcome.report.total_txs(), 3);
/// ```
pub struct RunBuilder<'obs> {
    config: SchedulerConfig,
    comm: CommStats,
    observer: Option<&'obs mut dyn RunObserver>,
}

impl<'obs> RunBuilder<'obs> {
    /// The scheduler configuration (worker count + turn budget) for both
    /// phases. Defaults to sequential.
    pub fn scheduler(mut self, config: SchedulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Shorthand for [`RunBuilder::scheduler`] with just a worker count
    /// (`0` = one per core, `1` = inline/sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Uses an existing communication counter, so callers can read the
    /// messaging a run emitted (Fig. 4(b)) or pool several runs. A fresh
    /// counter is created (and handed back in the outcome) otherwise.
    pub fn comm_stats(mut self, comm: CommStats) -> Self {
        self.comm = comm;
        self
    }

    /// Installs per-phase hooks for the run (bench-side wall timing).
    pub fn observer(mut self, observer: &'obs mut dyn RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs every driver to completion (two phases) and hands back the
    /// full [`RunOutcome`]. The shard order of the report matches the
    /// driver order given here.
    ///
    /// Errors when a driver's event stream is malformed: the driver
    /// reports unfinished work with an empty queue
    /// ([`Error::StalledDriver`], whose payload carries the stall's
    /// simulated time and the last event handled) or an `on_event` hook
    /// rejects an event ([`Error::UnexpectedEvent`]). The event loop
    /// itself never panics.
    pub fn run<D: ProtocolDriver>(self, drivers: Vec<D>) -> Result<RunOutcome<D>, Error> {
        let RunBuilder {
            config,
            comm,
            observer,
        } = self;
        let (report, drivers, sched) = execute(config, &comm, observer, drivers)?;
        let mut settle = SettleStats::new();
        for stats in drivers.iter().filter_map(|d| d.settle_stats()) {
            settle.merge(&stats);
        }
        Ok(RunOutcome {
            report,
            drivers,
            comm,
            sched,
            settle,
        })
    }
}

/// Runs a set of [`ProtocolDriver`]s to completion and reports.
///
/// Drivers are independent simulation tasks: each owns its event queue
/// and (by the driver contract) derives randomness from its own seeded
/// streams, so the scheduler may run them on any number of threads with
/// bit-identical results. The run has two phases, exactly as the
/// pre-refactor simulator had:
///
/// 1. **Active** — each driver runs until [`ProtocolDriver::done`]; the
///    driver finishing last sets the run's global completion time.
/// 2. **Idle drain** — drivers that finished early replay their pending
///    events strictly before the global completion time, so idle-mining
///    (empty/stale block) accounting matches a fully serialized run.
///
/// Each phase is one scheduler drain: only drivers with queued work are
/// admitted (idle shards are skipped and counted, never scheduled), and
/// a driver whose turn budget runs out yields the worker and re-enters
/// the ready queue. All host wall-clock reads happen here, around the
/// driver hooks — drivers themselves are replayable pure functions of
/// their event streams, and `wall` feeds only the diagnostic fields of
/// the report.
///
/// All runs launch through [`Runtime::builder`].
pub struct Runtime;

impl Runtime {
    /// The fluent launch surface: configure scheduler, communication
    /// counter and observer, then [`RunBuilder::run`].
    pub fn builder<'obs>() -> RunBuilder<'obs> {
        RunBuilder {
            config: SchedulerConfig::default(),
            comm: CommStats::new(),
            observer: None,
        }
    }
}

/// The shared two-phase engine behind [`RunBuilder::run`].
fn execute<D: ProtocolDriver>(
    config: SchedulerConfig,
    comm: &CommStats,
    mut observer: Option<&mut dyn RunObserver>,
    drivers: Vec<D>,
) -> Result<(RunReport, Vec<D>, RunSchedStats), Error> {
    let run_start = Instant::now();
    let scheduler = WorkScheduler::new(config);
    let budget = if config.turn_events == 0 {
        usize::MAX
    } else {
        config.turn_events
    };

    // Seed every driver's queue. `on_start` is part of every shard's
    // trajectory — an "idle" shard still schedules its miners' first
    // ticks, which is what the idle-drain phase replays for empty-block
    // accounting — so it runs unconditionally, before admission decides
    // which shards have phase-1 work left.
    let mut tasks: Vec<DriverTask<D>> = Vec::with_capacity(drivers.len());
    for mut driver in drivers {
        let start = Instant::now();
        let mut queue = EventQueue::new();
        driver.on_start(&mut Ctx::new(&mut queue, comm));
        tasks.push(DriverTask {
            driver,
            queue,
            events: 0,
            wall: start.elapsed(),
            last_event: None,
        });
    }

    // Phase 1: admit drivers with unfinished work; each turn processes up
    // to `budget` events, yielding (and re-enqueueing) in between.
    if let Some(obs) = observer.as_deref_mut() {
        obs.phase_started(RunPhase::Active);
    }
    let (tasks, active) = scheduler.drain(
        tasks,
        |t| !t.driver.done(),
        |index, t| {
            let start = Instant::now();
            let mut processed = 0;
            let outcome = loop {
                if t.driver.done() {
                    break Ok(Turn::Done);
                }
                if processed >= budget {
                    break Ok(Turn::Yield);
                }
                let Some((now, ev)) = t.queue.pop() else {
                    // The queue drained with work outstanding: surface
                    // where the stream died — the drain time and the
                    // event at the head of the queue when the stall
                    // began (the last one handled).
                    break Err(Error::StalledDriver {
                        index,
                        at: t.queue.now(),
                        last_event: t.last_event.map(|ev| format!("{ev:?}")),
                    });
                };
                t.events += 1;
                processed += 1;
                t.last_event = Some(ev);
                if let Err(e) = t
                    .driver
                    .on_event(now, ev, &mut Ctx::new(&mut t.queue, comm))
                {
                    break Err(e);
                }
            };
            t.wall += start.elapsed();
            outcome
        },
    )?;
    if let Some(obs) = observer.as_deref_mut() {
        obs.phase_finished(RunPhase::Active, &active);
    }

    // Global completion = the last confirmation anywhere.
    let completion = tasks
        .iter()
        .filter_map(|t| t.driver.completion())
        .max()
        .unwrap_or(SimTime::ZERO);

    // Phase 2: idle-drain early finishers up to the global completion.
    // Admission is the same predicate the turn loop re-checks: an event
    // strictly before the completion time is pending replay.
    if let Some(obs) = observer.as_deref_mut() {
        obs.phase_started(RunPhase::IdleDrain);
    }
    let pending = |t: &DriverTask<D>| t.queue.next_time().is_some_and(|at| at < completion);
    let (tasks, idle_drain) = scheduler.drain(tasks, pending, |_, t| {
        let start = Instant::now();
        let mut processed = 0;
        let outcome = loop {
            if t.queue.next_time().is_none_or(|at| at >= completion) {
                break Ok(Turn::Done);
            }
            if processed >= budget {
                break Ok(Turn::Yield);
            }
            let Some((now, ev)) = t.queue.pop() else {
                break Ok(Turn::Done); // next_time() said Some; drained means done
            };
            t.events += 1;
            processed += 1;
            if let Err(e) = t
                .driver
                .on_event(now, ev, &mut Ctx::new(&mut t.queue, comm))
            {
                break Err(e);
            }
        };
        t.wall += start.elapsed();
        outcome
    })?;
    if let Some(obs) = observer {
        obs.phase_finished(RunPhase::IdleDrain, &idle_drain);
    }

    let mut drivers = Vec::with_capacity(tasks.len());
    let mut shards = Vec::with_capacity(tasks.len());
    for t in tasks {
        shards.push(t.driver.report(t.events, t.wall));
        drivers.push(t.driver);
    }
    Ok((
        RunReport {
            completion,
            shards,
            wall: run_start.elapsed(),
            threads_used: scheduler.workers(),
        },
        drivers,
        RunSchedStats { active, idle_drain },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ShardReport;
    use cshard_primitives::ShardId;

    /// A driver that confirms one "transaction" per tick, `n` ticks.
    struct Ticker {
        shard: ShardId,
        remaining: usize,
        total: usize,
        last: Option<SimTime>,
    }

    impl ProtocolDriver for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if self.remaining > 0 {
                ctx.schedule(SimTime::from_millis(10), Event::BlockFound { miner: 0 });
            }
        }
        fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
            assert_eq!(ev, Event::BlockFound { miner: 0 });
            self.remaining -= 1;
            self.last = Some(t);
            if self.remaining > 0 {
                ctx.schedule_in(SimTime::from_millis(10), ev);
            }
            Ok(())
        }
        fn done(&self) -> bool {
            self.remaining == 0
        }
        fn completion(&self) -> Option<SimTime> {
            self.last
        }
        fn report(&self, events: usize, wall: Duration) -> ShardReport {
            ShardReport {
                shard: self.shard,
                txs: self.total,
                confirmed: self.total - self.remaining,
                completion: self.last,
                blocks: events,
                empty_blocks: 0,
                stale_blocks: 0,
                events_processed: events,
                wall,
            }
        }
    }

    fn ticker(shard: u32, n: usize) -> Ticker {
        Ticker {
            shard: ShardId::new(shard),
            remaining: n,
            total: n,
            last: None,
        }
    }

    #[test]
    fn runs_all_drivers_and_takes_max_completion() {
        let outcome = Runtime::builder()
            .run(vec![ticker(0, 3), ticker(1, 7)])
            .expect("well-formed");
        let r = &outcome.report;
        assert_eq!(r.completion, SimTime::from_millis(70));
        assert_eq!(r.shards[0].confirmed, 3);
        assert_eq!(r.shards[1].confirmed, 7);
        assert_eq!(r.total_txs(), 10);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = || vec![ticker(0, 5), ticker(1, 2), ticker(2, 9)];
        let seq = Runtime::builder().run(mk()).expect("well-formed");
        let par = Runtime::builder()
            .threads(4)
            .run(mk())
            .expect("well-formed");
        assert_eq!(seq.report.fingerprint(), par.report.fingerprint());
        assert_eq!(seq.sched, par.sched);
    }

    #[test]
    fn turn_budget_does_not_change_results_but_adds_turns() {
        let mk = || vec![ticker(0, 5), ticker(1, 2), ticker(2, 9)];
        let whole = Runtime::builder().run(mk()).expect("well-formed");
        let chopped = Runtime::builder()
            .scheduler(SchedulerConfig::new(4).with_turn_events(2))
            .run(mk())
            .expect("well-formed");
        assert_eq!(whole.report.fingerprint(), chopped.report.fingerprint());
        assert!(
            chopped.sched.turns() > whole.sched.turns(),
            "a 2-event budget must yield between turns"
        );
        // Same admissions either way — budgets change only turn granularity.
        assert_eq!(whole.sched.scheduled(), chopped.sched.scheduled());
        assert_eq!(whole.sched.skipped(), chopped.sched.skipped());
    }

    #[test]
    fn idle_drivers_are_skipped_not_scheduled() {
        // Shard 0 has no work at all: done() is true from the start and
        // nothing is queued below the completion time, so both phases
        // skip it — that is the scheduler's measured saving.
        let outcome = Runtime::builder()
            .run(vec![ticker(0, 0), ticker(1, 4)])
            .expect("well-formed");
        assert_eq!(outcome.sched.active.skipped, 1);
        assert_eq!(outcome.sched.active.scheduled, 1);
        assert_eq!(outcome.sched.active.per_slot_turns[0], 0);
        assert!(outcome.sched.idle_drain.skipped >= 1);
        assert_eq!(outcome.report.shards[0].events_processed, 0);
    }

    #[test]
    fn observer_sees_both_phases_in_order() {
        #[derive(Default)]
        struct Recorder {
            started: Vec<RunPhase>,
            finished: Vec<(RunPhase, u64)>,
        }
        impl RunObserver for Recorder {
            fn phase_started(&mut self, phase: RunPhase) {
                self.started.push(phase);
            }
            fn phase_finished(&mut self, phase: RunPhase, stats: &DrainStats) {
                self.finished.push((phase, stats.scheduled));
            }
        }
        let mut rec = Recorder::default();
        Runtime::builder()
            .observer(&mut rec)
            .run(vec![ticker(0, 3), ticker(1, 7)])
            .expect("well-formed");
        assert_eq!(rec.started, vec![RunPhase::Active, RunPhase::IdleDrain]);
        assert_eq!(rec.finished.len(), 2);
        assert_eq!(rec.finished[0], (RunPhase::Active, 2));
    }

    #[test]
    fn driver_with_no_work_reports_empty() {
        let r = Runtime::builder()
            .run(vec![ticker(0, 0)])
            .expect("well-formed")
            .report;
        assert_eq!(r.completion, SimTime::ZERO);
        assert_eq!(r.shards[0].completion, None);
        assert_eq!(r.shards[0].events_processed, 0);
    }

    #[test]
    fn boxed_drivers_run_on_the_same_loop() {
        let drivers: Vec<Box<dyn ProtocolDriver>> =
            vec![Box::new(ticker(0, 2)), Box::new(ticker(1, 4))];
        let outcome = Runtime::builder().run(drivers).expect("well-formed");
        assert_eq!(outcome.report.total_txs(), 6);
    }

    /// Regression: a malformed event stream (driver claims unfinished
    /// work but schedules nothing) is a typed `Err`, not a panic.
    #[test]
    fn stalled_driver_returns_err() {
        struct Stalled;
        impl ProtocolDriver for Stalled {
            fn on_start(&mut self, _: &mut Ctx) {}
            fn on_event(&mut self, _: SimTime, _: Event, _: &mut Ctx) -> Result<(), Error> {
                Ok(())
            }
            fn done(&self) -> bool {
                false
            }
            fn completion(&self) -> Option<SimTime> {
                None
            }
            fn report(&self, _: usize, _: Duration) -> ShardReport {
                unreachable!("a stalled driver never reports")
            }
        }
        let err = Runtime::builder().run(vec![Stalled]).unwrap_err();
        assert_eq!(
            err,
            Error::StalledDriver {
                index: 0,
                at: SimTime::ZERO,
                last_event: None,
            }
        );
        assert!(err.to_string().contains("no further events"));
        assert!(err.to_string().contains("no event was ever handled"));
    }

    /// Regression: a stall after some progress reports the simulated time
    /// at which the queue drained and the event at the head of the queue
    /// when the stall began (the last one handled) — the payload is no
    /// longer an opaque index.
    #[test]
    fn stall_error_carries_sim_time_and_head_event() {
        struct DiesAfterOne {
            handled: usize,
        }
        impl ProtocolDriver for DiesAfterOne {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.schedule(SimTime::from_millis(250), Event::BlockFound { miner: 4 });
            }
            fn on_event(&mut self, _: SimTime, _: Event, _: &mut Ctx) -> Result<(), Error> {
                self.handled += 1; // handles the tick but never reschedules
                Ok(())
            }
            fn done(&self) -> bool {
                false // claims unfinished work forever
            }
            fn completion(&self) -> Option<SimTime> {
                None
            }
            fn report(&self, _: usize, _: Duration) -> ShardReport {
                unreachable!("a stalled driver never reports")
            }
        }
        let err = Runtime::builder()
            .run(vec![DiesAfterOne { handled: 0 }])
            .unwrap_err();
        let Error::StalledDriver {
            index,
            at,
            last_event,
        } = &err
        else {
            panic!("expected StalledDriver, got {err:?}");
        };
        assert_eq!(*index, 0);
        assert_eq!(*at, SimTime::from_millis(250));
        assert_eq!(last_event.as_deref(), Some("BlockFound { miner: 4 }"));
        // And the Display form surfaces both for humans.
        assert!(err.to_string().contains("t=0.250s"), "{err}");
        assert!(err.to_string().contains("BlockFound"), "{err}");
    }

    /// The outcome returns the finished drivers in input order, with the
    /// same report the plain run would produce.
    #[test]
    fn outcome_returns_drivers_in_order() {
        let outcome = Runtime::builder()
            .run(vec![ticker(0, 3), ticker(1, 7)])
            .expect("well-formed");
        assert_eq!(outcome.drivers.len(), 2);
        assert_eq!(outcome.drivers[0].shard, ShardId::new(0));
        assert_eq!(outcome.drivers[1].shard, ShardId::new(1));
        assert!(outcome.drivers.iter().all(|d| d.remaining == 0));
        assert_eq!(outcome.report.completion, SimTime::from_millis(70));
    }

    /// Regression: a driver rejecting an event it never schedules aborts
    /// the run with `Error::UnexpectedEvent` instead of panicking.
    #[test]
    fn rejected_event_propagates_as_err() {
        struct Rejects {
            fired: bool,
        }
        impl ProtocolDriver for Rejects {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.schedule(SimTime::from_millis(1), Event::EpochAdvance { epoch: 7 });
            }
            fn on_event(&mut self, _: SimTime, ev: Event, _: &mut Ctx) -> Result<(), Error> {
                self.fired = true;
                Err(Error::UnexpectedEvent {
                    driver: "Rejects",
                    event: format!("{ev:?}"),
                })
            }
            fn done(&self) -> bool {
                self.fired
            }
            fn completion(&self) -> Option<SimTime> {
                None
            }
            fn report(&self, _: usize, _: Duration) -> ShardReport {
                unreachable!("an erroring driver never reports")
            }
        }
        let err = Runtime::builder()
            .run(vec![Rejects { fired: false }])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnexpectedEvent {
                driver: "Rejects",
                ..
            }
        ));
    }
}
