//! The two-phase run harness: one driver per shard on the executor.

use crate::driver::{Ctx, ProtocolDriver};
use crate::event::Event;
use crate::report::RunReport;
use cshard_network::CommStats;
use cshard_primitives::{Error, SimTime};
use cshard_sim::{EventQueue, Executor};
// Wall-clock reads are confined to this harness by design (audit rule
// ND001 allowlists exactly this file): `wall` feeds only the diagnostic
// fields of the report, never the simulation.
use std::time::{Duration, Instant};

/// One driver mid-run: its queue, its state, and the harness-side
/// accounting the driver itself is not allowed to touch.
struct DriverTask<D> {
    driver: D,
    queue: EventQueue<Event>,
    events: usize,
    wall: Duration,
}

/// Runs a set of [`ProtocolDriver`]s to completion and reports.
///
/// Drivers are independent simulation tasks: each owns its event queue
/// and (by the driver contract) derives randomness from its own seeded
/// streams, so the executor may run them on any number of threads with
/// bit-identical results. The run has two phases, exactly as the
/// pre-refactor simulator had:
///
/// 1. **Active** — each driver runs until [`ProtocolDriver::done`]; the
///    driver finishing last sets the run's global completion time.
/// 2. **Idle drain** — drivers that finished early replay their pending
///    events strictly before the global completion time, so idle-mining
///    (empty/stale block) accounting matches a fully serialized run.
///
/// All host wall-clock reads happen here, around the driver hooks —
/// drivers themselves are replayable pure functions of their event
/// streams, and `wall` feeds only the diagnostic fields of the report.
pub struct Runtime {
    executor: Executor,
    comm: CommStats,
}

impl Runtime {
    /// A runtime over `threads` workers (`0` = one per core, `1` =
    /// inline/sequential) with a fresh communication counter.
    pub fn new(threads: usize) -> Self {
        Runtime {
            executor: Executor::new(threads),
            comm: CommStats::new(),
        }
    }

    /// Uses an existing communication counter, so callers can read the
    /// messaging a run emitted (Fig. 4(b)) or pool several runs.
    pub fn with_comm(threads: usize, comm: CommStats) -> Self {
        Runtime {
            executor: Executor::new(threads),
            comm,
        }
    }

    /// The run-wide communication counter drivers record into.
    pub fn comm(&self) -> &CommStats {
        &self.comm
    }

    /// Runs every driver to completion (two phases) and reports. The
    /// shard order of the report matches the driver order given here.
    ///
    /// Errors when a driver's event stream is malformed: the driver
    /// reports unfinished work with an empty queue
    /// ([`Error::StalledDriver`], whose payload carries the stall's
    /// simulated time and the last event handled) or an `on_event` hook
    /// rejects an event ([`Error::UnexpectedEvent`]). The event loop
    /// itself never panics.
    pub fn run<D: ProtocolDriver>(&self, drivers: Vec<D>) -> Result<RunReport, Error> {
        self.run_drivers(drivers).map(|(report, _)| report)
    }

    /// Like [`Runtime::run`], but also hands the finished drivers back in
    /// their original order. Wrappers that accumulate extra per-shard
    /// state during the run — the fault-injection layer's `FaultyDriver`
    /// is the canonical case — read it out of the returned drivers after
    /// the run completes; [`crate::report::ShardReport`] stays exactly the
    /// fingerprinted surface it always was.
    pub fn run_drivers<D: ProtocolDriver>(
        &self,
        drivers: Vec<D>,
    ) -> Result<(RunReport, Vec<D>), Error> {
        let run_start = Instant::now();
        let comm = &self.comm;

        // Phase 1: each driver to local completion, concurrently.
        let tasks: Vec<Result<DriverTask<D>, Error>> =
            self.executor.run(drivers, |index, mut driver| {
                let start = Instant::now();
                let mut queue = EventQueue::new();
                driver.on_start(&mut Ctx::new(&mut queue, comm));
                let mut events = 0;
                let mut last_event: Option<Event> = None;
                while !driver.done() {
                    let Some((now, ev)) = queue.pop() else {
                        // The queue drained with work outstanding: surface
                        // where the stream died — the drain time and the
                        // event at the head of the queue when the stall
                        // began (the last one handled).
                        return Err(Error::StalledDriver {
                            index,
                            at: queue.now(),
                            last_event: last_event.map(|ev| format!("{ev:?}")),
                        });
                    };
                    events += 1;
                    last_event = Some(ev);
                    driver.on_event(now, ev, &mut Ctx::new(&mut queue, comm))?;
                }
                Ok(DriverTask {
                    driver,
                    queue,
                    events,
                    wall: start.elapsed(),
                })
            });
        let tasks: Vec<DriverTask<D>> = tasks.into_iter().collect::<Result<_, _>>()?;

        // Global completion = the last confirmation anywhere.
        let completion = tasks
            .iter()
            .filter_map(|t| t.driver.completion())
            .max()
            .unwrap_or(SimTime::ZERO);

        // Phase 2: idle-drain early finishers up to the global completion.
        let tasks: Vec<Result<DriverTask<D>, Error>> = self.executor.run(tasks, |_, mut t| {
            let start = Instant::now();
            while t.queue.next_time().is_some_and(|at| at < completion) {
                let Some((now, ev)) = t.queue.pop() else {
                    break; // next_time() said Some; drained means done
                };
                t.events += 1;
                t.driver
                    .on_event(now, ev, &mut Ctx::new(&mut t.queue, comm))?;
            }
            t.wall += start.elapsed();
            Ok(t)
        });
        let tasks: Vec<DriverTask<D>> = tasks.into_iter().collect::<Result<_, _>>()?;

        let mut drivers = Vec::with_capacity(tasks.len());
        let mut shards = Vec::with_capacity(tasks.len());
        for t in tasks {
            shards.push(t.driver.report(t.events, t.wall));
            drivers.push(t.driver);
        }
        Ok((
            RunReport {
                completion,
                shards,
                wall: run_start.elapsed(),
                threads_used: self.executor.threads(),
            },
            drivers,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ShardReport;
    use cshard_primitives::ShardId;

    /// A driver that confirms one "transaction" per tick, `n` ticks.
    struct Ticker {
        shard: ShardId,
        remaining: usize,
        total: usize,
        last: Option<SimTime>,
    }

    impl ProtocolDriver for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if self.remaining > 0 {
                ctx.schedule(SimTime::from_millis(10), Event::BlockFound { miner: 0 });
            }
        }
        fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
            assert_eq!(ev, Event::BlockFound { miner: 0 });
            self.remaining -= 1;
            self.last = Some(t);
            if self.remaining > 0 {
                ctx.schedule_in(SimTime::from_millis(10), ev);
            }
            Ok(())
        }
        fn done(&self) -> bool {
            self.remaining == 0
        }
        fn completion(&self) -> Option<SimTime> {
            self.last
        }
        fn report(&self, events: usize, wall: Duration) -> ShardReport {
            ShardReport {
                shard: self.shard,
                txs: self.total,
                confirmed: self.total - self.remaining,
                completion: self.last,
                blocks: events,
                empty_blocks: 0,
                stale_blocks: 0,
                events_processed: events,
                wall,
            }
        }
    }

    fn ticker(shard: u32, n: usize) -> Ticker {
        Ticker {
            shard: ShardId::new(shard),
            remaining: n,
            total: n,
            last: None,
        }
    }

    #[test]
    fn runs_all_drivers_and_takes_max_completion() {
        let rt = Runtime::new(1);
        let r = rt
            .run(vec![ticker(0, 3), ticker(1, 7)])
            .expect("well-formed");
        assert_eq!(r.completion, SimTime::from_millis(70));
        assert_eq!(r.shards[0].confirmed, 3);
        assert_eq!(r.shards[1].confirmed, 7);
        assert_eq!(r.total_txs(), 10);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = || vec![ticker(0, 5), ticker(1, 2), ticker(2, 9)];
        let seq = Runtime::new(1).run(mk()).expect("well-formed");
        let par = Runtime::new(4).run(mk()).expect("well-formed");
        assert_eq!(seq.fingerprint(), par.fingerprint());
    }

    #[test]
    fn driver_with_no_work_reports_empty() {
        let r = Runtime::new(1)
            .run(vec![ticker(0, 0)])
            .expect("well-formed");
        assert_eq!(r.completion, SimTime::ZERO);
        assert_eq!(r.shards[0].completion, None);
        assert_eq!(r.shards[0].events_processed, 0);
    }

    #[test]
    fn boxed_drivers_run_on_the_same_loop() {
        let drivers: Vec<Box<dyn ProtocolDriver>> =
            vec![Box::new(ticker(0, 2)), Box::new(ticker(1, 4))];
        let r = Runtime::new(1).run(drivers).expect("well-formed");
        assert_eq!(r.total_txs(), 6);
    }

    /// Regression: a malformed event stream (driver claims unfinished
    /// work but schedules nothing) is a typed `Err`, not a panic.
    #[test]
    fn stalled_driver_returns_err() {
        struct Stalled;
        impl ProtocolDriver for Stalled {
            fn on_start(&mut self, _: &mut Ctx) {}
            fn on_event(&mut self, _: SimTime, _: Event, _: &mut Ctx) -> Result<(), Error> {
                Ok(())
            }
            fn done(&self) -> bool {
                false
            }
            fn completion(&self) -> Option<SimTime> {
                None
            }
            fn report(&self, _: usize, _: Duration) -> ShardReport {
                unreachable!("a stalled driver never reports")
            }
        }
        let err = Runtime::new(1).run(vec![Stalled]).unwrap_err();
        assert_eq!(
            err,
            Error::StalledDriver {
                index: 0,
                at: SimTime::ZERO,
                last_event: None,
            }
        );
        assert!(err.to_string().contains("no further events"));
        assert!(err.to_string().contains("no event was ever handled"));
    }

    /// Regression: a stall after some progress reports the simulated time
    /// at which the queue drained and the event at the head of the queue
    /// when the stall began (the last one handled) — the payload is no
    /// longer an opaque index.
    #[test]
    fn stall_error_carries_sim_time_and_head_event() {
        struct DiesAfterOne {
            handled: usize,
        }
        impl ProtocolDriver for DiesAfterOne {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.schedule(SimTime::from_millis(250), Event::BlockFound { miner: 4 });
            }
            fn on_event(&mut self, _: SimTime, _: Event, _: &mut Ctx) -> Result<(), Error> {
                self.handled += 1; // handles the tick but never reschedules
                Ok(())
            }
            fn done(&self) -> bool {
                false // claims unfinished work forever
            }
            fn completion(&self) -> Option<SimTime> {
                None
            }
            fn report(&self, _: usize, _: Duration) -> ShardReport {
                unreachable!("a stalled driver never reports")
            }
        }
        let err = Runtime::new(1)
            .run(vec![DiesAfterOne { handled: 0 }])
            .unwrap_err();
        let Error::StalledDriver {
            index,
            at,
            last_event,
        } = &err
        else {
            panic!("expected StalledDriver, got {err:?}");
        };
        assert_eq!(*index, 0);
        assert_eq!(*at, SimTime::from_millis(250));
        assert_eq!(last_event.as_deref(), Some("BlockFound { miner: 4 }"));
        // And the Display form surfaces both for humans.
        assert!(err.to_string().contains("t=0.250s"), "{err}");
        assert!(err.to_string().contains("BlockFound"), "{err}");
    }

    /// `run_drivers` returns the finished drivers in input order, with the
    /// same report `run` would produce.
    #[test]
    fn run_drivers_returns_drivers_in_order() {
        let rt = Runtime::new(1);
        let (report, drivers) = rt
            .run_drivers(vec![ticker(0, 3), ticker(1, 7)])
            .expect("well-formed");
        assert_eq!(drivers.len(), 2);
        assert_eq!(drivers[0].shard, ShardId::new(0));
        assert_eq!(drivers[1].shard, ShardId::new(1));
        assert!(drivers.iter().all(|d| d.remaining == 0));
        assert_eq!(report.completion, SimTime::from_millis(70));
    }

    /// Regression: a driver rejecting an event it never schedules aborts
    /// the run with `Error::UnexpectedEvent` instead of panicking.
    #[test]
    fn rejected_event_propagates_as_err() {
        struct Rejects {
            fired: bool,
        }
        impl ProtocolDriver for Rejects {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.schedule(SimTime::from_millis(1), Event::EpochAdvance { epoch: 7 });
            }
            fn on_event(&mut self, _: SimTime, ev: Event, _: &mut Ctx) -> Result<(), Error> {
                self.fired = true;
                Err(Error::UnexpectedEvent {
                    driver: "Rejects",
                    event: format!("{ev:?}"),
                })
            }
            fn done(&self) -> bool {
                self.fired
            }
            fn completion(&self) -> Option<SimTime> {
                None
            }
            fn report(&self, _: usize, _: Duration) -> ShardReport {
                unreachable!("an erroring driver never reports")
            }
        }
        let err = Runtime::new(1)
            .run(vec![Rejects { fired: false }])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnexpectedEvent {
                driver: "Rejects",
                ..
            }
        ));
    }
}
