//! The settling shard driver: batched cross-shard settlement layered on
//! the contract-centric shard.
//!
//! [`SettlingShardDriver`] wraps a [`ContractShardDriver`] and attaches a
//! set of outbound cross-shard transfers to its local transactions. When
//! a transaction confirms, its transfers become eligible and are handed
//! to a [`cshard_settle::SettlementBatcher`]; instead of one message per
//! transfer, the shard books one [`cshard_network::CommKind::Crosslink`]
//! per flushed batch. Flush deadlines are ordinary simulation events
//! ([`Event::SettlementFlush`]) on the shard's own queue — no wall clock,
//! no background thread — so batched runs remain bit-identical across
//! thread counts (ND001).
//!
//! Exactly-once settlement is the batcher's stale-deadline rule: a flush
//! event settles a batch only when its timestamp matches the recorded
//! deadline, so cap-flushes and blackout deferrals supersede older events
//! rather than double-settling. The wrapper's own contribution is the
//! eligibility scan: a transfer is submitted the first time its
//! transaction is observed confirmed, and the `submitted` flags make the
//! scan idempotent across events.

use crate::contract::{ContractShardDriver, RuntimeConfig, ShardSpec};
use crate::driver::{Ctx, ProtocolDriver};
use crate::event::Event;
use crate::report::ShardReport;
use cshard_network::CommKind;
use cshard_primitives::{Error, ShardId, SimTime};
use cshard_settle::{Batch, FlushOutcome, SettleStats, SettlementBatcher, Submit};
use std::time::Duration;

/// One shard of the contract-centric scheme with batched cross-shard
/// settlement. See the module docs for the lifecycle.
pub struct SettlingShardDriver {
    inner: ContractShardDriver,
    batcher: SettlementBatcher,
    /// Outbound transfers: `(local tx index, destination shard)`. The
    /// slot index is the transfer id the batcher carries in its batches.
    transfers: Vec<(usize, ShardId)>,
    /// Idempotence flags for the eligibility scan.
    submitted: Vec<bool>,
    /// Every batch this shard settled, in flush order (slot-deterministic;
    /// the exactly-once tests read this back out of the run outcome).
    settled: Vec<Batch>,
}

impl SettlingShardDriver {
    /// Wraps one shard spec with outbound `transfers` under `config`
    /// (whose [`RuntimeConfig::settle`] governs batching; a disabled
    /// settle config degrades to one crosslink per transfer — the
    /// unbatched ledger the experiments use as baseline).
    ///
    /// # Panics
    /// Panics when the spec assigns no miners or a transfer references a
    /// transaction the shard does not have.
    pub fn new(
        spec: &ShardSpec,
        config: &RuntimeConfig,
        transfers: Vec<(usize, ShardId)>,
    ) -> SettlingShardDriver {
        for &(tx, _) in &transfers {
            assert!(
                tx < spec.fees.len(),
                "transfer references tx {tx} outside shard {} ({} txs)",
                spec.shard,
                spec.fees.len()
            );
        }
        let submitted = vec![false; transfers.len()];
        SettlingShardDriver {
            inner: ContractShardDriver::new(spec, config),
            batcher: SettlementBatcher::new(spec.shard, &config.settle),
            transfers,
            submitted,
            settled: Vec::new(),
        }
    }

    /// Installs partition blackout windows for the pair toward `dest`
    /// (half-open `[from, until)`); flushes falling inside defer to the
    /// heal. The fault harness derives these from its plan's partitions
    /// of either endpoint.
    pub fn set_blackouts(&mut self, dest: ShardId, windows: Vec<(SimTime, SimTime)>) {
        self.batcher.set_blackouts(dest, windows);
    }

    /// Every batch settled so far, in flush order.
    pub fn settled_batches(&self) -> &[Batch] {
        &self.settled
    }

    /// The outbound transfer table, slot-indexed as the batch ids are.
    pub fn transfers(&self) -> &[(usize, ShardId)] {
        &self.transfers
    }

    /// The wrapped contract-shard driver.
    pub fn inner(&self) -> &ContractShardDriver {
        &self.inner
    }

    /// Force-flushes the open batch toward `dest` right now and ships it
    /// (one crosslink), returning how many transfers it carried — the
    /// migration drain path: before an account's routing moves, the pairs
    /// its transfers occupy are emptied so nothing settles under a stale
    /// key. The batcher clears the pair's deadline, so any armed flush
    /// event goes stale rather than double-settling.
    pub fn drain_pair(&mut self, now: SimTime, dest: ShardId, ctx: &mut Ctx) -> usize {
        match self.batcher.drain(now, dest) {
            Some(batch) => {
                let n = batch.transfers.len();
                self.ship(batch, ctx);
                n
            }
            None => 0,
        }
    }

    /// Re-keys every not-yet-submitted transfer in `slots` to destination
    /// `to`, returning how many actually changed. Submitted transfers are
    /// already in (or past) a batch and are left alone — draining the
    /// open pairs first is the caller's job.
    pub fn rekey_transfers(&mut self, slots: &[usize], to: ShardId) -> usize {
        let mut changed = 0;
        for &slot in slots {
            if self.submitted.get(slot).copied().unwrap_or(true) {
                continue;
            }
            if let Some(entry) = self.transfers.get_mut(slot) {
                if entry.1 != to {
                    entry.1 = to;
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Books one crosslink for a flushed batch and logs it.
    fn ship(&mut self, batch: Batch, ctx: &mut Ctx) {
        ctx.comm()
            .record(self.batcher.source(), CommKind::Crosslink);
        self.settled.push(batch);
    }

    /// Submits every transfer whose transaction has confirmed since the
    /// last scan. Slot order makes submission order — and therefore batch
    /// contents — a pure function of the confirmation trajectory.
    fn sync(&mut self, now: SimTime, ctx: &mut Ctx) {
        for slot in 0..self.transfers.len() {
            if self.submitted[slot] {
                continue;
            }
            let (tx, dest) = self.transfers[slot];
            if !self.inner.is_confirmed(tx) {
                continue;
            }
            self.submitted[slot] = true;
            match self.batcher.submit(now, dest, slot as u64) {
                Submit::Queued => {}
                Submit::Arm(at) => ctx.schedule(at, Event::SettlementFlush { dest }),
                Submit::Flushed(batch) => self.ship(batch, ctx),
            }
        }
    }
}

impl ProtocolDriver for SettlingShardDriver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx);
    }

    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        if let Event::SettlementFlush { dest } = ev {
            match self.batcher.on_flush(t, dest) {
                FlushOutcome::Stale => {}
                FlushOutcome::Deferred(at) => ctx.schedule(at, Event::SettlementFlush { dest }),
                FlushOutcome::Flushed(batch) => self.ship(batch, ctx),
            }
            return Ok(());
        }
        self.inner.on_event(t, ev, ctx)?;
        self.sync(t, ctx);
        Ok(())
    }

    fn done(&self) -> bool {
        // Phase 1 must outlive the last flush: pending transfers always
        // hold an armed deadline event (batcher invariant), so this never
        // stalls the harness.
        self.inner.done() && self.batcher.is_empty()
    }

    fn completion(&self) -> Option<SimTime> {
        self.inner.completion()
    }

    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        self.inner.report(events, wall)
    }

    fn settle_stats(&self) -> Option<SettleStats> {
        Some(self.batcher.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Runtime;
    use cshard_settle::SettleConfig;

    fn spec(shard: u32, txs: usize) -> ShardSpec {
        ShardSpec::solo_greedy(ShardId::new(shard), (1..=txs as u64).collect())
    }

    fn config(settle: SettleConfig) -> RuntimeConfig {
        RuntimeConfig {
            seed: 11,
            settle,
            ..RuntimeConfig::default()
        }
    }

    /// All transfers of shard 0 toward `dest`, one per tx.
    fn fan(txs: usize, dest: u32) -> Vec<(usize, ShardId)> {
        (0..txs).map(|tx| (tx, ShardId::new(dest))).collect()
    }

    fn run(
        settle: SettleConfig,
        transfers: Vec<(usize, ShardId)>,
        threads: usize,
    ) -> crate::harness::RunOutcome<SettlingShardDriver> {
        let cfg = config(settle);
        let drivers = vec![SettlingShardDriver::new(&spec(0, 30), &cfg, transfers)];
        Runtime::builder()
            .threads(threads)
            .run(drivers)
            .expect("well-formed")
    }

    #[test]
    fn every_transfer_settles_exactly_once() {
        let outcome = run(SettleConfig::batched(8), fan(30, 1), 1);
        let driver = &outcome.drivers[0];
        let mut seen: Vec<u64> = driver
            .settled_batches()
            .iter()
            .flat_map(|b| b.transfers.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<u64>>());
        assert_eq!(outcome.settle.txs_settled, 30);
        assert!(!outcome.settle.is_empty());
    }

    #[test]
    fn batching_books_one_crosslink_per_flush_not_per_transfer() {
        let batched = run(SettleConfig::batched(10), fan(30, 1), 1);
        let unbatched = run(SettleConfig::disabled(), fan(30, 1), 1);
        let b_links = batched.comm.for_kind(CommKind::Crosslink);
        let u_links = unbatched.comm.for_kind(CommKind::Crosslink);
        assert_eq!(u_links, 30, "cap 1 is the per-transfer ledger");
        assert_eq!(b_links, batched.settle.batches);
        assert!(
            b_links * 5 <= u_links,
            "cap 10 must cut messages at least 5x (got {b_links} vs {u_links})"
        );
        // The underlying confirmation trajectory is untouched by batching
        // (events_processed differs — flush events — so compare the
        // mining-visible fields, not the whole fingerprint).
        assert_eq!(batched.report.completion, unbatched.report.completion);
        let (b, u) = (&batched.report.shards[0], &unbatched.report.shards[0]);
        assert_eq!(
            (b.confirmed, b.blocks, b.completion),
            (u.confirmed, u.blocks, u.completion)
        );
    }

    #[test]
    fn disabled_config_matches_cap_one_tx_for_tx() {
        let disabled = run(SettleConfig::disabled(), fan(30, 2), 1);
        let cap_one = run(SettleConfig::batched(1), fan(30, 2), 1);
        assert_eq!(
            disabled.drivers[0].settled_batches(),
            cap_one.drivers[0].settled_batches()
        );
        assert_eq!(disabled.settle, cap_one.settle);
    }

    #[test]
    fn thread_count_does_not_change_settlement() {
        let base = run(SettleConfig::batched(7), fan(30, 1), 1);
        for threads in [4, 0] {
            let other = run(SettleConfig::batched(7), fan(30, 1), threads);
            assert_eq!(base.report.fingerprint(), other.report.fingerprint());
            assert_eq!(base.settle, other.settle);
            assert_eq!(
                base.drivers[0].settled_batches(),
                other.drivers[0].settled_batches()
            );
        }
    }

    #[test]
    fn multiple_destinations_batch_independently() {
        let transfers: Vec<(usize, ShardId)> = (0..30)
            .map(|tx| (tx, ShardId::new(1 + (tx as u32 % 3))))
            .collect();
        let outcome = run(SettleConfig::batched(100), transfers, 1);
        let driver = &outcome.drivers[0];
        for dest in 1..=3u32 {
            let toward: Vec<&Batch> = driver
                .settled_batches()
                .iter()
                .filter(|b| b.dest == ShardId::new(dest))
                .collect();
            assert!(!toward.is_empty());
            let n: usize = toward.iter().map(|b| b.transfers.len()).sum();
            assert_eq!(n, 10);
        }
        // Cap 100 over 10 transfers per pair: only timeout flushes.
        assert_eq!(outcome.settle.cap_flushes, 0);
        assert!(outcome.settle.timeout_flushes >= 3);
    }

    #[test]
    fn blackout_defers_and_settles_exactly_once_at_the_heal() {
        let cfg = config(SettleConfig::batched(100));
        let mut driver = SettlingShardDriver::new(&cfg_spec(), &cfg, fan(30, 1));
        // Black out the pair well past every timeout deadline.
        driver.set_blackouts(
            ShardId::new(1),
            vec![(SimTime::ZERO, SimTime::from_secs(600))],
        );
        let outcome = Runtime::builder().run(vec![driver]).expect("well-formed");
        let driver = &outcome.drivers[0];
        assert!(outcome.settle.deferred_flushes >= 1);
        let mut seen: Vec<u64> = driver
            .settled_batches()
            .iter()
            .flat_map(|b| b.transfers.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<u64>>());
        for b in driver.settled_batches() {
            assert!(
                b.at >= SimTime::from_secs(600),
                "no batch may flush inside the blackout (flushed at {})",
                b.at
            );
        }
        assert_eq!(
            outcome.comm.for_kind(CommKind::Crosslink),
            outcome.settle.batches
        );
    }

    fn cfg_spec() -> ShardSpec {
        spec(0, 30)
    }

    #[test]
    fn transfer_free_shard_settles_nothing() {
        let outcome = run(SettleConfig::batched(10), Vec::new(), 1);
        assert!(outcome.settle.is_empty());
        assert_eq!(outcome.comm.for_kind(CommKind::Crosslink), 0);
        assert_eq!(outcome.report.shards[0].confirmed, 30);
    }
}
