//! The typed event vocabulary shared by every protocol driver.

use cshard_primitives::ShardId;

/// One scheduled occurrence in a shard's simulation.
///
/// Every protocol in the repository — vanilla Ethereum, contract-centric
/// sharding, ChainSpace-style random sharding — is a state machine over
/// this one vocabulary. A driver only ever sees events it (or its
/// harness) scheduled on its own queue; indices are local to the driver
/// unless its documentation says otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A transaction enters the shard's unconfirmed queue. The golden
    /// experiment paths inject the whole workload at t = 0 without
    /// events (matching the paper's setup, where injection precedes the
    /// measured run); drivers that model staggered arrival — the
    /// ChainSpace 2PC pipeline — schedule these explicitly.
    TxInjected {
        /// Driver-scoped transaction index.
        tx: usize,
    },
    /// A miner of this shard solved a block (the Poisson process tick).
    BlockFound {
        /// Local miner index within the shard.
        miner: usize,
    },
    /// A previously found block finished propagating: its confirmations
    /// are now visible to every miner of the shard. Only scheduled under
    /// [`crate::PropagationModel::Latency`]; the legacy
    /// [`crate::PropagationModel::Window`] keeps visibility implicit in
    /// the conflict-window rule and schedules no delivery events (which
    /// is what keeps pre-refactor run fingerprints bit-identical).
    BlockDelivered {
        /// Local index of the miner whose block was delivered.
        origin: usize,
    },
    /// An epoch boundary (parameter unification broadcast, batch
    /// injection, …). The equilibrium selection game intentionally does
    /// *not* use this on the golden paths — epochs start lazily inside
    /// the `BlockFound` handler, as the pre-refactor simulator did.
    EpochAdvance {
        /// Monotone epoch counter.
        epoch: u64,
    },
    /// One round of cross-shard 2PC validation for a cross-shard
    /// transaction (S-BAC style: intra-shard consensus, then cross-shard
    /// accept). Scheduled by the ChainSpace driver; each round books one
    /// communication time into the run's `CommStats`.
    ValidationRound {
        /// Driver-scoped transaction index.
        tx: usize,
        /// 1-based round number, up to the protocol's round count.
        round: u32,
    },
    /// A settlement-batch flush deadline for one destination shard
    /// (`cshard-settle`): the batcher armed a size-or-timeout flush and
    /// the driver adjudicates it when it fires — flush, defer past a
    /// partition blackout, or ignore as stale. Scheduled only by
    /// settlement-enabled drivers; like every event, simulated time only
    /// (ND001).
    SettlementFlush {
        /// Destination shard of the batch whose deadline fired.
        dest: ShardId,
    },
    /// A scheduled hot-account migration reaches its apply time
    /// (`cshard-runtime`'s `MigratingShardDriver`): the account's open
    /// settlement pairs are drained, its unsubmitted transfers re-keyed
    /// to the new home shard, and the move booked as one crosslink.
    /// Staleness and blackout deferral follow the same deadline rules as
    /// [`Event::SettlementFlush`] — an event applies its ticket only when
    /// its timestamp matches the recorded deadline, and a mid-partition
    /// apply re-arms at the heal instant.
    Migration {
        /// Index into the driver's migration schedule.
        slot: usize,
    },
    /// A fault-plan control point (crash, recovery, partition heal,
    /// deadline, …) fires. Scheduled and consumed exclusively by the
    /// fault-injection wrapper (`cshard-faults`); protocol drivers never
    /// see one — the wrapper intercepts its own control events before
    /// forwarding, so a `Fault` reaching a plain driver is a malformed
    /// stream and is rejected like any other foreign event.
    Fault {
        /// Index into the fault plan's action schedule (wrapper-scoped).
        action: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable_and_copy() {
        let a = Event::BlockFound { miner: 3 };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, Event::BlockFound { miner: 4 });
        assert_ne!(
            Event::ValidationRound { tx: 1, round: 1 },
            Event::ValidationRound { tx: 1, round: 2 }
        );
        assert_ne!(
            Event::SettlementFlush {
                dest: ShardId::new(1)
            },
            Event::SettlementFlush {
                dest: ShardId::new(2)
            }
        );
        assert_ne!(Event::Migration { slot: 0 }, Event::Migration { slot: 1 });
    }
}
