//! The contract-centric shard driver (and its degenerate single-chain
//! instance, vanilla Ethereum).
//!
//! This is the stand-in for the paper's nine-server go-Ethereum testbed.
//! Each shard runs an independent PoW chain; each miner finds blocks as a
//! Poisson process (mean one per minute in the Sec. VI-B1 calibration) and
//! fills them from the shard's unconfirmed queue according to a selection
//! strategy:
//!
//! * [`SelectionStrategy::IdenticalGreedy`] — every miner picks the same
//!   top-fee transactions (Sec. II-B). Progress serializes: a block found
//!   within the propagation/template window of an accepted block confirms
//!   the *same* set and is wasted ("stale"). This reproduces Table I's
//!   plateau and is the Ethereum baseline of every comparison.
//! * [`SelectionStrategy::Equilibrium`] — miners play Algorithm 2 per
//!   epoch: the leader's unified parameters assign each miner a distinct
//!   (at equilibrium) transaction set; disjoint blocks commute, so miners
//!   of one shard confirm in parallel. Epochs advance when the previous
//!   assignment is fully confirmed, matching the per-epoch broadcast of
//!   parameter unification.
//!
//! A miner whose visible queue is empty still mines — for the block reward
//! — producing the **empty blocks** that motivate inter-shard merging; they
//! are counted within the configured measurement window (the paper counts
//! over 212 s in Sec. VI-C1).
//!
//! Propagation is governed by the run's [`PropagationModel`]: the legacy
//! fixed conflict window (bit-identical to the pre-refactor simulator) or
//! explicit [`Event::BlockDelivered`] events drawn from the network's
//! latency model.

use crate::driver::{Ctx, ProtocolDriver};
use crate::event::Event;
use crate::harness::Runtime;
use crate::propagation::PropagationModel;
use crate::report::{RunReport, ShardReport};
use cshard_crypto::Prf;
use cshard_games::dynamics::{BestReplyDynamics, GameDynamics, SelectInput, SelectionWarmCache};
use cshard_games::selection::SelectionConfig;
use cshard_primitives::{Error, ShardId, SimTime};
use cshard_settle::SettleConfig;
use cshard_sim::{SchedulerConfig, SimRng};
use std::time::Duration;

/// How miners of a shard pick transactions.
#[derive(Clone, Debug)]
pub enum SelectionStrategy {
    /// Fee-greedy, identical at every miner (vanilla Ethereum, Sec. II-B).
    IdenticalGreedy,
    /// Best-reply congestion-game equilibrium per epoch (Algorithm 2).
    Equilibrium {
        /// The game's tunables (capacity is taken from the runtime's block
        /// capacity).
        max_rounds: usize,
    },
}

/// One shard's inputs to a run.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// The shard id (labels the report).
    pub shard: ShardId,
    /// Fee of each transaction in the shard (local indices).
    pub fees: Vec<u64>,
    /// Miners assigned to this shard.
    pub miners: usize,
    /// Selection behaviour.
    pub strategy: SelectionStrategy,
}

impl ShardSpec {
    /// A single-miner greedy shard — the common sharded-run configuration
    /// (the paper sets one miner per shard, Sec. VI-A).
    pub fn solo_greedy(shard: ShardId, fees: Vec<u64>) -> Self {
        ShardSpec {
            shard,
            fees,
            miners: 1,
            strategy: SelectionStrategy::IdenticalGreedy,
        }
    }
}

/// Global run parameters.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Transactions per block (the paper's gas limit admits 10).
    pub block_capacity: usize,
    /// Mean block interval per miner (Sec. VI-B1: 60 s; Sec. VI-B2 unifies
    /// confirmation at 76 tx/s instead).
    pub mean_block_interval: SimTime,
    /// How found blocks propagate to the shard's other miners.
    /// [`PropagationModel::Window`] is the legacy fixed conflict window
    /// (drives Table I's plateau; irrelevant for one-miner shards);
    /// [`PropagationModel::Latency`] materializes delivery as explicit
    /// [`Event::BlockDelivered`] events.
    pub propagation: PropagationModel,
    /// Count empty blocks only up to this time (Sec. VI-C1 counts over a
    /// fixed 212 s window). `None` counts until the run completes.
    pub empty_block_window: Option<SimTime>,
    /// RNG seed; identical seeds reproduce runs bit-for-bit.
    pub seed: u64,
    /// How the per-shard drivers are scheduled: worker count (`threads: 1`
    /// runs shard drivers inline, `0` uses one worker per available core)
    /// and per-turn event budget. Results are bit-identical across all
    /// settings — each shard's randomness is derived from `(seed, shard)`
    /// by a PRF, never from cross-shard draw order or worker interleaving.
    pub scheduler: SchedulerConfig,
    /// Cross-shard settlement batching (`cshard-settle`). Disabled by
    /// default; only drivers that opt into settlement (the settling
    /// wrapper, ChainSpace's batched mode) read it, so the golden paths
    /// are untouched.
    pub settle: SettleConfig,
}

impl RuntimeConfig {
    /// The effective conflict window: the configured window, or the
    /// latency model's worst-case delivery delay.
    pub fn conflict_window(&self) -> SimTime {
        self.propagation.conflict_window()
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            block_capacity: 10,
            mean_block_interval: SimTime::from_secs(60),
            // One block interval: after a confirmation, the network needs a
            // full template round before non-duplicate work lands (the
            // serialization the paper describes in Sec. II-B).
            propagation: PropagationModel::Window(SimTime::from_secs(60)),
            empty_block_window: None,
            seed: 0,
            scheduler: SchedulerConfig::sequential(),
            settle: SettleConfig::disabled(),
        }
    }
}

/// Iteration accounting of a shard's selection-game dynamics — how many
/// epochs were played, how many best-reply sweeps they cost, and how the
/// warm cache fared. Sim-clock-free counters (ND001): pure event-path
/// arithmetic, no wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectionDynamicsStats {
    /// Selection epochs started over the run.
    pub epochs: u64,
    /// Total best-reply sweeps across all epochs (including the final
    /// certification sweep of each).
    pub rounds: u64,
    /// Epochs seeded from a cached equilibrium (one certification sweep).
    pub warm_hits: u64,
    /// Epochs computed cold and stored for later reuse.
    pub warm_misses: u64,
}

struct ShardState {
    spec: ShardSpec,
    /// Confirmation time + author per local tx (None = unconfirmed).
    confirmed: Vec<Option<(SimTime, usize)>>,
    /// Delivery time per confirmed tx — when the confirming block has
    /// reached the whole shard. Only populated under delivery-scheduling
    /// models ([`PropagationModel::Latency`] /
    /// [`PropagationModel::Partition`]); the window model derives visibility
    /// from the confirmation time alone.
    visible_at: Vec<Option<SimTime>>,
    unconfirmed: usize,
    /// Greedy order (fee desc, index asc) with a monotone scan cursor.
    greedy_order: Vec<usize>,
    cursor: usize,
    /// Equilibrium epoch state.
    epoch_assignments: Vec<Vec<usize>>,
    epoch_unconfirmed: usize,
    epoch_counter: u64,
    /// Report accumulators.
    blocks: usize,
    empty_blocks: usize,
    stale_blocks: usize,
    last_confirmation: Option<SimTime>,
    /// Latest pending delivery horizon (latency propagation only).
    latest_visible: Option<SimTime>,
    /// Per-shard RNG stream for epoch initial choices.
    epoch_rng: SimRng,
    /// The selection game's dynamics, re-initialized per epoch so its
    /// scratch buffers persist across epochs (allocation-free after the
    /// first).
    dynamics: BestReplyDynamics,
    /// Cross-epoch equilibrium memo. `None` (the default) disables warm
    /// starts entirely — the cold path is untouched, which is what keeps
    /// the golden fingerprints byte-identical.
    warm_cache: Option<SelectionWarmCache>,
    /// Total best-reply sweeps across all epochs.
    game_rounds: u64,
}

impl ShardState {
    fn new(spec: ShardSpec, epoch_rng: SimRng) -> Self {
        let mut greedy_order: Vec<usize> = (0..spec.fees.len()).collect();
        greedy_order.sort_by(|&a, &b| spec.fees[b].cmp(&spec.fees[a]).then(a.cmp(&b)));
        let n = spec.fees.len();
        ShardState {
            confirmed: vec![None; n],
            visible_at: vec![None; n],
            unconfirmed: n,
            greedy_order,
            cursor: 0,
            epoch_assignments: Vec::new(),
            epoch_unconfirmed: 0,
            epoch_counter: 0,
            blocks: 0,
            empty_blocks: 0,
            stale_blocks: 0,
            last_confirmation: None,
            latest_visible: None,
            epoch_rng,
            dynamics: BestReplyDynamics::new(),
            warm_cache: None,
            game_rounds: 0,
            spec,
        }
    }

    /// Is `tx` part of what a miner at time `now` would still try to pack?
    /// Unconfirmed, or confirmed so recently (still propagating, by someone
    /// else) that the miner has not seen it yet.
    fn visible_unconfirmed(
        &self,
        tx: usize,
        now: SimTime,
        miner: usize,
        propagation: &PropagationModel,
    ) -> bool {
        match self.confirmed[tx] {
            None => true,
            Some((at, author)) => {
                if author == miner {
                    return false;
                }
                match propagation {
                    PropagationModel::Window(w) => now.saturating_since(at) < *w,
                    PropagationModel::Latency(_) | PropagationModel::Partition(_) => {
                        self.visible_at[tx].is_some_and(|v| now < v)
                    }
                }
            }
        }
    }

    /// Starts a new selection-game epoch over the currently unconfirmed
    /// transactions (Algorithm 2 under unified parameters).
    fn start_epoch(&mut self, capacity: usize, max_rounds: usize) {
        let remaining: Vec<usize> = (0..self.spec.fees.len())
            .filter(|&i| self.confirmed[i].is_none())
            .collect();
        self.epoch_counter += 1;
        if remaining.is_empty() {
            self.epoch_assignments = vec![Vec::new(); self.spec.miners];
            self.epoch_unconfirmed = 0;
            return;
        }
        let sub_fees: Vec<u64> = remaining.iter().map(|&i| self.spec.fees[i]).collect();
        let t = sub_fees.len();
        let cap = capacity.min(t);
        // Unified initial choices: a seeded stride per miner. Always
        // drawn — warm hit or miss — so the epoch stream's position is a
        // pure function of the epoch count and warm starts cannot shift
        // any later draw.
        let initial: Vec<Vec<usize>> = (0..self.spec.miners)
            .map(|m| {
                let offset = self.epoch_rng.below(t as u64) as usize;
                (0..cap).map(|k| (offset + k * 7 + m) % t).collect()
            })
            .collect();
        let sel_config = SelectionConfig {
            capacity: cap,
            max_rounds,
        };
        // Warm path: if this exact game (fees, initial sets, tunables)
        // was solved before, seed the dynamics at the cached equilibrium.
        // A Nash equilibrium of the identical game certifies in a single
        // sweep and reproduces the identical assignment — strictly fewer
        // sweeps, bit-identical outcome.
        let key = self
            .warm_cache
            .as_ref()
            .map(|_| SelectionWarmCache::key(&sub_fees, &initial, &sel_config));
        let mut warmed = false;
        if let (Some(cache), Some(k)) = (&mut self.warm_cache, &key) {
            if let Some(previous) = cache.lookup(k) {
                self.dynamics.init_warm(&sub_fees, previous, &sel_config);
                warmed = true;
            }
        }
        if !warmed {
            self.dynamics.init(SelectInput {
                fees: &sub_fees,
                initial: &initial,
                config: &sel_config,
            });
        }
        self.dynamics.run_to_convergence();
        let outcome = self.dynamics.solution();
        self.game_rounds += outcome.rounds as u64;
        if let (Some(cache), Some(k)) = (&mut self.warm_cache, key) {
            if !warmed {
                cache.store(k, outcome.assignments.clone());
            }
        }
        // Map sub-indices back to local tx indices.
        self.epoch_assignments = outcome
            .assignments
            .iter()
            .map(|set| set.iter().map(|&j| remaining[j]).collect())
            .collect();
        // Union size = number of covered (distinct) remaining txs.
        let mut covered = vec![false; t];
        for set in &outcome.assignments {
            for &j in set {
                covered[j] = true;
            }
        }
        self.epoch_unconfirmed = covered.iter().filter(|&&c| c).count();
    }
}

/// Derives one shard driver's root RNG stream as a pure function of
/// `(master seed, shard id)`, via the keyed PRF. No draw order is
/// involved, so shard drivers can be constructed and run in any order — or
/// concurrently — with bit-identical results, and a shard's stream does
/// not depend on which other shards share the run.
pub fn shard_stream(seed: u64, shard: ShardId) -> SimRng {
    let prf = Prf::new(seed.to_be_bytes());
    SimRng::from_seed_bytes(*prf.eval("shard-task-v1", shard.0.to_be_bytes()).as_bytes())
}

/// One shard of the contract-centric scheme as a [`ProtocolDriver`]: its
/// chain state and its miners' private RNG streams, driven by
/// [`Event::BlockFound`] ticks (plus [`Event::BlockDelivered`] under
/// latency propagation). The driver never reads another shard's state,
/// which is what makes the harness's executor safe.
pub struct ContractShardDriver {
    st: ShardState,
    miner_rngs: Vec<SimRng>,
    /// Delivery-delay stream, used only under latency propagation. Forked
    /// *after* the epoch and miner streams, so window-model trajectories
    /// are unchanged from the pre-refactor simulator.
    prop_rng: SimRng,
    config: RuntimeConfig,
    candidate: Vec<usize>,
}

impl ContractShardDriver {
    /// Builds the driver for one shard spec under `config`.
    ///
    /// # Panics
    /// Panics when the spec assigns no miners.
    pub fn new(spec: &ShardSpec, config: &RuntimeConfig) -> ContractShardDriver {
        assert!(spec.miners > 0, "shard {} has no miners", spec.shard);
        let mut root = shard_stream(config.seed, spec.shard);
        let epoch_rng = root.fork(0x4550_4F43); // "EPOC"
        let miner_rngs: Vec<SimRng> = (0..spec.miners as u64).map(|m| root.fork(m)).collect();
        let prop_rng = root.fork(0x5052_4F50); // "PROP"
        ContractShardDriver {
            st: ShardState::new(spec.clone(), epoch_rng),
            miner_rngs,
            prop_rng,
            candidate: Vec::with_capacity(config.block_capacity),
            config: config.clone(),
        }
    }

    /// Builds the driver with a cross-epoch [`SelectionWarmCache`]
    /// carried in from a previous run of the same shard.
    ///
    /// Warm starts never change what the driver computes — every epoch's
    /// initial choices are drawn from the same stream positions, and a
    /// cache hit seeds the dynamics at an equilibrium of the *identical*
    /// game, which certifies in one sweep to the identical assignment.
    /// Only the sweep counts in [`selection_stats`](Self::selection_stats)
    /// shrink.
    ///
    /// # Panics
    /// Panics when the spec assigns no miners.
    pub fn with_warm_cache(
        spec: &ShardSpec,
        config: &RuntimeConfig,
        cache: SelectionWarmCache,
    ) -> ContractShardDriver {
        let mut driver = ContractShardDriver::new(spec, config);
        driver.st.warm_cache = Some(cache);
        driver
    }

    /// Takes the warm cache back out after a run (to thread it into the
    /// next epoch's driver). `None` when the driver ran cold.
    pub fn into_warm_cache(self) -> Option<SelectionWarmCache> {
        self.st.warm_cache
    }

    /// Whether local transaction `tx` has been confirmed. Settlement
    /// wrappers poll this after each event to decide when a cross-shard
    /// transfer attached to `tx` becomes eligible for batching.
    pub fn is_confirmed(&self, tx: usize) -> bool {
        self.st.confirmed.get(tx).is_some_and(|c| c.is_some())
    }

    /// Iteration accounting of this shard's selection dynamics.
    pub fn selection_stats(&self) -> SelectionDynamicsStats {
        let (hits, misses) = self
            .st
            .warm_cache
            .as_ref()
            .map_or((0, 0), |c| (c.hits(), c.misses()));
        SelectionDynamicsStats {
            epochs: self.st.epoch_counter,
            rounds: self.st.game_rounds,
            warm_hits: hits,
            warm_misses: misses,
        }
    }

    /// Processes one block-found event: build the miner's candidate block,
    /// classify it (useful / empty / stale), apply confirmations, and (under
    /// latency propagation) emit the delivery event.
    fn on_block_found(&mut self, now: SimTime, miner: usize, ctx: &mut Ctx) {
        let st = &mut self.st;
        st.blocks += 1;

        // Build the miner's candidate block.
        self.candidate.clear();
        let mut contended_stale = false;
        match st.spec.strategy {
            SelectionStrategy::IdenticalGreedy => {
                // Identical selection serializes the network: after any
                // confirmation, every in-flight template of a *contended*
                // chain (more than one miner) references the just-confirmed
                // set, so blocks found while it still propagates are
                // duplicates — "transactions with the highest transaction
                // fees are likely to be confirmed first before the whole
                // network moves on to the next set" (Sec. II-B). A solo
                // miner refreshes its own template instantly and never
                // self-conflicts.
                contended_stale = st.spec.miners > 1
                    && st.unconfirmed > 0
                    && match &self.config.propagation {
                        PropagationModel::Window(w) => st
                            .last_confirmation
                            .is_some_and(|t0| now.saturating_since(t0) < *w),
                        PropagationModel::Latency(_) | PropagationModel::Partition(_) => {
                            st.latest_visible.is_some_and(|v| now < v)
                        }
                    };
                if !contended_stale {
                    // Advance the cursor past confirmed txs — monotone scan.
                    while st.cursor < st.greedy_order.len()
                        && st.confirmed[st.greedy_order[st.cursor]].is_some()
                    {
                        st.cursor += 1;
                    }
                    let mut pos = st.cursor;
                    while pos < st.greedy_order.len()
                        && self.candidate.len() < self.config.block_capacity
                    {
                        let tx = st.greedy_order[pos];
                        if st.confirmed[tx].is_none() {
                            self.candidate.push(tx);
                        }
                        pos += 1;
                    }
                }
            }
            SelectionStrategy::Equilibrium { max_rounds } => {
                if st.epoch_unconfirmed == 0 && st.unconfirmed > 0 {
                    st.start_epoch(self.config.block_capacity, max_rounds);
                }
                if !st.epoch_assignments.is_empty() {
                    for &tx in &st.epoch_assignments[miner] {
                        if self.candidate.len() >= self.config.block_capacity {
                            break;
                        }
                        if st.visible_unconfirmed(tx, now, miner, &self.config.propagation) {
                            self.candidate.push(tx);
                        }
                    }
                }
            }
        }

        // Classify the block and apply confirmations.
        let mut newly = 0;
        for &tx in self.candidate.iter() {
            if st.confirmed[tx].is_none() {
                st.confirmed[tx] = Some((now, miner));
                st.unconfirmed -= 1;
                st.last_confirmation = Some(now);
                newly += 1;
                if matches!(st.spec.strategy, SelectionStrategy::Equilibrium { .. }) {
                    st.epoch_unconfirmed = st.epoch_unconfirmed.saturating_sub(1);
                }
            }
        }
        if contended_stale {
            st.stale_blocks += 1;
        } else if self.candidate.is_empty() {
            let within = self.config.empty_block_window.is_none_or(|cap| now <= cap);
            if within {
                st.empty_blocks += 1;
            }
        } else if newly == 0 {
            st.stale_blocks += 1;
        }

        // Under network-backed propagation (latency or partition), a
        // confirming block's visibility is an explicit delivery event. The
        // RNG draw happens only when a delivery is materialized, so
        // window-model trajectories stay bit-identical to the pre-refactor
        // simulator.
        if newly > 0 && self.config.propagation.schedules_deliveries() {
            let u = self.prop_rng.unit();
            if let Some(delivered) = self.config.propagation.delivery_time(now, u) {
                for &tx in self.candidate.iter() {
                    if st.confirmed[tx] == Some((now, miner)) {
                        st.visible_at[tx] = Some(delivered);
                    }
                }
                st.latest_visible = Some(st.latest_visible.map_or(delivered, |v| v.max(delivered)));
                ctx.schedule(delivered, Event::BlockDelivered { origin: miner });
            }
        }
    }
}

impl ProtocolDriver for ContractShardDriver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (m, rng) in self.miner_rngs.iter_mut().enumerate() {
            let dt = rng.exp_delay(self.config.mean_block_interval);
            ctx.schedule(dt, Event::BlockFound { miner: m });
        }
    }

    fn on_event(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        match ev {
            Event::BlockFound { miner } => {
                self.on_block_found(now, miner, ctx);
                let dt = self.miner_rngs[miner].exp_delay(self.config.mean_block_interval);
                ctx.schedule_in(dt, Event::BlockFound { miner });
                Ok(())
            }
            Event::BlockDelivered { .. } => {
                // Visibility is time-keyed; once the latest delivery has
                // fired, clear the horizon so the stale check short-circuits.
                if self.st.latest_visible.is_some_and(|v| v <= now) {
                    self.st.latest_visible = None;
                }
                Ok(())
            }
            other => Err(Error::UnexpectedEvent {
                driver: "ContractShardDriver",
                event: format!("{other:?}"),
            }),
        }
    }

    fn done(&self) -> bool {
        self.st.unconfirmed == 0
    }

    fn completion(&self) -> Option<SimTime> {
        self.st.last_confirmation
    }

    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        ShardReport {
            shard: self.st.spec.shard,
            txs: self.st.spec.fees.len(),
            confirmed: self.st.spec.fees.len() - self.st.unconfirmed,
            completion: self.st.last_confirmation,
            blocks: self.st.blocks,
            empty_blocks: self.st.empty_blocks,
            stale_blocks: self.st.stale_blocks,
            events_processed: events,
            wall,
        }
    }
}

/// Vanilla Ethereum as a [`ProtocolDriver`]: the degenerate sharding where
/// nothing is separated, so the single chain is the
/// [`ShardId::MAX_SHARD`]. Because RNG streams are keyed by
/// `(seed, shard)`, this is bit-identical to a one-shard run of the full
/// system under the same configuration — there is no separate Ethereum
/// simulation loop anymore.
pub struct EthereumDriver {
    inner: ContractShardDriver,
}

impl EthereumDriver {
    /// All transactions on one chain, `miners` identical greedy miners
    /// (Sec. VI-A's benchmark).
    pub fn new(fees: Vec<u64>, miners: usize, config: &RuntimeConfig) -> EthereumDriver {
        let spec = ShardSpec {
            shard: ShardId::MAX_SHARD,
            fees,
            miners,
            strategy: SelectionStrategy::IdenticalGreedy,
        };
        EthereumDriver {
            inner: ContractShardDriver::new(&spec, config),
        }
    }
}

impl ProtocolDriver for EthereumDriver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx)
    }
    fn on_event(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        self.inner.on_event(now, ev, ctx)
    }
    fn done(&self) -> bool {
        self.inner.done()
    }
    fn completion(&self) -> Option<SimTime> {
        self.inner.completion()
    }
    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        self.inner.report(events, wall)
    }
}

/// Runs the simulation to completion (every injected transaction of every
/// shard confirmed) and reports.
///
/// Thin wrapper: builds one [`ContractShardDriver`] per spec and hands
/// them to [`Runtime::run`]. Shards are independent drivers — each derives
/// its randomness from `(config.seed, shard)` via a PRF and owns its event
/// queue, so the harness may run them on any number of threads
/// ([`RuntimeConfig::scheduler`]) and the report is bit-for-bit identical
/// to a sequential run.
///
/// Errors on an invalid configuration (zero [`RuntimeConfig::block_capacity`],
/// a minerless spec) or a malformed event stream, instead of panicking.
pub fn simulate(shards: &[ShardSpec], config: &RuntimeConfig) -> Result<RunReport, Error> {
    if config.block_capacity == 0 {
        return Err(Error::Config {
            field: "block_capacity",
            reason: "must be positive".into(),
        });
    }
    if let Some(spec) = shards.iter().find(|s| s.miners == 0) {
        return Err(Error::NoMiners { shard: spec.shard });
    }
    let drivers: Vec<ContractShardDriver> = shards
        .iter()
        .map(|spec| ContractShardDriver::new(spec, config))
        .collect();
    Runtime::builder()
        .scheduler(config.scheduler)
        .run(drivers)
        .map(|outcome| outcome.report)
}

/// Convenience: the Ethereum baseline — all transactions on one chain,
/// `miners` identical greedy miners (Sec. VI-A's benchmark). Thin wrapper
/// over [`EthereumDriver`] on the shared [`Runtime`].
pub fn simulate_ethereum(
    fees: Vec<u64>,
    miners: usize,
    config: &RuntimeConfig,
) -> Result<RunReport, Error> {
    if config.block_capacity == 0 {
        return Err(Error::Config {
            field: "block_capacity",
            reason: "must be positive".into(),
        });
    }
    let driver = EthereumDriver::new(fees, miners, config);
    Runtime::builder()
        .scheduler(config.scheduler)
        .run(vec![driver])
        .map(|outcome| outcome.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::throughput_improvement;
    use cshard_network::LatencyModel;

    // Shadow the fallible entry points: every config in this module is
    // well-formed, so the tests read as before the `Result` change.
    fn simulate(shards: &[ShardSpec], config: &RuntimeConfig) -> RunReport {
        super::simulate(shards, config).expect("valid test config")
    }

    fn simulate_ethereum(fees: Vec<u64>, miners: usize, config: &RuntimeConfig) -> RunReport {
        super::simulate_ethereum(fees, miners, config).expect("valid test config")
    }

    fn fees(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| 1 + (i * 17) % 97).collect()
    }

    fn cfg(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn single_miner_confirms_everything() {
        let r = simulate_ethereum(fees(20), 1, &cfg(1));
        assert_eq!(r.total_txs(), 20);
        assert_eq!(r.shards[0].confirmed, 20);
        assert!(r.completion > SimTime::ZERO);
        // 20 txs at capacity 10 → exactly 2 useful blocks; no empty ones
        // (the run stops at the last confirmation).
        assert_eq!(
            r.shards[0].blocks - r.shards[0].stale_blocks - r.shards[0].empty_blocks,
            2
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = simulate_ethereum(fees(50), 3, &cfg(7));
        let b = simulate_ethereum(fees(50), 3, &cfg(7));
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.total_blocks(), b.total_blocks());
        let c = simulate_ethereum(fees(50), 3, &cfg(8));
        assert_ne!(a.completion, c.completion);
    }

    #[test]
    fn table1_shape_more_miners_saturate() {
        // Average completion over seeds for 20 txs: 2 miners much slower
        // than 4; 4 → 7 roughly flat (the Table I plateau).
        let avg = |miners: usize| -> f64 {
            (0..200u64)
                .map(|s| {
                    simulate_ethereum(fees(20), miners, &cfg(s))
                        .completion
                        .as_secs_f64()
                })
                .sum::<f64>()
                / 200.0
        };
        let t2 = avg(2);
        let t4 = avg(4);
        let t7 = avg(7);
        assert!(t2 > t7, "t2={t2:.0} t7={t7:.0}: no initial gain");
        let plateau = (t4 - t7).abs() / t4;
        assert!(plateau < 0.20, "t4={t4:.0} t7={t7:.0} not a plateau");
    }

    #[test]
    fn greedy_duplicates_become_stale_blocks() {
        // Many fast miners on one queue: lots of duplicate selections.
        let mut total_stale = 0;
        for s in 0..10 {
            total_stale += simulate_ethereum(fees(30), 8, &cfg(s)).total_stale_blocks();
        }
        assert!(total_stale > 0, "8 racing miners must waste some blocks");
    }

    #[test]
    fn sharding_beats_single_chain() {
        // 9 shards × 22 txs in parallel vs 198 txs on one chain.
        let shard_specs: Vec<ShardSpec> = (0..9)
            .map(|i| ShardSpec::solo_greedy(ShardId::new(i), fees(22)))
            .collect();
        let sharded = simulate(&shard_specs, &cfg(3));
        // The Ethereum benchmark is the one-chain instance: the paper's
        // improvement curve is anchored at 1.0 for a single shard, and
        // Table I shows extra miners do not speed the single chain up.
        let ethereum = simulate_ethereum(fees(198), 1, &cfg(3));
        let imp = throughput_improvement(&ethereum, &sharded);
        assert!(imp > 2.5, "improvement {imp:.2} too small");
        assert_eq!(sharded.total_txs(), 198);
        assert!(sharded.shards.iter().all(|s| s.confirmed == s.txs));
    }

    #[test]
    fn idle_shard_mines_empty_blocks_until_completion() {
        // A 2-tx shard next to a 60-tx shard idles for most of the run.
        let specs = vec![
            ShardSpec::solo_greedy(ShardId::new(0), fees(2)),
            ShardSpec::solo_greedy(ShardId::new(1), fees(60)),
        ];
        let mut empties = 0;
        for s in 0..10 {
            empties += simulate(&specs, &cfg(s)).shards[0].empty_blocks;
        }
        assert!(empties > 10, "small shard produced only {empties} empties");
    }

    #[test]
    fn empty_block_window_caps_counting() {
        let specs = vec![
            ShardSpec::solo_greedy(ShardId::new(0), fees(2)),
            ShardSpec::solo_greedy(ShardId::new(1), fees(60)),
        ];
        let uncapped = simulate(&specs, &cfg(4));
        let capped = simulate(
            &specs,
            &RuntimeConfig {
                empty_block_window: Some(SimTime::from_secs(120)),
                ..cfg(4)
            },
        );
        assert!(capped.shards[0].empty_blocks <= uncapped.shards[0].empty_blocks);
    }

    #[test]
    fn equilibrium_selection_outperforms_greedy_with_many_miners() {
        // Fig. 3(h): 200 txs, one shard, 9 miners.
        let f = fees(200);
        let greedy = ShardSpec {
            shard: ShardId::new(0),
            fees: f.clone(),
            miners: 9,
            strategy: SelectionStrategy::IdenticalGreedy,
        };
        let eq = ShardSpec {
            shard: ShardId::new(0),
            fees: f,
            miners: 9,
            strategy: SelectionStrategy::Equilibrium { max_rounds: 1000 },
        };
        let mut imp_sum = 0.0;
        for s in 0..6 {
            let g = simulate(std::slice::from_ref(&greedy), &cfg(s));
            let e = simulate(std::slice::from_ref(&eq), &cfg(s));
            assert_eq!(e.shards[0].confirmed, 200);
            imp_sum += throughput_improvement(&g, &e);
        }
        let avg = imp_sum / 6.0;
        assert!(avg > 1.5, "equilibrium improvement only {avg:.2}x");
    }

    #[test]
    fn equilibrium_with_one_miner_equals_greedy_scale() {
        // One miner: both strategies confirm capacity per block; completion
        // should be within noise of each other.
        let f = fees(50);
        let mk = |strategy| ShardSpec {
            shard: ShardId::new(0),
            fees: f.clone(),
            miners: 1,
            strategy,
        };
        let g = simulate(&[mk(SelectionStrategy::IdenticalGreedy)], &cfg(2));
        let e = simulate(
            &[mk(SelectionStrategy::Equilibrium { max_rounds: 100 })],
            &cfg(2),
        );
        assert_eq!(g.shards[0].confirmed, 50);
        assert_eq!(e.shards[0].confirmed, 50);
        let useful_g = g.shards[0].blocks - g.shards[0].empty_blocks - g.shards[0].stale_blocks;
        let useful_e = e.shards[0].blocks - e.shards[0].empty_blocks - e.shards[0].stale_blocks;
        assert_eq!(useful_g, 5);
        assert_eq!(useful_e, 5);
    }

    #[test]
    fn empty_shard_contributes_nothing_but_is_reported() {
        let specs = vec![
            ShardSpec::solo_greedy(ShardId::new(0), vec![]),
            ShardSpec::solo_greedy(ShardId::new(1), fees(5)),
        ];
        let r = simulate(&specs, &cfg(1));
        assert_eq!(r.shards[0].txs, 0);
        assert_eq!(r.shards[0].completion, None);
        assert_eq!(r.total_txs(), 5);
    }

    #[test]
    fn shard_without_miners_rejected() {
        let spec = ShardSpec {
            shard: ShardId::new(0),
            fees: fees(5),
            miners: 0,
            strategy: SelectionStrategy::IdenticalGreedy,
        };
        let err = super::simulate(&[spec], &cfg(0)).unwrap_err();
        assert_eq!(
            err,
            Error::NoMiners {
                shard: ShardId::new(0)
            }
        );
    }

    #[test]
    fn zero_block_capacity_rejected() {
        let bad = RuntimeConfig {
            block_capacity: 0,
            ..cfg(0)
        };
        let err = super::simulate_ethereum(fees(5), 1, &bad).unwrap_err();
        assert!(matches!(
            err,
            Error::Config {
                field: "block_capacity",
                ..
            }
        ));
    }

    // ---- latency propagation (new in the unified runtime) ----

    fn latency_cfg(seed: u64, model: LatencyModel) -> RuntimeConfig {
        RuntimeConfig {
            propagation: PropagationModel::Latency(model),
            seed,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn instant_latency_matches_zero_window_trajectory() {
        // With zero delivery delay nothing ever conflicts, exactly like a
        // zero conflict window; only the explicit delivery events differ.
        let zero_window = RuntimeConfig {
            propagation: PropagationModel::Window(SimTime::ZERO),
            ..cfg(5)
        };
        let w = simulate_ethereum(fees(40), 4, &zero_window);
        let l = simulate_ethereum(fees(40), 4, &latency_cfg(5, LatencyModel::INSTANT));
        assert_eq!(w.completion, l.completion);
        assert_eq!(w.shards[0].confirmed, l.shards[0].confirmed);
        assert_eq!(w.shards[0].blocks, l.shards[0].blocks);
        assert_eq!(w.shards[0].stale_blocks, l.shards[0].stale_blocks);
        // Latency mode materializes a delivery event per confirming block.
        assert!(l.shards[0].events_processed > w.shards[0].events_processed);
    }

    #[test]
    fn wide_area_latency_wastes_contended_blocks() {
        let mut stale = 0;
        for s in 0..10 {
            let r = simulate_ethereum(fees(30), 8, &latency_cfg(s, LatencyModel::wide_area()));
            assert_eq!(r.shards[0].confirmed, 30);
            stale += r.total_stale_blocks();
        }
        assert!(stale > 0, "slow propagation must waste contended blocks");
    }

    #[test]
    fn latency_runs_are_deterministic_and_seed_sensitive() {
        let model = LatencyModel::wide_area();
        let a = simulate_ethereum(fees(50), 3, &latency_cfg(7, model));
        let b = simulate_ethereum(fees(50), 3, &latency_cfg(7, model));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = simulate_ethereum(fees(50), 3, &latency_cfg(8, model));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn equilibrium_confirms_under_latency_propagation() {
        let spec = ShardSpec {
            shard: ShardId::new(0),
            fees: fees(60),
            miners: 5,
            strategy: SelectionStrategy::Equilibrium { max_rounds: 200 },
        };
        let r = simulate(&[spec], &latency_cfg(3, LatencyModel::wide_area()));
        assert_eq!(r.shards[0].confirmed, 60);
    }

    #[test]
    fn warm_cache_is_bit_invisible_and_saves_sweeps() {
        // Replaying the identical run with a warm cache must reproduce
        // the identical report — warm starts may only cut sweep counts.
        let spec = ShardSpec {
            shard: ShardId::new(0),
            fees: fees(60),
            miners: 5,
            strategy: SelectionStrategy::Equilibrium { max_rounds: 200 },
        };
        let config = cfg(3);
        let plain = simulate(std::slice::from_ref(&spec), &config);

        let cold = ContractShardDriver::with_warm_cache(&spec, &config, SelectionWarmCache::new());
        let outcome = Runtime::builder()
            .run(vec![cold])
            .expect("valid test config");
        let (cold_run, cold_done) = (outcome.report, outcome.drivers);
        assert_eq!(cold_run.fingerprint(), plain.fingerprint());
        let cold_stats = cold_done[0].selection_stats();
        assert_eq!(cold_stats.warm_hits, 0);
        assert!(cold_stats.epochs > 0);
        let cache = cold_done
            .into_iter()
            .next()
            .and_then(ContractShardDriver::into_warm_cache)
            .expect("cache was installed");
        assert_eq!(cache.len() as u64, cold_stats.warm_misses);

        let warm = ContractShardDriver::with_warm_cache(&spec, &config, cache);
        let outcome = Runtime::builder()
            .run(vec![warm])
            .expect("valid test config");
        let (warm_run, warm_done) = (outcome.report, outcome.drivers);
        let warm_stats = warm_done[0].selection_stats();
        // Bit-identical trajectory and report…
        assert_eq!(warm_run.fingerprint(), plain.fingerprint());
        assert_eq!(warm_stats.epochs, cold_stats.epochs);
        // …every epoch replays the identical game, so every lookup hits
        // (the cache counters carry over; cold hits were zero)…
        assert_eq!(warm_stats.warm_hits, cold_stats.epochs);
        assert_eq!(warm_stats.warm_misses, cold_stats.warm_misses);
        // …and each warm epoch is one certification sweep: strictly
        // fewer total sweeps than the cold run.
        assert!(
            warm_stats.rounds < cold_stats.rounds,
            "warm {} !< cold {}",
            warm_stats.rounds,
            cold_stats.rounds
        );
        assert_eq!(warm_stats.rounds, warm_stats.epochs);
    }
}
