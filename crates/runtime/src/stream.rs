//! Streaming transaction injection: a [`ProtocolDriver`] that feeds a
//! lazy `(SimTime, payload)` stream into the event loop one
//! [`Event::TxInjected`] at a time and accumulates per-epoch batches.
//!
//! The golden experiment paths inject a whole materialized workload at
//! t = 0 (matching the paper's setup, where injection precedes the
//! measured run). Million-user workloads cannot afford that: the batch
//! vector alone would dwarf the state being measured. [`StreamDriver`]
//! instead keeps exactly **one transaction in flight** — the next
//! arrival is pulled from the iterator only when the previous injection
//! event fires — so the driver's live footprint is O(1) in the length of
//! the stream, and the only growing state is the sealed per-epoch
//! batches the caller asked it to collect.
//!
//! Epoch boundaries are derived from arrival timestamps, not from extra
//! control events: an arrival at time `t` belongs to epoch
//! `t / interval`, and crossing a boundary seals the previous batch.
//! This keeps the event stream minimal (one event per transaction) and
//! makes batch contents a pure function of the stream — independent of
//! scheduler interleaving, thread count, and tie-breaking order.
//!
//! The driver is payload-generic: the runtime crate does not know what a
//! ledger transaction is, and tests drive it with plain integers.
//! `cshard-core`'s `LongRun::run_stream` instantiates it with real
//! transactions and replays each sealed batch through the epoch
//! pipeline.

use crate::driver::{Ctx, ProtocolDriver};
use crate::event::Event;
use crate::report::ShardReport;
use cshard_primitives::{Error, ShardId, SimTime};
use std::time::Duration;

/// A boxed lazy arrival source: simulated arrival time plus payload.
/// Arrival times must be non-decreasing; the driver rejects a rewinding
/// stream with a typed error instead of corrupting the event queue.
pub type ArrivalSource<T> = Box<dyn Iterator<Item = (SimTime, T)> + Send>;

/// Injects a lazy arrival stream as [`Event::TxInjected`] events and
/// seals arrivals into per-epoch batches (epoch = arrival time divided
/// by the configured interval). See the module docs for the O(1)
/// in-flight contract.
pub struct StreamDriver<T> {
    source: ArrivalSource<T>,
    interval: SimTime,
    /// The staged arrival behind the one in-flight `TxInjected` event.
    pending: Option<(SimTime, T)>,
    current: Vec<T>,
    current_epoch: u64,
    batches: Vec<(u64, Vec<T>)>,
    last_arrival: Option<SimTime>,
    injected: usize,
    exhausted: bool,
}

impl<T: Send> StreamDriver<T> {
    /// A driver over `source`, sealing batches every `interval` of
    /// simulated time.
    ///
    /// # Panics
    /// Panics when `interval` is zero — epochs must have extent.
    pub fn new(
        source: impl Iterator<Item = (SimTime, T)> + Send + 'static,
        interval: SimTime,
    ) -> Self {
        assert!(interval > SimTime::ZERO, "epoch interval must be positive");
        StreamDriver {
            source: Box::new(source),
            interval,
            pending: None,
            current: Vec::new(),
            current_epoch: 0,
            batches: Vec::new(),
            last_arrival: None,
            injected: 0,
            exhausted: false,
        }
    }

    /// Transactions injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// The sealed `(epoch index, batch)` pairs, in epoch order. Empty
    /// epochs (no arrivals in the interval) produce no entry.
    pub fn batches(&self) -> &[(u64, Vec<T>)] {
        &self.batches
    }

    /// Consumes the finished driver, handing the sealed batches out.
    pub fn into_batches(self) -> Vec<(u64, Vec<T>)> {
        self.batches
    }

    /// The epoch an arrival at `at` belongs to.
    fn epoch_of(&self, at: SimTime) -> u64 {
        at.as_millis() / self.interval.as_millis()
    }

    /// Seals the open batch when `epoch` has moved past it.
    fn seal_until(&mut self, epoch: u64) {
        if epoch > self.current_epoch {
            if !self.current.is_empty() {
                let sealed = std::mem::take(&mut self.current);
                self.batches.push((self.current_epoch, sealed));
            }
            self.current_epoch = epoch;
        }
    }

    /// Pulls the next arrival, stages it, and schedules its injection.
    /// Marks the stream exhausted (sealing the final batch) when the
    /// source runs dry.
    fn stage_next(&mut self, after: SimTime, ctx: &mut Ctx) -> Result<(), Error> {
        match self.source.next() {
            Some((at, item)) => {
                if at < after {
                    return Err(Error::Config {
                        field: "stream",
                        reason: format!("non-monotone arrival stream: {at} after {after}"),
                    });
                }
                self.pending = Some((at, item));
                ctx.schedule(at, Event::TxInjected { tx: self.injected });
                Ok(())
            }
            None => {
                self.exhausted = true;
                if !self.current.is_empty() {
                    let sealed = std::mem::take(&mut self.current);
                    self.batches.push((self.current_epoch, sealed));
                }
                Ok(())
            }
        }
    }
}

impl<T: Send> ProtocolDriver for StreamDriver<T> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        // The first pull cannot rewind (nothing precedes it) and an
        // empty source just leaves the driver born-done, so the staged
        // error path is unreachable here.
        let _ = self.stage_next(SimTime::ZERO, ctx);
    }

    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        let Event::TxInjected { tx } = ev else {
            return Err(Error::UnexpectedEvent {
                driver: "StreamDriver",
                event: format!("{ev:?}"),
            });
        };
        let Some((at, item)) = self.pending.take() else {
            return Err(Error::UnexpectedEvent {
                driver: "StreamDriver",
                event: format!("TxInjected {{ tx: {tx} }} with no staged arrival"),
            });
        };
        if tx != self.injected || at != t {
            return Err(Error::UnexpectedEvent {
                driver: "StreamDriver",
                event: format!(
                    "TxInjected {{ tx: {tx} }} at {t}; staged index {} at {at}",
                    self.injected
                ),
            });
        }
        let epoch = self.epoch_of(at);
        self.seal_until(epoch);
        self.current.push(item);
        self.injected += 1;
        self.last_arrival = Some(at);
        self.stage_next(at, ctx)
    }

    fn done(&self) -> bool {
        self.exhausted && self.pending.is_none()
    }

    fn completion(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// A synthetic report: injection is not block production, so every
    /// block counter is zero and `txs == confirmed == injected`. The
    /// shard id is a placeholder — callers embedding the driver in a
    /// multi-driver run should position it by driver order, not id.
    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        ShardReport {
            shard: ShardId::new(0),
            txs: self.injected,
            confirmed: self.injected,
            completion: self.last_arrival,
            blocks: 0,
            empty_blocks: 0,
            stale_blocks: 0,
            events_processed: events,
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Runtime;
    use cshard_network::CommStats;
    use cshard_sim::EventQueue;

    fn arrivals(ms: &[u64]) -> Vec<(SimTime, usize)> {
        ms.iter()
            .enumerate()
            .map(|(i, &t)| (SimTime::from_millis(t), i))
            .collect()
    }

    fn run(ms: &[u64], interval_ms: u64) -> StreamDriver<usize> {
        let driver = StreamDriver::new(arrivals(ms).into_iter(), SimTime::from_millis(interval_ms));
        let outcome = Runtime::builder().run(vec![driver]).expect("well-formed");
        outcome.drivers.into_iter().next().expect("one driver")
    }

    #[test]
    fn batches_partition_by_epoch_interval() {
        // Epochs of 100 ms: [0,100) [100,200) [200,300) …
        let d = run(&[10, 20, 150, 260, 270, 280], 100);
        assert_eq!(d.injected(), 6);
        assert_eq!(
            d.batches(),
            &[(0, vec![0, 1]), (1, vec![2]), (2, vec![3, 4, 5]),]
        );
    }

    #[test]
    fn boundary_arrival_belongs_to_the_new_epoch() {
        let d = run(&[99, 100], 100);
        assert_eq!(d.batches(), &[(0, vec![0]), (1, vec![1])]);
    }

    #[test]
    fn empty_epochs_produce_no_batch() {
        // Nothing arrives in epochs 1..=8.
        let d = run(&[50, 950], 100);
        assert_eq!(d.batches(), &[(0, vec![0]), (9, vec![1])]);
    }

    #[test]
    fn empty_source_is_born_done() {
        let d = run(&[], 100);
        assert_eq!(d.injected(), 0);
        assert!(d.batches().is_empty());
        assert_eq!(d.completion(), None);
    }

    #[test]
    fn completion_is_the_last_arrival() {
        let d = run(&[5, 7, 7, 42], 10);
        assert_eq!(d.completion(), Some(SimTime::from_millis(42)));
        let r = d.report(4, Duration::ZERO);
        assert_eq!((r.txs, r.confirmed, r.blocks), (4, 4, 0));
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let batches = |threads| {
            let driver = StreamDriver::new(
                arrivals(&[1, 2, 150, 151, 400]).into_iter(),
                SimTime::from_millis(100),
            );
            Runtime::builder()
                .threads(threads)
                .run(vec![driver])
                .expect("well-formed")
                .drivers
                .remove(0)
                .into_batches()
        };
        assert_eq!(batches(1), batches(4));
        assert_eq!(batches(1), batches(0));
    }

    #[test]
    fn non_monotone_stream_is_a_typed_error() {
        let source = vec![
            (SimTime::from_millis(100), 0usize),
            (SimTime::from_millis(50), 1),
        ];
        let driver = StreamDriver::new(source.into_iter(), SimTime::from_millis(100));
        let err = Runtime::builder().run(vec![driver]).unwrap_err();
        assert!(
            matches!(
                err,
                Error::Config {
                    field: "stream",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn foreign_event_is_rejected_not_panicked() {
        let mut driver = StreamDriver::new(arrivals(&[10]).into_iter(), SimTime::from_millis(100));
        let mut queue = EventQueue::new();
        let comm = CommStats::new();
        let err = driver
            .on_event(
                SimTime::ZERO,
                Event::BlockFound { miner: 0 },
                &mut Ctx::new(&mut queue, &comm),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnexpectedEvent {
                driver: "StreamDriver",
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        StreamDriver::new(arrivals(&[]).into_iter(), SimTime::ZERO);
    }
}
