//! Run reports and the paper's performance metrics.
//!
//! Everything simulated lands here; everything host-side (`wall`,
//! `threads_used`) is diagnostic only and excluded from
//! [`RunReport::fingerprint`]. This module moved from `cshard-core`
//! unchanged when the runtime was unified — the fingerprint preimage is
//! versioned (`cshard-run-report-v1`) and must not drift, because the
//! golden tests compare hashes captured before the refactor.

use cshard_crypto::Sha256;
use cshard_primitives::{Hash32, ShardId, SimTime};
use std::time::Duration;

/// Per-shard results of one simulated run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// The shard.
    pub shard: ShardId,
    /// Transactions injected into the shard.
    pub txs: usize,
    /// Transactions confirmed (== `txs` for completed runs).
    pub confirmed: usize,
    /// When the shard confirmed its last transaction (`None` if it had no
    /// transactions).
    pub completion: Option<SimTime>,
    /// Blocks produced (useful + empty + stale).
    pub blocks: usize,
    /// Blocks carrying no transactions because the miner saw an empty
    /// queue — the waste metric of Sec. III-D / Fig. 3(b)(c)(f).
    pub empty_blocks: usize,
    /// Blocks whose entire selection had already been confirmed by a
    /// competitor within the propagation window — the duplicate-selection
    /// waste that serializes vanilla Ethereum (Sec. II-B).
    pub stale_blocks: usize,
    /// Simulation events the shard's driver processed (across both the
    /// active and the idle-drain phase).
    pub events_processed: usize,
    /// Host wall-clock time the shard's driver spent simulating.
    /// Diagnostic only — excluded from [`RunReport::fingerprint`].
    pub wall: Duration,
}

/// Results of one simulated run across all shards.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The waiting time until **all** injected transactions were confirmed
    /// — `W` in the paper's throughput metric (Sec. VI-A).
    pub completion: SimTime,
    /// Per-shard details.
    pub shards: Vec<ShardReport>,
    /// Host wall-clock time of the whole run. Diagnostic only.
    pub wall: Duration,
    /// Worker threads the executor resolved to for this run.
    pub threads_used: usize,
}

impl RunReport {
    /// Total transactions across shards.
    pub fn total_txs(&self) -> usize {
        self.shards.iter().map(|s| s.txs).sum()
    }

    /// Total empty blocks (within the configured counting window).
    pub fn total_empty_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.empty_blocks).sum()
    }

    /// Average empty blocks per shard — the y-axis of Fig. 3(c)/(f).
    pub fn empty_blocks_per_shard(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        self.total_empty_blocks() as f64 / self.shards.len() as f64
    }

    /// Total stale (duplicate-selection) blocks.
    pub fn total_stale_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.stale_blocks).sum()
    }

    /// Total blocks produced.
    pub fn total_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.blocks).sum()
    }

    /// Confirmed transactions per second over the whole run.
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.completion.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_txs() as f64 / secs
    }

    /// Total simulation events processed across shard drivers.
    pub fn total_events_processed(&self) -> usize {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// A digest over every *deterministic* field of the report — all the
    /// simulated quantities, excluding host-side diagnostics (`wall`,
    /// `threads_used`). Two runs of the same configuration must produce
    /// equal fingerprints regardless of thread count; the determinism
    /// tests assert exactly that.
    pub fn fingerprint(&self) -> Hash32 {
        let mut h = Sha256::new();
        h.update(b"cshard-run-report-v1");
        h.update(self.completion.as_millis().to_be_bytes());
        h.update((self.shards.len() as u64).to_be_bytes());
        for s in &self.shards {
            h.update(s.shard.0.to_be_bytes());
            h.update((s.txs as u64).to_be_bytes());
            h.update((s.confirmed as u64).to_be_bytes());
            match s.completion {
                None => {
                    h.update([0u8]);
                }
                Some(t) => {
                    h.update([1u8]);
                    h.update(t.as_millis().to_be_bytes());
                }
            }
            h.update((s.blocks as u64).to_be_bytes());
            h.update((s.empty_blocks as u64).to_be_bytes());
            h.update((s.stale_blocks as u64).to_be_bytes());
            h.update((s.events_processed as u64).to_be_bytes());
        }
        h.finalize()
    }
}

/// The paper's headline metric (Sec. VI-A): `W_E / W_S`, the Ethereum
/// waiting time over the scheme's waiting time. 1.0 = no improvement,
/// 7.2 = the paper's nine-shard result.
pub fn throughput_improvement(ethereum: &RunReport, scheme: &RunReport) -> f64 {
    let we = ethereum.completion.as_secs_f64();
    let ws = scheme.completion.as_secs_f64();
    assert!(ws > 0.0, "scheme run confirmed nothing");
    we / ws
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(txs: usize, empty: usize, completion_s: u64) -> ShardReport {
        ShardReport {
            shard: ShardId::new(0),
            txs,
            confirmed: txs,
            completion: Some(SimTime::from_secs(completion_s)),
            blocks: txs / 10 + empty,
            empty_blocks: empty,
            stale_blocks: 0,
            events_processed: txs / 10 + empty,
            wall: Duration::ZERO,
        }
    }

    fn report(completion_s: u64, shards: Vec<ShardReport>) -> RunReport {
        RunReport {
            completion: SimTime::from_secs(completion_s),
            shards,
            wall: Duration::ZERO,
            threads_used: 1,
        }
    }

    #[test]
    fn totals_aggregate() {
        let r = report(100, vec![shard(20, 2, 90), shard(30, 3, 100)]);
        assert_eq!(r.total_txs(), 50);
        assert_eq!(r.total_empty_blocks(), 5);
        assert!((r.empty_blocks_per_shard() - 2.5).abs() < 1e-12);
        assert!((r.throughput_tps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn improvement_ratio() {
        let e = report(1200, vec![shard(200, 0, 1200)]);
        let s = report(200, vec![shard(200, 0, 200)]);
        assert!((throughput_improvement(&e, &s) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "confirmed nothing")]
    fn zero_scheme_time_rejected() {
        let e = report(100, vec![]);
        let s = report(0, vec![]);
        throughput_improvement(&e, &s);
    }

    #[test]
    fn empty_report_edge_cases() {
        let r = report(0, vec![]);
        assert_eq!(r.empty_blocks_per_shard(), 0.0);
        assert_eq!(r.throughput_tps(), 0.0);
    }
}
