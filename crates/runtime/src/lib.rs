//! The unified event-driven protocol runtime.
//!
//! The paper evaluates three block-production regimes — vanilla Ethereum
//! (Table I), contract-centric sharding (Fig. 3) and ChainSpace-style
//! random sharding (Fig. 4) — as variants of *one* discrete-event
//! process. This crate is that process, factored once:
//!
//! * [`Event`] — the typed event vocabulary every protocol shares
//!   (transaction injection, block discovery, block delivery, epoch
//!   advancement, cross-shard validation rounds);
//! * [`ProtocolDriver`] — the per-shard protocol state machine. A driver
//!   owns one shard's state and reacts to events through
//!   [`ProtocolDriver::on_event`]; it never touches the clock, another
//!   shard's state, or host wall-time;
//! * [`Ctx`] — what a driver may do in response: schedule further events
//!   on its own queue and account cross-shard messaging through
//!   [`cshard_network::CommStats`];
//! * [`PropagationModel`] — how a found block becomes visible to the
//!   shard's other miners: the legacy fixed conflict window
//!   ([`PropagationModel::Window`], bit-identical to the pre-refactor
//!   simulator) or explicit [`Event::BlockDelivered`] events drawn from a
//!   [`cshard_network::LatencyModel`];
//! * [`Runtime`] — the two-phase harness that runs one driver per shard
//!   on the shard-lifecycle scheduler (`cshard_sim::WorkScheduler`) and
//!   assembles the [`RunReport`]. Runs launch through the fluent
//!   [`Runtime::builder`] ([`RunBuilder`]), which threads a
//!   [`SchedulerConfig`] (worker count + turn budget), an optional shared
//!   [`cshard_network::CommStats`] and an optional [`RunObserver`]
//!   through both phases. All host wall-clock reads live here, behind the
//!   report layer — drivers are replayable pure functions of their event
//!   streams.
//!
//! The concrete drivers for the paper's protocols live here too:
//! [`ContractShardDriver`] (one shard of the contract-centric scheme or,
//! on the MaxShard, vanilla Ethereum) and [`EthereumDriver`] (the
//! degenerate single-chain instance). The ChainSpace driver builds on
//! these from `cshard-baselines`, which layers 2PC validation events on
//! top.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Event-loop/driver code must use typed errors, not panics (PH001).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod contract;
pub mod driver;
pub mod event;
pub mod harness;
pub mod migrate;
pub mod propagation;
pub mod report;
pub mod settle;
pub mod stream;

pub use contract::{
    shard_stream, simulate, simulate_ethereum, ContractShardDriver, EthereumDriver, RuntimeConfig,
    SelectionDynamicsStats, SelectionStrategy, ShardSpec,
};
pub use cshard_settle::{
    Batch, FlushOutcome, SettleConfig, SettleStats, SettlementBatcher, Submit,
};
pub use cshard_sim::{DrainStats, SchedulerConfig};
pub use driver::{Ctx, ProtocolDriver};
pub use event::Event;
pub use harness::{RunBuilder, RunObserver, RunOutcome, RunPhase, RunSchedStats, Runtime};
pub use migrate::{MigratingShardDriver, MigrationStats, MigrationTicket};
pub use propagation::PropagationModel;
pub use report::{throughput_improvement, RunReport, ShardReport};
pub use settle::SettlingShardDriver;
pub use stream::{ArrivalSource, StreamDriver};
