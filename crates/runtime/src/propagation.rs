//! How found blocks become visible to a shard's other miners.

use cshard_network::{GossipNet, LatencyModel, PartitionModel};
use cshard_primitives::SimTime;

/// The block-propagation regime of a run.
///
/// Table I's plateau comes from propagation: a block found before a
/// competing confirmation has reached the whole shard duplicates that
/// confirmation's selection and is wasted. The variants model the
/// "not yet everywhere" span differently:
#[derive(Clone, Debug, PartialEq)]
pub enum PropagationModel {
    /// The legacy fixed conflict window: a block found within this span
    /// of a competing confirmation sees the pre-confirmation queue. No
    /// delivery events are scheduled — visibility is a pure time check —
    /// so runs under this model are bit-identical to the pre-refactor
    /// simulator (the golden fingerprints assert exactly that).
    Window(SimTime),
    /// Explicit network-backed propagation: each confirming block's
    /// delivery delay is drawn from the latency model and materialized
    /// as an [`crate::Event::BlockDelivered`] event; until it fires, the
    /// other miners keep mining against the pre-confirmation queue.
    Latency(LatencyModel),
    /// Latency-backed propagation overlaid with partition blackout
    /// windows: deliveries that would complete while the shard is
    /// partitioned are deferred past the heal time. Used by the
    /// fault-injection subsystem; with no windows it is exactly
    /// [`PropagationModel::Latency`] over the model's base.
    Partition(PartitionModel),
}

impl PropagationModel {
    /// The worst-case span during which a found block can conflict with
    /// an earlier confirmation — the window itself, or the network
    /// model's maximum delivery delay.
    pub fn conflict_window(&self) -> SimTime {
        match self {
            PropagationModel::Window(w) => *w,
            PropagationModel::Latency(m) => m.max_delay(),
            PropagationModel::Partition(m) => m.max_delay(),
        }
    }

    /// When a block broadcast at `now` reaches the whole shard, given a
    /// uniform draw `u ∈ [0, 1)` — or `None` under the legacy window
    /// model, which schedules no delivery events at all. Callers must
    /// only burn an RNG draw when this can return `Some`, so window-model
    /// trajectories stay bit-identical to the pre-refactor simulator.
    pub fn delivery_time(&self, now: SimTime, u: f64) -> Option<SimTime> {
        match self {
            PropagationModel::Window(_) => None,
            PropagationModel::Latency(m) => Some(now.saturating_add(m.delay(u))),
            PropagationModel::Partition(m) => Some(m.delivery_at(now, u)),
        }
    }

    /// Whether this model materializes deliveries as events (everything
    /// except the legacy window).
    pub fn schedules_deliveries(&self) -> bool {
        !matches!(self, PropagationModel::Window(_))
    }

    /// A window calibrated from a gossip overlay: the time a broadcast
    /// needs to reach every node from `origin` (the ablation experiments
    /// derive their sweep anchor this way).
    pub fn from_gossip(net: &GossipNet, origin: usize, seed: u64) -> Self {
        PropagationModel::Window(net.full_coverage_time(origin, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_network::PartitionWindow;

    #[test]
    fn window_reports_itself() {
        let w = PropagationModel::Window(SimTime::from_secs(60));
        assert_eq!(w.conflict_window(), SimTime::from_secs(60));
    }

    #[test]
    fn latency_reports_max_delay() {
        let m = PropagationModel::Latency(LatencyModel::wide_area());
        assert_eq!(m.conflict_window(), LatencyModel::wide_area().max_delay());
    }

    #[test]
    fn window_schedules_no_deliveries() {
        let w = PropagationModel::Window(SimTime::from_secs(60));
        assert_eq!(w.delivery_time(SimTime::from_secs(5), 0.5), None);
        assert!(!w.schedules_deliveries());
    }

    #[test]
    fn latency_delivery_is_now_plus_delay() {
        let m = PropagationModel::Latency(LatencyModel::constant(SimTime::from_millis(250)));
        assert_eq!(
            m.delivery_time(SimTime::from_secs(1), 0.0),
            Some(SimTime::from_millis(1250))
        );
        assert!(m.schedules_deliveries());
    }

    #[test]
    fn partition_defers_past_the_heal() {
        let model = PartitionModel::new(
            LatencyModel::constant(SimTime::from_millis(100)),
            vec![PartitionWindow {
                from: SimTime::from_millis(1000),
                until: SimTime::from_millis(5000),
            }],
        )
        .expect("valid windows");
        let p = PropagationModel::Partition(model);
        assert_eq!(
            p.delivery_time(SimTime::from_millis(2000), 0.0),
            Some(SimTime::from_millis(5100))
        );
        assert_eq!(p.conflict_window(), SimTime::from_millis(100 + 4000),);
    }

    #[test]
    fn gossip_anchor_is_a_window() {
        let net = GossipNet::random(20, 3, LatencyModel::wide_area(), 7);
        let p = PropagationModel::from_gossip(&net, 0, 1);
        match p {
            PropagationModel::Window(w) => assert!(w > SimTime::ZERO),
            _ => panic!("expected a window"),
        }
    }
}
