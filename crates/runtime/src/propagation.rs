//! How found blocks become visible to a shard's other miners.

use cshard_network::{GossipNet, LatencyModel};
use cshard_primitives::SimTime;

/// The block-propagation regime of a run.
///
/// Table I's plateau comes from propagation: a block found before a
/// competing confirmation has reached the whole shard duplicates that
/// confirmation's selection and is wasted. The two variants model the
/// "not yet everywhere" span differently:
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PropagationModel {
    /// The legacy fixed conflict window: a block found within this span
    /// of a competing confirmation sees the pre-confirmation queue. No
    /// delivery events are scheduled — visibility is a pure time check —
    /// so runs under this model are bit-identical to the pre-refactor
    /// simulator (the golden fingerprints assert exactly that).
    Window(SimTime),
    /// Explicit network-backed propagation: each confirming block's
    /// delivery delay is drawn from the latency model and materialized
    /// as an [`crate::Event::BlockDelivered`] event; until it fires, the
    /// other miners keep mining against the pre-confirmation queue.
    Latency(LatencyModel),
}

impl PropagationModel {
    /// The worst-case span during which a found block can conflict with
    /// an earlier confirmation — the window itself, or the latency
    /// model's maximum delivery delay.
    pub fn conflict_window(&self) -> SimTime {
        match self {
            PropagationModel::Window(w) => *w,
            PropagationModel::Latency(m) => m.max_delay(),
        }
    }

    /// A window calibrated from a gossip overlay: the time a broadcast
    /// needs to reach every node from `origin` (the ablation experiments
    /// derive their sweep anchor this way).
    pub fn from_gossip(net: &GossipNet, origin: usize, seed: u64) -> Self {
        PropagationModel::Window(net.full_coverage_time(origin, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_reports_itself() {
        let w = PropagationModel::Window(SimTime::from_secs(60));
        assert_eq!(w.conflict_window(), SimTime::from_secs(60));
    }

    #[test]
    fn latency_reports_max_delay() {
        let m = PropagationModel::Latency(LatencyModel::wide_area());
        assert_eq!(m.conflict_window(), LatencyModel::wide_area().max_delay());
    }

    #[test]
    fn gossip_anchor_is_a_window() {
        let net = GossipNet::random(20, 3, LatencyModel::wide_area(), 7);
        let p = PropagationModel::from_gossip(&net, 0, 1);
        match p {
            PropagationModel::Window(w) => assert!(w > SimTime::ZERO),
            PropagationModel::Latency(_) => panic!("expected a window"),
        }
    }
}
