//! The migrating shard driver: hot-account migration layered on batched
//! settlement.
//!
//! [`MigratingShardDriver`] wraps a [`SettlingShardDriver`] and executes a
//! schedule of [`MigrationTicket`]s — the placement engine's proposals,
//! turned into simulated moves. Each ticket names an account, its old and
//! new home shards, and the outbound transfer slots it owns; at the
//! ticket's apply time an [`Event::Migration`] fires and the driver runs
//! the in-flight story in one atomic step:
//!
//! 1. **drain** — every open settlement pair holding one of the account's
//!    transfers is force-flushed ([`SettlementBatcher::drain`] via
//!    [`SettlingShardDriver::drain_pair`]), so nothing settles later under
//!    the account's stale routing;
//! 2. **re-key** — the account's not-yet-submitted transfers are re-keyed
//!    to the new home shard ([`SettlingShardDriver::rekey_transfers`]);
//! 3. **book** — the move itself ships one
//!    [`cshard_network::CommKind::Crosslink`] (state handoff), and the
//!    ticket is marked applied.
//!
//! Exactly-once and partition tolerance reuse the settlement layer's
//! deadline discipline verbatim: a migration event applies its ticket
//! only when its timestamp matches the recorded deadline (anything else
//! is stale), and an apply landing inside a partition blackout re-arms at
//! the heal instant — chaining through overlapping windows exactly like
//! the batcher's deferred flushes. Everything runs on simulated time via
//! the shard's own event queue (ND001), so migrating runs stay
//! bit-identical across thread counts.

use crate::driver::{Ctx, ProtocolDriver};
use crate::event::Event;
use crate::report::ShardReport;
use crate::settle::SettlingShardDriver;
use cshard_network::CommKind;
use cshard_primitives::{Error, ShardId, SimTime};
use cshard_settle::SettleStats;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// One scheduled hot-account move, as the runtime executes it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationTicket {
    /// Caller-scoped account tag (the bench maps addresses onto these);
    /// the runtime treats it as opaque.
    pub account: u64,
    /// The shard the account is leaving.
    pub from: ShardId,
    /// The account's new home shard.
    pub to: ShardId,
    /// Scheduled apply time (simulated).
    pub at: SimTime,
    /// Outbound transfer slots of the wrapped driver owned by this
    /// account — the ones to drain and re-key before the switch.
    pub transfers: Vec<usize>,
}

/// Migration accounting for one shard's run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Tickets scheduled at start.
    pub scheduled: u64,
    /// Tickets applied (each exactly once).
    pub applied: u64,
    /// Apply attempts deferred past a partition blackout.
    pub deferred: u64,
    /// Transfers force-flushed out of open pairs by applies.
    pub drained_transfers: u64,
    /// Unsubmitted transfers re-keyed to new home shards by applies.
    pub rekeyed_transfers: u64,
}

/// One shard of the contract-centric scheme with batched settlement and
/// scheduled hot-account migration. See the module docs for the
/// lifecycle.
pub struct MigratingShardDriver {
    inner: SettlingShardDriver,
    schedule: Vec<MigrationTicket>,
    /// The one live apply deadline per ticket; an event applies its
    /// ticket only if its timestamp matches (the settlement staleness
    /// rule).
    deadlines: Vec<Option<SimTime>>,
    applied: Vec<bool>,
    /// When each ticket actually applied (the fault tests read this).
    applied_at: Vec<Option<SimTime>>,
    /// Blackout windows per destination pair, `[from, until)` — same
    /// shape the settlement batcher carries, kept locally so the apply
    /// path defers exactly like a flush.
    blackouts: BTreeMap<ShardId, Vec<(SimTime, SimTime)>>,
    stats: MigrationStats,
}

impl MigratingShardDriver {
    /// Wraps a settling driver with a migration `schedule`.
    ///
    /// # Panics
    /// Panics when a ticket references a transfer slot the wrapped driver
    /// does not have — schedules are built from the same transfer table,
    /// so a mismatch is a harness bug, caught at construction rather than
    /// mid-run.
    pub fn new(inner: SettlingShardDriver, schedule: Vec<MigrationTicket>) -> MigratingShardDriver {
        let slots = inner.transfers().len();
        for (i, ticket) in schedule.iter().enumerate() {
            for &slot in &ticket.transfers {
                assert!(
                    slot < slots,
                    "migration ticket {i} references transfer slot {slot} outside the \
                     shard's table ({slots} slots)"
                );
            }
        }
        let n = schedule.len();
        MigratingShardDriver {
            inner,
            schedule,
            deadlines: vec![None; n],
            applied: vec![false; n],
            applied_at: vec![None; n],
            blackouts: BTreeMap::new(),
            stats: MigrationStats::default(),
        }
    }

    /// Installs partition blackout windows toward `dest` on both layers:
    /// migration applies *and* settlement flushes for the pair defer to
    /// the heal.
    pub fn set_blackouts(&mut self, dest: ShardId, windows: Vec<(SimTime, SimTime)>) {
        self.inner.set_blackouts(dest, windows.clone());
        if windows.is_empty() {
            self.blackouts.remove(&dest);
        } else {
            self.blackouts.insert(dest, windows);
        }
    }

    /// The migration accounting so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// The migration schedule, slot-indexed as the events are.
    pub fn schedule(&self) -> &[MigrationTicket] {
        &self.schedule
    }

    /// When ticket `slot` applied, if it has.
    pub fn applied_at(&self, slot: usize) -> Option<SimTime> {
        self.applied_at.get(slot).copied().flatten()
    }

    /// The wrapped settling driver.
    pub fn inner(&self) -> &SettlingShardDriver {
        &self.inner
    }

    /// If the pair toward `dest` is blacked out at `t`, the instant it
    /// heals — chaining through overlapping windows (the heal of one may
    /// land inside another), mirroring the batcher's rule.
    fn heal_time(&self, dest: ShardId, t: SimTime) -> Option<SimTime> {
        let windows = self.blackouts.get(&dest)?;
        let mut at = t;
        let mut blacked = false;
        loop {
            let next = windows
                .iter()
                .filter(|&&(from, until)| from <= at && at < until)
                .map(|&(_, until)| until)
                .max();
            match next {
                Some(until) => {
                    blacked = true;
                    at = until;
                }
                None => break,
            }
        }
        blacked.then_some(at)
    }

    /// Executes ticket `slot` at `t`: drain, re-key, book, mark applied.
    fn apply(&mut self, slot: usize, t: SimTime, ctx: &mut Ctx) {
        let ticket = self.schedule[slot].clone();
        // Drain every open pair the account's transfers currently key to
        // (deterministic order; a pair may also carry other accounts'
        // transfers — an early flush, never a wrong one).
        let dests: BTreeSet<ShardId> = ticket
            .transfers
            .iter()
            .filter_map(|&s| self.inner.transfers().get(s).map(|&(_, d)| d))
            .collect();
        for dest in dests {
            self.stats.drained_transfers += self.inner.drain_pair(t, dest, ctx) as u64;
        }
        self.stats.rekeyed_transfers +=
            self.inner.rekey_transfers(&ticket.transfers, ticket.to) as u64;
        // The move itself: one cross-shard state handoff.
        ctx.comm().record(ticket.from, CommKind::Crosslink);
        self.applied[slot] = true;
        self.applied_at[slot] = Some(t);
        self.deadlines[slot] = None;
        self.stats.applied += 1;
    }
}

impl ProtocolDriver for MigratingShardDriver {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx);
        for (slot, ticket) in self.schedule.iter().enumerate() {
            self.deadlines[slot] = Some(ticket.at);
            ctx.schedule(ticket.at, Event::Migration { slot });
            self.stats.scheduled += 1;
        }
    }

    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
        if let Event::Migration { slot } = ev {
            if slot >= self.schedule.len() {
                return Err(Error::UnexpectedEvent {
                    driver: "MigratingShardDriver",
                    event: format!("Migration {{ slot: {slot} }} outside the schedule"),
                });
            }
            // Stale: already applied, or the deadline moved (a deferral
            // superseded this event).
            if self.applied[slot] || self.deadlines[slot] != Some(t) {
                return Ok(());
            }
            // Mid-partition: defer the whole apply to the heal, exactly
            // like a settlement flush.
            if let Some(heal) = self.heal_time(self.schedule[slot].to, t) {
                self.deadlines[slot] = Some(heal);
                ctx.schedule(heal, Event::Migration { slot });
                self.stats.deferred += 1;
                return Ok(());
            }
            self.apply(slot, t, ctx);
            return Ok(());
        }
        self.inner.on_event(t, ev, ctx)
    }

    fn done(&self) -> bool {
        // A pending ticket always holds an armed migration event (the
        // deadline invariant), so waiting on it never stalls the harness.
        self.inner.done() && self.applied.iter().all(|&a| a)
    }

    fn completion(&self) -> Option<SimTime> {
        self.inner.completion()
    }

    fn report(&self, events: usize, wall: Duration) -> ShardReport {
        self.inner.report(events, wall)
    }

    fn settle_stats(&self) -> Option<SettleStats> {
        self.inner.settle_stats()
    }
}

impl MigrationStats {
    /// Field-wise sum, for aggregating per-shard stats into a run total.
    pub fn merge(&self, other: &MigrationStats) -> MigrationStats {
        MigrationStats {
            scheduled: self.scheduled + other.scheduled,
            applied: self.applied + other.applied,
            deferred: self.deferred + other.deferred,
            drained_transfers: self.drained_transfers + other.drained_transfers,
            rekeyed_transfers: self.rekeyed_transfers + other.rekeyed_transfers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{RuntimeConfig, ShardSpec};
    use crate::harness::Runtime;
    use cshard_settle::SettleConfig;

    fn spec(shard: u32, txs: usize) -> ShardSpec {
        ShardSpec::solo_greedy(ShardId::new(shard), (1..=txs as u64).collect())
    }

    fn config(settle: SettleConfig) -> RuntimeConfig {
        RuntimeConfig {
            seed: 23,
            settle,
            ..RuntimeConfig::default()
        }
    }

    /// Transfers of shard 0 toward `dest`, one per tx.
    fn fan(txs: usize, dest: u32) -> Vec<(usize, ShardId)> {
        (0..txs).map(|tx| (tx, ShardId::new(dest))).collect()
    }

    fn ticket(at: SimTime, transfers: Vec<usize>) -> MigrationTicket {
        MigrationTicket {
            account: 7,
            from: ShardId::new(0),
            to: ShardId::new(9),
            at,
            transfers,
        }
    }

    fn run(
        schedule: Vec<MigrationTicket>,
        threads: usize,
    ) -> crate::harness::RunOutcome<MigratingShardDriver> {
        let cfg = config(SettleConfig::batched(100));
        let inner = SettlingShardDriver::new(&spec(0, 30), &cfg, fan(30, 1));
        let driver = MigratingShardDriver::new(inner, schedule);
        Runtime::builder()
            .threads(threads)
            .run(vec![driver])
            .expect("well-formed")
    }

    #[test]
    fn empty_schedule_is_bit_invisible() {
        let cfg = config(SettleConfig::batched(100));
        let plain = Runtime::builder()
            .run(vec![SettlingShardDriver::new(
                &spec(0, 30),
                &cfg,
                fan(30, 1),
            )])
            .expect("well-formed");
        let wrapped = run(Vec::new(), 1);
        assert_eq!(plain.report.fingerprint(), wrapped.report.fingerprint());
        assert_eq!(plain.settle, wrapped.settle);
        assert_eq!(
            plain.drivers[0].settled_batches(),
            wrapped.drivers[0].inner().settled_batches()
        );
        assert_eq!(wrapped.drivers[0].stats(), MigrationStats::default());
    }

    #[test]
    fn apply_drains_rekeys_and_books_the_move_exactly_once() {
        // Move the account owning slots 0..10 at t=1s; cap 100 with a
        // long-lived run means its pair is still open when the move hits.
        let schedule = vec![ticket(SimTime::from_secs(1), (0..10).collect())];
        let outcome = run(schedule, 1);
        let driver = &outcome.drivers[0];
        let s = driver.stats();
        assert_eq!((s.scheduled, s.applied, s.deferred), (1, 1, 0));
        assert_eq!(driver.applied_at(0), Some(SimTime::from_secs(1)));
        // Unsubmitted owned slots were re-keyed to the new home.
        let rekeyed = driver
            .inner()
            .transfers()
            .iter()
            .take(10)
            .filter(|&&(_, d)| d == ShardId::new(9))
            .count();
        assert_eq!(rekeyed, s.rekeyed_transfers as usize);
        assert!(s.drained_transfers as usize + rekeyed == 10);
        // Every transfer still settles exactly once, across both keys.
        let mut seen: Vec<u64> = driver
            .inner()
            .settled_batches()
            .iter()
            .flat_map(|b| b.transfers.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<u64>>());
    }

    #[test]
    fn thread_count_does_not_change_migrating_runs() {
        let schedule = vec![
            ticket(SimTime::from_secs(1), (0..8).collect()),
            MigrationTicket {
                account: 11,
                from: ShardId::new(0),
                to: ShardId::new(4),
                at: SimTime::from_secs(2),
                transfers: (8..16).collect(),
            },
        ];
        let base = run(schedule.clone(), 1);
        for threads in [4, 0] {
            let other = run(schedule.clone(), threads);
            assert_eq!(base.report.fingerprint(), other.report.fingerprint());
            assert_eq!(base.settle, other.settle);
            assert_eq!(base.drivers[0].stats(), other.drivers[0].stats());
            assert_eq!(
                base.drivers[0].inner().settled_batches(),
                other.drivers[0].inner().settled_batches()
            );
        }
    }

    #[test]
    fn mid_blackout_apply_defers_to_the_heal_and_applies_once() {
        let cfg = config(SettleConfig::batched(100));
        let inner = SettlingShardDriver::new(&spec(0, 30), &cfg, fan(30, 1));
        let mut driver =
            MigratingShardDriver::new(inner, vec![ticket(SimTime::from_secs(1), vec![0, 1, 2])]);
        // Black out the pair toward the *new* home across the apply time.
        driver.set_blackouts(
            ShardId::new(9),
            vec![(SimTime::ZERO, SimTime::from_secs(300))],
        );
        let outcome = Runtime::builder().run(vec![driver]).expect("well-formed");
        let d = &outcome.drivers[0];
        let s = d.stats();
        assert_eq!((s.applied, s.deferred), (1, 1));
        assert_eq!(d.applied_at(0), Some(SimTime::from_secs(300)));
    }

    #[test]
    fn out_of_schedule_event_is_rejected_not_panicked() {
        let cfg = config(SettleConfig::batched(4));
        let inner = SettlingShardDriver::new(&spec(0, 4), &cfg, Vec::new());
        let mut driver = MigratingShardDriver::new(inner, Vec::new());
        let comm = cshard_network::CommStats::new();
        let mut queue = cshard_sim::EventQueue::new();
        let mut ctx = Ctx::new(&mut queue, &comm);
        let err = driver
            .on_event(SimTime::ZERO, Event::Migration { slot: 3 }, &mut ctx)
            .expect_err("foreign slot must be rejected");
        assert!(matches!(
            err,
            Error::UnexpectedEvent {
                driver: "MigratingShardDriver",
                ..
            }
        ));
    }

    #[test]
    fn stats_merge_is_fieldwise() {
        let a = MigrationStats {
            scheduled: 1,
            applied: 1,
            deferred: 0,
            drained_transfers: 3,
            rekeyed_transfers: 2,
        };
        let b = MigrationStats {
            scheduled: 2,
            applied: 1,
            deferred: 1,
            drained_transfers: 0,
            rekeyed_transfers: 5,
        };
        let m = a.merge(&b);
        assert_eq!(
            (
                m.scheduled,
                m.applied,
                m.deferred,
                m.drained_transfers,
                m.rekeyed_transfers
            ),
            (3, 2, 1, 3, 7)
        );
    }
}
