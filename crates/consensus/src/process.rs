//! The statistical mining model: PoW as a Poisson process.
//!
//! Hash trials are independent Bernoulli events, so block discovery by a
//! miner with hash rate `h` at difficulty `D` is (to excellent
//! approximation) a Poisson process with rate `h / D` — memoryless, which
//! is why [`MiningProcess::next_interval`] can be resampled at any time
//! without bias. The evaluation harness drives thousands of simulated
//! blocks through this model instead of grinding SHA-256.

use crate::difficulty::Difficulty;
use cshard_primitives::SimTime;
use rand::Rng;

/// A miner's (or a pooled shard's) block-production process.
#[derive(Clone, Copy, Debug)]
pub struct MiningProcess {
    /// Block discovery rate in blocks per second.
    rate: f64,
}

impl MiningProcess {
    /// From an explicit block rate (blocks/second).
    pub fn from_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        MiningProcess { rate }
    }

    /// From a mean block interval.
    pub fn from_interval(mean: SimTime) -> Self {
        let secs = mean.as_secs_f64();
        assert!(secs > 0.0, "interval must be positive");
        MiningProcess { rate: 1.0 / secs }
    }

    /// From difficulty and hash rate, the physical parametrisation.
    pub fn from_difficulty(difficulty: Difficulty, hashrate: f64) -> Self {
        MiningProcess {
            rate: difficulty.block_rate(hashrate),
        }
    }

    /// The paper's testbed process: one block per minute per miner.
    pub fn paper_block_per_minute() -> Self {
        MiningProcess::from_interval(SimTime::from_secs(60))
    }

    /// Block rate (blocks/second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean inter-block interval.
    pub fn mean_interval(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.rate)
    }

    /// The combined process of `n` identical miners racing: rates add.
    ///
    /// This is the "more miners find blocks faster" half of Table I; the
    /// other half (the plateau) comes from duplicate selection and stale
    /// blocks, modelled in the simulator.
    pub fn pooled(&self, n: usize) -> MiningProcess {
        assert!(n > 0, "a pool needs at least one miner");
        MiningProcess {
            rate: self.rate * n as f64,
        }
    }

    /// Samples the next inter-block interval.
    pub fn next_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let u: f64 = rng.gen::<f64>();
        let secs = -(1.0 - u).ln() / self.rate;
        SimTime::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn parametrisations_agree() {
        let a = MiningProcess::from_rate(1.0 / 60.0);
        let b = MiningProcess::from_interval(SimTime::from_secs(60));
        let c = MiningProcess::from_difficulty(
            Difficulty::PAPER_BLOCK_PER_MINUTE,
            Difficulty::paper_hashrate(),
        );
        assert!((a.rate() - b.rate()).abs() < 1e-12);
        assert!((a.rate() - c.rate()).abs() < 1e-12);
        assert_eq!(
            MiningProcess::paper_block_per_minute().mean_interval(),
            SimTime::from_secs(60)
        );
    }

    #[test]
    fn sampled_mean_matches_configured_interval() {
        let p = MiningProcess::from_interval(SimTime::from_secs(60));
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| p.next_interval(&mut r).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 60.0).abs() < 1.5, "sample mean {mean}");
    }

    #[test]
    fn pooling_scales_rate_linearly() {
        let p = MiningProcess::from_rate(0.5);
        assert!((p.pooled(4).rate() - 2.0).abs() < 1e-12);
        assert_eq!(p.pooled(1).rate(), p.rate());
    }

    #[test]
    fn pooled_process_is_faster_in_samples() {
        let p = MiningProcess::from_interval(SimTime::from_secs(60));
        let mut r = rng();
        let solo: f64 = (0..5000)
            .map(|_| p.next_interval(&mut r).as_secs_f64())
            .sum();
        let pooled: f64 = (0..5000)
            .map(|_| p.pooled(6).next_interval(&mut r).as_secs_f64())
            .sum();
        let ratio = solo / pooled;
        assert!((5.0..7.0).contains(&ratio), "speedup ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        MiningProcess::from_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_pool_rejected() {
        MiningProcess::from_rate(1.0).pooled(0);
    }
}
