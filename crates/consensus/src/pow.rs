//! Real Proof-of-Work: nonce search over block headers.

use cshard_ledger::Block;
use cshard_primitives::Hash32;

/// Upper bound on nonce trials before [`mine`] gives up. At the toy
/// difficulties used in examples/tests (≤ 20 bits) the expected search is
/// ≤ ~10⁶ trials, far under this bound; hitting it indicates a
/// misconfigured difficulty rather than bad luck.
pub const MAX_POW_ITERATIONS: u64 = 1 << 28;

/// Searches for a nonce making the block's hash meet its own
/// `difficulty_bits`. Returns the winning hash, or `None` if
/// [`MAX_POW_ITERATIONS`] trials were exhausted.
///
/// The search starts from the block's current `pow_nonce`, so a caller can
/// resume an interrupted search.
pub fn mine(block: &mut Block) -> Option<Hash32> {
    let bits = block.header.difficulty_bits;
    let start = block.header.pow_nonce;
    for trial in 0..MAX_POW_ITERATIONS {
        block.header.pow_nonce = start.wrapping_add(trial);
        let h = block.header.hash();
        if h.meets_difficulty(bits) {
            return Some(h);
        }
    }
    None
}

/// Verifies a block's PoW against an externally required difficulty (which
/// must also match the header's claim, so headers cannot under-promise).
pub fn verify_pow(block: &Block, required_bits: u32) -> bool {
    block.header.difficulty_bits == required_bits && block.hash().meets_difficulty(required_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_ledger::{Block, Transaction};
    use cshard_primitives::{Address, Amount, ContractId, Hash32, MinerId, ShardId, SimTime};

    fn block(bits: u32) -> Block {
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(5),
        );
        let mut b = Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::new(0),
            MinerId::new(0),
            SimTime::from_secs(60),
            bits,
            vec![tx],
        );
        b.header.difficulty_bits = bits;
        b
    }

    #[test]
    fn mines_at_moderate_difficulty() {
        let mut b = block(12);
        let h = mine(&mut b).expect("12 bits is quick");
        assert!(h.meets_difficulty(12));
        assert_eq!(h, b.hash());
        assert!(verify_pow(&b, 12));
    }

    #[test]
    fn zero_difficulty_succeeds_immediately() {
        let mut b = block(0);
        assert!(mine(&mut b).is_some());
        assert_eq!(b.header.pow_nonce, 0, "first nonce already valid");
    }

    #[test]
    fn verification_rejects_wrong_difficulty_claim() {
        let mut b = block(8);
        mine(&mut b).unwrap();
        assert!(verify_pow(&b, 8));
        // Claiming the block under a different requirement fails even if
        // the hash happens to be strong enough.
        assert!(!verify_pow(&b, 4));
        assert!(!verify_pow(&b, 16));
    }

    #[test]
    fn tampering_invalidates_pow() {
        let mut b = block(12);
        mine(&mut b).unwrap();
        b.header.timestamp = SimTime::from_secs(61);
        // Overwhelmingly likely the tampered hash fails 12 bits.
        assert!(!verify_pow(&b, 12));
    }

    #[test]
    fn search_resumes_from_current_nonce() {
        let mut b = block(10);
        mine(&mut b).unwrap();
        let won = b.header.pow_nonce;
        // Restarting from the winning nonce finds it with zero extra work.
        let mut c = b.clone();
        assert!(mine(&mut c).is_some());
        assert_eq!(c.header.pow_nonce, won);
    }

    #[test]
    fn difficulty_increases_search_effort_statistically() {
        // Average winning nonce at 4 bits should be well under that at
        // 10 bits across a few blocks (probabilistic but extremely safe:
        // expectations are 16 vs 1024 trials).
        let total_nonce = |bits: u32| -> u64 {
            (0..8u64)
                .map(|i| {
                    let mut b = block(bits);
                    b.header.timestamp = SimTime::from_secs(i);
                    mine(&mut b).unwrap();
                    b.header.pow_nonce
                })
                .sum()
        };
        assert!(total_nonce(4) < total_nonce(12));
    }
}
