//! Difficulty retargeting (Homestead-style).
//!
//! The paper's private go-Ethereum chain starts at difficulty `0x40000`;
//! geth then adjusts difficulty per block toward a target interval. This
//! module implements the Homestead rule the 1.8.x era used:
//!
//! ```text
//! D(n) = D(parent) + D(parent)/2048 · max(1 − Δt/10, −99)
//! ```
//!
//! (Δt = timestamp gap in seconds; the difficulty-bomb term is irrelevant
//! at private-chain heights and omitted.) Retargeting explains why "more
//! miners" does not linearly speed up a real chain — the network converges
//! to a stable interval regardless of total hash power — which is the
//! hardware-side companion of the Table I plateau.

use crate::difficulty::Difficulty;
use cshard_primitives::SimTime;

/// Minimum difficulty, as in Ethereum (131072 = 0x20000).
pub const MIN_DIFFICULTY: Difficulty = Difficulty(0x20000);

/// The Homestead per-block difficulty update.
pub fn next_difficulty(
    parent: Difficulty,
    parent_time: SimTime,
    child_time: SimTime,
) -> Difficulty {
    let dt = child_time.saturating_since(parent_time).as_secs_f64();
    let adj = (1.0 - (dt / 10.0).floor()).max(-99.0);
    let delta = (parent.0 as f64 / 2048.0 * adj) as i64;
    let next = parent.0 as i64 + delta;
    Difficulty((next.max(MIN_DIFFICULTY.0 as i64)) as u64)
}

/// Simulates retargeting under a fixed total hash rate: each block's
/// interval is the *expected* interval at the current difficulty (the
/// deterministic fluid limit), for `blocks` blocks. Returns the final
/// difficulty and the final expected interval in seconds.
pub fn converge(start: Difficulty, hashrate: f64, blocks: usize) -> (Difficulty, f64) {
    assert!(hashrate > 0.0);
    let mut d = start;
    let mut now = SimTime::ZERO;
    for _ in 0..blocks {
        let interval = d.expected_interval(hashrate);
        let t_next = now.saturating_add(interval);
        d = next_difficulty(d, now, t_next);
        now = t_next;
    }
    (d, d.expected_interval(hashrate).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_blocks_raise_difficulty() {
        let d0 = Difficulty(0x40000);
        let d1 = next_difficulty(d0, SimTime::ZERO, SimTime::from_secs(1));
        assert!(d1 > d0, "{d1:?} !> {d0:?}");
    }

    #[test]
    fn slow_blocks_lower_difficulty_but_clamp() {
        let d0 = Difficulty(0x40000);
        let d1 = next_difficulty(d0, SimTime::ZERO, SimTime::from_secs(60));
        assert!(d1 < d0);
        // Extremely slow: the -99 clamp and the floor apply.
        let d2 = next_difficulty(MIN_DIFFICULTY, SimTime::ZERO, SimTime::from_secs(10_000));
        assert_eq!(d2, MIN_DIFFICULTY);
    }

    #[test]
    fn ten_second_blocks_are_the_fixed_point() {
        let d0 = Difficulty(0x40000);
        // Δt in [10, 20) gives adjustment 0.
        let d1 = next_difficulty(d0, SimTime::ZERO, SimTime::from_secs(12));
        assert_eq!(d1, d0);
    }

    #[test]
    fn convergence_reaches_the_target_band_for_any_hashrate() {
        // Whether one miner or nine, the chain converges to a 10–20 s
        // interval — the "more miners don't speed the chain up" effect.
        // Scale the hash rate so the minimum difficulty stays below the
        // 10 s target (the clamp would otherwise floor slow chains).
        let base_rate = Difficulty::paper_hashrate() * 4.0;
        for miners in [1usize, 4, 9] {
            let (_, interval) = converge(Difficulty(0x40000), base_rate * miners as f64, 5_000);
            assert!(
                (9.0..21.0).contains(&interval),
                "{miners} miners: converged interval {interval:.1}s"
            );
        }
    }

    #[test]
    fn convergence_is_monotone_toward_target_from_both_sides() {
        let rate = Difficulty::paper_hashrate();
        // Start too easy (fast blocks): difficulty climbs.
        let (d_up, _) = converge(MIN_DIFFICULTY, rate * 10.0, 2_000);
        assert!(d_up > MIN_DIFFICULTY);
        // Start too hard (slow blocks): difficulty falls.
        let (d_down, _) = converge(Difficulty(0x4000000), rate, 2_000);
        assert!(d_down < Difficulty(0x4000000));
    }
}
