//! Difficulty arithmetic and testbed calibration.
//!
//! The paper configures its go-Ethereum testbed with hex difficulty values:
//! `0x40000` for the one-block-per-minute experiments (Sec. VI-B1) and
//! `0xd79` for the 76-transactions-per-second ChainSpace comparison
//! (Sec. VI-B2). In Ethereum, difficulty D means an expected D hash trials
//! per block, so block interval = D / hashrate. We keep that semantics.

use cshard_primitives::SimTime;

/// A PoW difficulty: the expected number of hash trials per block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Difficulty(pub u64);

impl Difficulty {
    /// The paper's Sec. VI-B1 setting: `0x40000`, calibrated so one miner
    /// packs one block per minute on a c5.large.
    pub const PAPER_BLOCK_PER_MINUTE: Difficulty = Difficulty(0x40000);

    /// The paper's Sec. VI-B2 setting: `0xd79`, calibrated so one miner
    /// confirms 76 transactions per second.
    pub const PAPER_CHAINSPACE: Difficulty = Difficulty(0xd79);

    /// The hash rate (trials/second) implied by the paper's calibration of
    /// [`Difficulty::PAPER_BLOCK_PER_MINUTE`] to a 60-second interval.
    pub fn paper_hashrate() -> f64 {
        Self::PAPER_BLOCK_PER_MINUTE.0 as f64 / 60.0
    }

    /// Expected block interval for a miner hashing at `hashrate` trials/s.
    pub fn expected_interval(&self, hashrate: f64) -> SimTime {
        assert!(hashrate > 0.0);
        SimTime::from_secs_f64(self.0 as f64 / hashrate)
    }

    /// Block production rate (blocks/second) at a given hash rate.
    pub fn block_rate(&self, hashrate: f64) -> f64 {
        assert!(hashrate > 0.0);
        hashrate / self.0 as f64
    }

    /// The number of leading zero bits whose search effort best
    /// approximates this difficulty (`2^bits ≈ D`), for driving the *real*
    /// PoW of [`crate::pow`] at comparable effort.
    pub fn to_bits(&self) -> u32 {
        // Round log2 to the nearest integer (in log space, so 3 → 2 bits).
        let d = self.0.max(1) as f64;
        d.log2().round() as u32
    }

    /// Difficulty equivalent of a leading-zero-bits target.
    pub fn from_bits(bits: u32) -> Difficulty {
        assert!(bits < 64, "bits difficulty beyond u64 range");
        Difficulty(1u64 << bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibrations() {
        let hr = Difficulty::paper_hashrate();
        let interval = Difficulty::PAPER_BLOCK_PER_MINUTE.expected_interval(hr);
        assert_eq!(interval, SimTime::from_secs(60));
        // At the same hash rate, the ChainSpace difficulty confirms blocks
        // much faster (sub-second).
        let fast = Difficulty::PAPER_CHAINSPACE.expected_interval(hr);
        assert!(fast < SimTime::from_secs(1));
    }

    #[test]
    fn block_rate_is_inverse_interval() {
        let d = Difficulty(600);
        let rate = d.block_rate(10.0);
        let interval = d.expected_interval(10.0);
        assert!((rate * interval.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bits_round_trips_powers_of_two() {
        for bits in [0u32, 1, 8, 18, 30] {
            assert_eq!(Difficulty::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn to_bits_rounds_to_nearest() {
        assert_eq!(Difficulty(1).to_bits(), 0);
        assert_eq!(Difficulty(3).to_bits(), 2); // 3 closer to 4 than 2
        assert_eq!(Difficulty(5).to_bits(), 2); // 5 closer to 4 than 8
        assert_eq!(Difficulty(0x40000).to_bits(), 18);
    }

    #[test]
    #[should_panic]
    fn from_bits_rejects_64() {
        Difficulty::from_bits(64);
    }
}
