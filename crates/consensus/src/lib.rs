//! Proof-of-Work consensus.
//!
//! Two layers, used by different experiment scales:
//!
//! * [`pow`] — a *real* PoW: nonce search over the block-header SHA-256
//!   until the hash shows the required leading zero bits. Used by the
//!   examples and small integration tests, where actually grinding hashes
//!   is cheap and demonstrates the full pipeline.
//! * [`process`] — the *statistical* model of the same thing: block
//!   discovery as a Poisson process whose rate is hash power divided by
//!   difficulty. Used by the evaluation harness, which needs thousands of
//!   blocks per run (the paper's testbed mines one block per minute on a
//!   c5.large; we calibrate to the same rates, see [`difficulty`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod difficulty;
pub mod pow;
pub mod process;
pub mod retarget;

pub use difficulty::Difficulty;
pub use pow::{mine, verify_pow, MAX_POW_ITERATIONS};
pub use process::MiningProcess;
pub use retarget::next_difficulty;
