//! A small, dependency-free JSON library for the workspace's snapshots,
//! workload traces, and experiment reports.
//!
//! Design points that matter to callers:
//!
//! * [`Number`] keeps unsigned 64-bit integers exact ([`Number::U64`]):
//!   balances and fees are `u64` and must survive a round trip without the
//!   precision loss an `f64`-only model would cause above 2^53.
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   written reports are stable and diffable.
//! * The parser is a strict recursive-descent over the RFC 8259 grammar;
//!   errors carry a byte offset.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// A JSON number, keeping integers exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
}

impl Number {
    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// A JSON document or fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when missing.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact single-line JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Pretty JSON, two-space indent.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::U64(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::U64(v as u64))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::U64(v as u64))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::Number(Number::U64(v as u64))
        } else {
            Value::Number(Number::I64(v))
        }
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F64(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builds an object literal in insertion order.
#[derive(Default)]
pub struct ObjectBuilder {
    pairs: Vec<(String, Value)>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a member.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.pairs.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.pairs)
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U64(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::I64(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::F64(n)) => {
            if n.is_finite() {
                // Keep a trailing ".0" so integral floats stay floats on re-read.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("bad number"));
        }
        if !float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I64(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_u64_precision() {
        let big = u64::MAX - 3;
        let v = ObjectBuilder::new()
            .field("balance", big)
            .field("note", "z\"ig\\zag\n")
            .field("ratio", 0.25)
            .field("flag", true)
            .field("nothing", Value::Null)
            .field("list", vec![1u64, 2, 3])
            .build();
        let text = v.to_string_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("balance").unwrap().as_u64(), Some(big));
        assert_eq!(back.get("note").unwrap().as_str(), Some("z\"ig\\zag\n"));
        assert_eq!(back.get("ratio").unwrap().as_f64(), Some(0.25));
        assert_eq!(back.get("flag").unwrap().as_bool(), Some(true));
        assert!(back.get("nothing").unwrap().is_null());
        assert_eq!(back.get("list").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(back, v);
    }

    #[test]
    fn compact_output_is_single_line() {
        let v = ObjectBuilder::new()
            .field("a", 1u64)
            .field("b", vec![2u64])
            .build();
        assert_eq!(v.to_string_compact(), r#"{"a":1,"b":[2]}"#);
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = parse(r#"[-5, -5.5, 1e3, 18446744073709551615]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_i64(), Some(-5));
        assert_eq!(items[1].as_f64(), Some(-5.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert_eq!(items[3].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\"}", "{\"a\":1} x", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::from(2.0);
        let text = v.to_string_compact();
        assert_eq!(text, "2.0");
        assert!(matches!(
            parse(&text).unwrap(),
            Value::Number(Number::F64(_))
        ));
    }
}
