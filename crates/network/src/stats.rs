//! Cross-shard communication accounting.

use cshard_primitives::ShardId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a communication round was for — lets experiments slice the totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommKind {
    /// Cross-shard transaction validation (ChainSpace-style consensus).
    CrossShardValidation,
    /// Submitting per-shard statistics to the verifiable leader
    /// (parameter unification, step 1).
    StatSubmission,
    /// The leader's broadcast of unified parameters (step 2).
    ParameterBroadcast,
    /// One batched settlement flush: a crosslink carrying every pending
    /// cross-shard transfer of one `(source, dest)` shard pair
    /// (`cshard-settle`). Batched runs book one of these per flush
    /// instead of per-transaction validation rounds.
    Crosslink,
    /// Anything else (labelled ad hoc in tests).
    Other,
}

#[derive(Debug, Default)]
struct Inner {
    per_shard: BTreeMap<ShardId, u64>,
    per_kind: BTreeMap<CommKind, u64>,
    total: u64,
}

/// Thread-safe communication counter, shared by every component of a run.
///
/// A "communication time" is one round of cross-shard messaging, counted
/// once per participating shard — the unit Fig. 4 reports.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    inner: Arc<Mutex<Inner>>,
}

impl CommStats {
    /// A fresh, zeroed counter.
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Records one communication round in which `shard` participated.
    pub fn record(&self, shard: ShardId, kind: CommKind) {
        self.record_many(shard, kind, 1);
    }

    /// Records `count` rounds at once.
    pub fn record_many(&self, shard: ShardId, kind: CommKind, count: u64) {
        if count == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        *inner.per_shard.entry(shard).or_insert(0) += count;
        *inner.per_kind.entry(kind).or_insert(0) += count;
        inner.total += count;
    }

    /// Total communication rounds across all shards.
    pub fn total(&self) -> u64 {
        self.inner.lock().total
    }

    /// Rounds in which a specific shard participated.
    pub fn for_shard(&self, shard: ShardId) -> u64 {
        self.inner
            .lock()
            .per_shard
            .get(&shard)
            .copied()
            .unwrap_or(0)
    }

    /// Rounds of a specific kind.
    pub fn for_kind(&self, kind: CommKind) -> u64 {
        self.inner.lock().per_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Average rounds per shard over `shard_count` shards — the y-axis of
    /// Fig. 4(b)/(c).
    pub fn per_shard_average(&self, shard_count: usize) -> f64 {
        assert!(shard_count > 0);
        self.total() as f64 / shard_count as f64
    }

    /// Maximum rounds over the shards that communicated at all.
    pub fn per_shard_max(&self) -> u64 {
        self.inner
            .lock()
            .per_shard
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Resets every counter (reused between experiment repetitions).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.per_shard.clear();
        inner.per_kind.clear();
        inner.total = 0;
    }

    /// A point-in-time copy of every counter. Experiments bracket a run
    /// with snapshots instead of re-reading individual kinds ad hoc, and
    /// diff them with [`CommSnapshot::since`] / [`CommStats::delta`].
    pub fn snapshot(&self) -> CommSnapshot {
        let inner = self.inner.lock();
        CommSnapshot {
            per_shard: inner.per_shard.clone(),
            per_kind: inner.per_kind.clone(),
            total: inner.total,
        }
    }

    /// What was recorded since `earlier` was taken — per shard, per kind
    /// and in total. Counters are monotone, so the delta saturates at
    /// zero only if `earlier` came from a different (or reset) counter.
    pub fn delta(&self, earlier: &CommSnapshot) -> CommSnapshot {
        self.snapshot().since(earlier)
    }
}

/// An immutable copy of a [`CommStats`] counter set, taken with
/// [`CommStats::snapshot`]. Supports the same per-shard/per-kind reads as
/// the live counter plus subtraction ([`CommSnapshot::since`]) for
/// measuring one phase of a longer run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    per_shard: BTreeMap<ShardId, u64>,
    per_kind: BTreeMap<CommKind, u64>,
    total: u64,
}

impl CommSnapshot {
    /// Total rounds at snapshot time.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rounds in which `shard` participated.
    pub fn for_shard(&self, shard: ShardId) -> u64 {
        self.per_shard.get(&shard).copied().unwrap_or(0)
    }

    /// Rounds of a specific kind.
    pub fn for_kind(&self, kind: CommKind) -> u64 {
        self.per_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Average rounds per shard over `shard_count` shards (Fig. 4(b)'s
    /// y-axis, read off a snapshot instead of the live counter).
    pub fn per_shard_average(&self, shard_count: usize) -> f64 {
        assert!(shard_count > 0);
        self.total as f64 / shard_count as f64
    }

    /// The counter-wise difference `self - earlier`, dropping zero
    /// entries (saturating: counters are monotone under one live
    /// counter, so a negative difference only means mismatched sources).
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        let diff_shard: BTreeMap<ShardId, u64> = self
            .per_shard
            .iter()
            .map(|(k, v)| (*k, v.saturating_sub(earlier.for_shard(*k))))
            .filter(|&(_, v)| v > 0)
            .collect();
        let diff_kind: BTreeMap<CommKind, u64> = self
            .per_kind
            .iter()
            .map(|(k, v)| (*k, v.saturating_sub(earlier.for_kind(*k))))
            .filter(|&(_, v)| v > 0)
            .collect();
        CommSnapshot {
            per_shard: diff_shard,
            per_kind: diff_kind,
            total: self.total.saturating_sub(earlier.total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let s = CommStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.for_shard(ShardId::new(0)), 0);
        assert_eq!(s.per_shard_max(), 0);
    }

    #[test]
    fn records_accumulate_by_shard_and_kind() {
        let s = CommStats::new();
        s.record(ShardId::new(0), CommKind::CrossShardValidation);
        s.record(ShardId::new(0), CommKind::CrossShardValidation);
        s.record(ShardId::new(1), CommKind::StatSubmission);
        assert_eq!(s.total(), 3);
        assert_eq!(s.for_shard(ShardId::new(0)), 2);
        assert_eq!(s.for_shard(ShardId::new(1)), 1);
        assert_eq!(s.for_kind(CommKind::CrossShardValidation), 2);
        assert_eq!(s.for_kind(CommKind::ParameterBroadcast), 0);
    }

    #[test]
    fn record_many_and_zero() {
        let s = CommStats::new();
        s.record_many(ShardId::new(2), CommKind::Other, 5);
        s.record_many(ShardId::new(2), CommKind::Other, 0);
        assert_eq!(s.total(), 5);
        assert_eq!(s.per_shard_max(), 5);
    }

    #[test]
    fn per_shard_average() {
        let s = CommStats::new();
        for i in 0..9 {
            s.record_many(ShardId::new(i), CommKind::StatSubmission, 2);
        }
        assert!((s.per_shard_average(9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state() {
        let s = CommStats::new();
        let t = s.clone();
        t.record(ShardId::MAX_SHARD, CommKind::Other);
        assert_eq!(s.total(), 1);
        assert_eq!(s.for_shard(ShardId::MAX_SHARD), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = CommStats::new();
        s.record(ShardId::new(0), CommKind::Other);
        s.reset();
        assert_eq!(s.total(), 0);
        assert_eq!(s.for_shard(ShardId::new(0)), 0);
    }

    #[test]
    fn snapshot_copies_all_counters() {
        let s = CommStats::new();
        s.record(ShardId::new(0), CommKind::CrossShardValidation);
        s.record_many(ShardId::new(1), CommKind::Crosslink, 4);
        let snap = s.snapshot();
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.for_shard(ShardId::new(0)), 1);
        assert_eq!(snap.for_shard(ShardId::new(1)), 4);
        assert_eq!(snap.for_kind(CommKind::Crosslink), 4);
        assert_eq!(snap.for_kind(CommKind::Other), 0);
        assert!((snap.per_shard_average(5) - 1.0).abs() < 1e-12);
        // The snapshot is a copy: later records do not change it.
        s.record(ShardId::new(0), CommKind::Other);
        assert_eq!(snap.total(), 5);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn delta_isolates_one_phase() {
        let s = CommStats::new();
        s.record_many(ShardId::new(0), CommKind::StatSubmission, 3);
        let before = s.snapshot();
        s.record_many(ShardId::new(0), CommKind::StatSubmission, 2);
        s.record(ShardId::new(2), CommKind::Crosslink);
        let d = s.delta(&before);
        assert_eq!(d.total(), 3);
        assert_eq!(d.for_shard(ShardId::new(0)), 2);
        assert_eq!(d.for_shard(ShardId::new(2)), 1);
        assert_eq!(d.for_kind(CommKind::StatSubmission), 2);
        assert_eq!(d.for_kind(CommKind::Crosslink), 1);
        assert_eq!(d.for_kind(CommKind::CrossShardValidation), 0);
        // since() is the same operation on two snapshots.
        assert_eq!(s.snapshot().since(&before), d);
    }

    #[test]
    fn empty_delta_is_default() {
        let s = CommStats::new();
        s.record(ShardId::new(0), CommKind::Other);
        let snap = s.snapshot();
        assert_eq!(s.delta(&snap), CommSnapshot::default());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = CommStats::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record(ShardId::new(t), CommKind::Other);
                    }
                });
            }
        });
        assert_eq!(s.total(), 4000);
    }
}
