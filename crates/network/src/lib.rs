//! Simulated peer-to-peer network: latency modelling and — crucially for
//! the paper's evaluation — **communication accounting**.
//!
//! Fig. 4(b)/(c) measure "communication times per shard": how many rounds of
//! cross-shard communication each scheme performs. The contract-centric
//! design needs zero during validation and exactly two per shard during a
//! merge (submit sizes → receive broadcast); ChainSpace needs at least two
//! rounds per cross-shard transaction. [`CommStats`] is the single ledger
//! all schemes report into, so the comparison is apples-to-apples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gossip;
pub mod latency;
pub mod partition;
pub mod stats;

pub use gossip::GossipNet;
pub use latency::LatencyModel;
pub use partition::{PartitionModel, PartitionWindow};
pub use stats::{CommKind, CommSnapshot, CommStats};
