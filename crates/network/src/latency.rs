//! Network latency model for block propagation.
//!
//! Table I's plateau comes from propagation: two blocks found within the
//! propagation window of each other are in conflict, and since vanilla
//! miners select identical transaction sets the loser's work is pure waste.
//! The model here is the standard constant-plus-jitter link delay.

use cshard_primitives::SimTime;

/// A broadcast latency model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Fixed one-way propagation delay.
    pub base: SimTime,
    /// Additional uniform jitter in `[0, jitter]`, sampled per delivery.
    pub jitter: SimTime,
}

impl LatencyModel {
    /// A zero-latency network (pure-algorithm experiments).
    pub const INSTANT: LatencyModel = LatencyModel {
        base: SimTime(0),
        jitter: SimTime(0),
    };

    /// A typical wide-area blockchain gossip delay: ~2 s base with up to
    /// 1 s jitter (block relay measurements for Ethereum-like networks).
    pub fn wide_area() -> Self {
        LatencyModel {
            base: SimTime::from_millis(2000),
            jitter: SimTime::from_millis(1000),
        }
    }

    /// A constant-delay model.
    pub fn constant(delay: SimTime) -> Self {
        LatencyModel {
            base: delay,
            jitter: SimTime::ZERO,
        }
    }

    /// Samples one delivery delay given a uniform draw `u ∈ [0, 1)`.
    ///
    /// Taking the draw as a parameter (rather than an RNG) keeps this type
    /// pure and lets callers use their own seeded streams. Extreme models
    /// saturate at [`SimTime::MAX`] instead of overflowing — a delay can
    /// push an event past the end of representable time, never wrap it.
    pub fn delay(&self, u: f64) -> SimTime {
        assert!((0.0..1.0).contains(&u), "u must be in [0,1)");
        self.base.saturating_add(SimTime::from_millis(
            (self.jitter.as_millis() as f64 * u) as u64,
        ))
    }

    /// The worst-case delivery delay — the conflict window used by the
    /// stale-block rule. Saturates at [`SimTime::MAX`] like
    /// [`LatencyModel::delay`].
    pub fn max_delay(&self) -> SimTime {
        self.base.saturating_add(self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_is_zero() {
        assert_eq!(LatencyModel::INSTANT.delay(0.5), SimTime::ZERO);
        assert_eq!(LatencyModel::INSTANT.max_delay(), SimTime::ZERO);
    }

    #[test]
    fn constant_has_no_jitter() {
        let m = LatencyModel::constant(SimTime::from_millis(500));
        assert_eq!(m.delay(0.0), SimTime::from_millis(500));
        assert_eq!(m.delay(0.999), SimTime::from_millis(500));
    }

    #[test]
    fn jitter_spans_the_range() {
        let m = LatencyModel::wide_area();
        assert_eq!(m.delay(0.0), SimTime::from_millis(2000));
        let top = m.delay(0.999_999);
        assert!(top >= SimTime::from_millis(2990));
        assert!(top <= m.max_delay());
    }

    #[test]
    fn delay_is_monotone_in_u() {
        let m = LatencyModel::wide_area();
        assert!(m.delay(0.2) <= m.delay(0.8));
    }

    #[test]
    #[should_panic(expected = "u must be in")]
    fn out_of_range_draw_panics() {
        LatencyModel::wide_area().delay(1.0);
    }

    #[test]
    fn extreme_latencies_saturate_instead_of_overflowing() {
        let m = LatencyModel {
            base: SimTime::MAX,
            jitter: SimTime::from_secs(1),
        };
        assert_eq!(m.delay(0.999), SimTime::MAX);
        assert_eq!(m.max_delay(), SimTime::MAX);
    }
}
