//! Network partitions: delivery blackout windows over a base latency.
//!
//! The paper's unification scheme assumes broadcasts eventually reach every
//! miner (Sec. IV-C); the fault-injection subsystem needs the complement —
//! spans during which a shard's broadcast traffic *cannot* complete. A
//! [`PartitionModel`] is a base [`LatencyModel`] plus a set of half-open
//! blackout windows `[from, until)`: a block broadcast while a window is
//! active (or whose delivery would land inside one) only reaches the whole
//! shard once the partition heals, plus the residual link delay. The model
//! is a pure function of `(now, u)` — no state, no clocks — so partitioned
//! runs replay bit-identically like everything else.

use crate::latency::LatencyModel;
use cshard_primitives::{Error, SimTime};

/// One blackout span: deliveries cannot complete in `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// When the partition starts (inclusive).
    pub from: SimTime,
    /// When it heals (exclusive — deliveries complete from here on).
    pub until: SimTime,
}

impl PartitionWindow {
    /// Whether `t` falls inside the blackout.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }

    /// The window's span.
    pub fn span(&self) -> SimTime {
        self.until.saturating_since(self.from)
    }
}

/// A base latency model overlaid with partition windows.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionModel {
    /// Link behaviour while the shard is connected.
    pub base: LatencyModel,
    /// Blackout windows, kept sorted by start time and non-overlapping
    /// (validated by [`PartitionModel::new`]).
    windows: Vec<PartitionWindow>,
}

impl PartitionModel {
    /// Builds a partition model, sorting the windows and rejecting empty
    /// (`from >= until`) or overlapping spans with a typed error.
    pub fn new(base: LatencyModel, mut windows: Vec<PartitionWindow>) -> Result<Self, Error> {
        windows.sort_by_key(|w| (w.from, w.until));
        for w in &windows {
            if w.from >= w.until {
                return Err(Error::Config {
                    field: "partition_window",
                    reason: format!("empty window: from {} to {}", w.from, w.until),
                });
            }
        }
        for pair in windows.windows(2) {
            if pair[1].from < pair[0].until {
                return Err(Error::Config {
                    field: "partition_window",
                    reason: format!(
                        "overlapping windows: [{}, {}) and [{}, {})",
                        pair[0].from, pair[0].until, pair[1].from, pair[1].until
                    ),
                });
            }
        }
        Ok(PartitionModel { base, windows })
    }

    /// The validated blackout windows, sorted by start time.
    pub fn windows(&self) -> &[PartitionWindow] {
        &self.windows
    }

    /// When a block broadcast at `now` reaches the whole shard, given a
    /// uniform draw `u ∈ [0, 1)` for the base link delay.
    ///
    /// Outside every window this is exactly the base model. A broadcast
    /// started inside a window — or whose nominal delivery would land
    /// inside one — completes only after the partition heals, plus the
    /// residual link delay (the same sampled draw: the healed shard
    /// re-floods over the same links). Windows are walked in order, so a
    /// delivery pushed past one heal that lands in a later blackout keeps
    /// getting deferred. Saturates at [`SimTime::MAX`].
    pub fn delivery_at(&self, now: SimTime, u: f64) -> SimTime {
        let hop = self.base.delay(u);
        let mut at = now.saturating_add(hop);
        for w in &self.windows {
            if w.contains(at) || w.contains(now) {
                at = at.max(w.until.saturating_add(hop));
            }
        }
        at
    }

    /// The worst-case delivery delay: the base model's maximum plus the
    /// longest blackout span (a block broadcast the instant a partition
    /// starts waits the whole window out).
    pub fn max_delay(&self) -> SimTime {
        let longest = self
            .windows
            .iter()
            .map(PartitionWindow::span)
            .max()
            .unwrap_or(SimTime::ZERO);
        self.base.max_delay().saturating_add(longest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn window(from: u64, until: u64) -> PartitionWindow {
        PartitionWindow {
            from: ms(from),
            until: ms(until),
        }
    }

    fn model(windows: Vec<PartitionWindow>) -> PartitionModel {
        PartitionModel::new(LatencyModel::constant(ms(100)), windows).expect("valid windows")
    }

    #[test]
    fn no_windows_is_the_base_model() {
        let m = model(vec![]);
        assert_eq!(m.delivery_at(ms(500), 0.0), ms(600));
        assert_eq!(m.max_delay(), ms(100));
    }

    #[test]
    fn broadcast_inside_a_window_waits_for_the_heal() {
        let m = model(vec![window(1000, 5000)]);
        // Found at t=2s, mid-partition: delivers at heal + link delay.
        assert_eq!(m.delivery_at(ms(2000), 0.0), ms(5100));
        // Found after the heal: base behaviour again.
        assert_eq!(m.delivery_at(ms(5000), 0.0), ms(5100));
    }

    #[test]
    fn delivery_landing_inside_a_window_is_deferred() {
        let m = model(vec![window(1000, 5000)]);
        // Found at t=950ms, nominal delivery 1050ms lands in the blackout.
        assert_eq!(m.delivery_at(ms(950), 0.0), ms(5100));
        // Found at t=890ms, nominal delivery 990ms beats the partition.
        assert_eq!(m.delivery_at(ms(890), 0.0), ms(990));
    }

    #[test]
    fn chained_windows_defer_repeatedly() {
        let m = model(vec![window(1000, 5000), window(5050, 6000)]);
        // Deferred past the first heal (5100) → lands in the second
        // window → deferred past its heal too.
        assert_eq!(m.delivery_at(ms(2000), 0.0), ms(6100));
    }

    #[test]
    fn max_delay_adds_the_longest_span() {
        let m = model(vec![window(0, 400), window(1000, 8000)]);
        assert_eq!(m.max_delay(), ms(100 + 7000));
    }

    #[test]
    fn empty_and_overlapping_windows_rejected() {
        let empty = PartitionModel::new(LatencyModel::INSTANT, vec![window(5, 5)]);
        assert!(empty.is_err());
        let overlap =
            PartitionModel::new(LatencyModel::INSTANT, vec![window(0, 10), window(5, 20)]);
        assert!(overlap.is_err());
    }

    #[test]
    fn windows_are_sorted_on_construction() {
        let m = model(vec![window(5000, 6000), window(1000, 2000)]);
        assert_eq!(m.windows()[0].from, ms(1000));
        assert_eq!(m.windows()[1].from, ms(5000));
    }
}
