//! Gossip (flooding) propagation over a random peer graph.
//!
//! The runtime's conflict window abstracts "how long until the whole shard
//! has seen a block". This module computes that quantity from first
//! principles: nodes flood messages to their peers over per-link delays,
//! and [`GossipNet::broadcast`] returns each node's delivery time. The
//! `abl-window` ablation uses the resulting delay spread to justify the
//! window parameter; tests pin the classic O(log n) depth behaviour.

use crate::latency::LatencyModel;
use cshard_primitives::SimTime;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;

/// A static random-regular-ish peer graph with per-link latency.
#[derive(Clone, Debug)]
pub struct GossipNet {
    /// Adjacency lists.
    peers: Vec<Vec<usize>>,
    latency: LatencyModel,
    seed: u64,
}

impl GossipNet {
    /// Builds a connected graph of `nodes` nodes where each node picks
    /// `degree` random outgoing peers (links are used bidirectionally, so
    /// effective degree ≈ 2·degree). A ring backbone guarantees
    /// connectivity.
    pub fn random(nodes: usize, degree: usize, latency: LatencyModel, seed: u64) -> Self {
        assert!(nodes >= 2, "a network needs at least two nodes");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut peers = vec![Vec::new(); nodes];
        // Ring backbone.
        for i in 0..nodes {
            let j = (i + 1) % nodes;
            peers[i].push(j);
            peers[j].push(i);
        }
        // Random extra links.
        for i in 0..nodes {
            for _ in 0..degree {
                let j = rng.gen_range(0..nodes);
                if j != i && !peers[i].contains(&j) {
                    peers[i].push(j);
                    peers[j].push(i);
                }
            }
        }
        GossipNet {
            peers,
            latency,
            seed,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the network has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Floods a message from `origin`; returns per-node delivery times
    /// (origin = 0). Deterministic per (graph seed, message id).
    pub fn broadcast(&self, origin: usize, message_id: u64) -> Vec<SimTime> {
        assert!(origin < self.len());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ message_id.wrapping_mul(0x9E37));
        let mut delivered: Vec<Option<SimTime>> = vec![None; self.len()];
        // Min-heap on (time, node) via Reverse.
        let mut heap: BinaryHeap<std::cmp::Reverse<(SimTime, usize)>> = BinaryHeap::new();
        heap.push(std::cmp::Reverse((SimTime::ZERO, origin)));
        while let Some(std::cmp::Reverse((t, node))) = heap.pop() {
            if delivered[node].is_some() {
                continue;
            }
            delivered[node] = Some(t);
            for &peer in &self.peers[node] {
                if delivered[peer].is_none() {
                    let hop = self.latency.delay(rng.gen::<f64>() * 0.999_999);
                    heap.push(std::cmp::Reverse((t + hop, peer)));
                }
            }
        }
        delivered
            .into_iter()
            .map(|d| d.expect("ring backbone keeps the graph connected"))
            .collect()
    }

    /// The time by which every node has the message — the natural conflict
    /// window of a shard using this network.
    pub fn full_coverage_time(&self, origin: usize, message_id: u64) -> SimTime {
        self.broadcast(origin, message_id)
            .into_iter()
            .max()
            .expect("non-empty")
    }

    /// Median delivery time.
    pub fn median_delivery(&self, origin: usize, message_id: u64) -> SimTime {
        let mut times = self.broadcast(origin, message_id);
        times.sort_unstable();
        times[times.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: usize) -> GossipNet {
        GossipNet::random(
            nodes,
            3,
            LatencyModel::constant(SimTime::from_millis(100)),
            7,
        )
    }

    #[test]
    fn everyone_receives() {
        let g = net(50);
        let times = g.broadcast(0, 1);
        assert_eq!(times.len(), 50);
        assert_eq!(times[0], SimTime::ZERO);
        assert!(times.iter().skip(1).all(|&t| t > SimTime::ZERO));
    }

    #[test]
    fn deterministic_per_message() {
        let g = net(30);
        assert_eq!(g.broadcast(3, 9), g.broadcast(3, 9));
        // With jitter, different messages draw different hop delays.
        let j = GossipNet::random(30, 3, LatencyModel::wide_area(), 7);
        assert_eq!(j.broadcast(3, 9), j.broadcast(3, 9));
        assert_ne!(j.broadcast(3, 9), j.broadcast(3, 10));
    }

    #[test]
    fn coverage_grows_logarithmically() {
        // With constant 100 ms hops, coverage time ≈ eccentricity × 100 ms;
        // doubling nodes four times should much-less-than-double it.
        let small = net(32).full_coverage_time(0, 1);
        let large = net(512).full_coverage_time(0, 1);
        assert!(large < small + small, "32: {small}, 512: {large}");
        // And both are a small number of hops.
        assert!(large <= SimTime::from_millis(100 * 12), "{large}");
    }

    #[test]
    fn jitter_spreads_delivery() {
        let g = GossipNet::random(100, 3, LatencyModel::wide_area(), 5);
        let times = g.broadcast(0, 2);
        let max = times.iter().max().unwrap();
        let median = g.median_delivery(0, 2);
        assert!(*max > median);
    }

    #[test]
    fn origin_choice_does_not_break_coverage() {
        let g = net(40);
        for origin in [0usize, 17, 39] {
            let t = g.full_coverage_time(origin, 3);
            assert!(t > SimTime::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn degenerate_network_rejected() {
        GossipNet::random(1, 2, LatencyModel::INSTANT, 0);
    }
}
