//! Property tests for the network layer: the latency model and gossip
//! flood must be pure functions of their seeds, never produce negative or
//! wrapped delays, and respect their own declared bounds. These are the
//! schedule-level invariants the fault subsystem leans on — a partition
//! or delay rule composed over a latency model inherits them.

use cshard_network::{GossipNet, LatencyModel, PartitionModel, PartitionWindow};
use cshard_primitives::SimTime;
use proptest::prelude::*;

fn arb_latency() -> impl Strategy<Value = LatencyModel> {
    // Millisecond ranges up to ~28 hours keep products far from
    // saturation so the bound checks below are exact.
    (0u64..100_000_000, 0u64..100_000_000).prop_map(|(base, jitter)| LatencyModel {
        base: SimTime::from_millis(base),
        jitter: SimTime::from_millis(jitter),
    })
}

proptest! {
    /// `delay(u)` stays inside `[base, base + jitter]` for every valid
    /// draw — never negative (SimTime is unsigned by construction, so the
    /// real hazard is wrap-around) and never past `max_delay`.
    #[test]
    fn delay_is_bounded_by_base_and_max(model in arb_latency(), u_m in 0u64..1_000_000) {
        let u = u_m as f64 / 1_000_000.0;
        let d = model.delay(u);
        prop_assert!(d >= model.base);
        prop_assert!(d <= model.max_delay());
    }

    /// `delay` is monotone in the uniform draw: a larger draw never means
    /// a shorter delay (the jitter term is a scaled identity).
    #[test]
    fn delay_is_monotone_in_the_draw(model in arb_latency(), a_m in 0u64..1_000_000, b_m in 0u64..1_000_000) {
        let (a, b) = (a_m as f64 / 1_000_000.0, b_m as f64 / 1_000_000.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.delay(lo) <= model.delay(hi));
    }

    /// Saturation: even at `SimTime::MAX` base, any draw yields `MAX`,
    /// not a wrapped small value.
    #[test]
    fn extreme_models_saturate(u_m in 0u64..1_000_000, jitter in 0u64..10_000_000) {
        let u = u_m as f64 / 1_000_000.0;
        let m = LatencyModel { base: SimTime::MAX, jitter: SimTime::from_millis(jitter) };
        prop_assert_eq!(m.delay(u), SimTime::MAX);
        prop_assert_eq!(m.max_delay(), SimTime::MAX);
    }

    /// The same `(graph seed, message id)` pair produces an identical
    /// delivery schedule — the determinism contract replays rely on.
    #[test]
    fn gossip_schedule_is_a_pure_function_of_seeds(
        nodes in 2usize..60,
        degree in 0usize..5,
        seed in any::<u64>(),
        msg in any::<u64>(),
    ) {
        let net = GossipNet::random(nodes, degree, LatencyModel::wide_area(), seed);
        let a = net.broadcast(0, msg);
        let b = net.broadcast(0, msg);
        prop_assert_eq!(a, b);
        // Rebuilding the graph from the same seed reproduces it too.
        let rebuilt = GossipNet::random(nodes, degree, LatencyModel::wide_area(), seed);
        prop_assert_eq!(net.broadcast(0, msg), rebuilt.broadcast(0, msg));
    }

    /// Every node is reached (the ring backbone keeps the graph
    /// connected), the origin at time zero and everyone else strictly
    /// later under a positive-delay model.
    #[test]
    fn gossip_reaches_every_node(
        nodes in 2usize..60,
        degree in 0usize..5,
        seed in any::<u64>(),
        origin in 0usize..60,
    ) {
        let origin = origin % nodes;
        let net = GossipNet::random(nodes, degree, LatencyModel::wide_area(), seed);
        let times = net.broadcast(origin, 1);
        prop_assert_eq!(times.len(), nodes);
        prop_assert_eq!(times[origin], SimTime::ZERO);
        for (i, &t) in times.iter().enumerate() {
            if i != origin {
                prop_assert!(t > SimTime::ZERO, "node {} free delivery", i);
            }
        }
    }

    /// A partition never delivers *into* a blackout window, and deliveries
    /// are never earlier than the base model alone would schedule them.
    #[test]
    fn partition_defers_but_never_hastens(
        base_ms in 1u64..5_000,
        now_s in 0u64..100,
        from_s in 0u64..100,
        span_s in 1u64..100,
        u_m in 0u64..1_000_000,
    ) {
        let u = u_m as f64 / 1_000_000.0;
        let base = LatencyModel::constant(SimTime::from_millis(base_ms));
        let window = PartitionWindow {
            from: SimTime::from_secs(from_s),
            until: SimTime::from_secs(from_s + span_s),
        };
        let model = PartitionModel::new(base, vec![window]).expect("one window is valid");
        let now = SimTime::from_secs(now_s);
        let at = model.delivery_at(now, u);
        prop_assert!(at >= base.delay(u) + now, "partition hastened a delivery");
        prop_assert!(
            !(window.from <= at && at < window.until),
            "delivered at {} inside blackout [{}, {})", at, window.from, window.until
        );
    }
}
