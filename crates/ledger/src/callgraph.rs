//! The user↔contract call graph.
//!
//! Sec. III-C: to decide whether a sender "is only involved in the current
//! shard", miners "maintain the call graph among smart contracts and users
//! locally. In this way, miners can check the call graph instead of remotely
//! referring to the whole history." This module is that structure: it is fed
//! every observed transaction and classifies each sender as
//! single-contract, multi-contract, or direct-transacting — the predicate
//! that decides which shard a transaction belongs to (Sec. III-A).

use crate::transaction::{Transaction, TxKind};
use cshard_primitives::{Address, ContractId};
use std::collections::{BTreeMap, BTreeSet};

/// How a sender participates in the system — the three cases of Fig. 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderClass {
    /// Never seen — no history constrains it yet.
    Unknown,
    /// Participates in exactly one contract and never transacted directly
    /// (Fig. 1(a)): transactions validatable inside that contract's shard.
    SingleContract(ContractId),
    /// Participates in two or more contracts (Fig. 1(b)): must be handled
    /// by the MaxShard.
    MultiContract,
    /// Has sent direct user-to-user or multi-input transfers (Fig. 1(c)):
    /// must be handled by the MaxShard.
    Direct,
}

/// Per-sender participation record.
#[derive(Clone, Debug, Default)]
struct Participation {
    contracts: BTreeSet<ContractId>,
    direct: bool,
}

/// The call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    senders: BTreeMap<Address, Participation>,
}

impl CallGraph {
    /// An empty call graph.
    pub fn new() -> Self {
        CallGraph::default()
    }

    /// Records one observed transaction.
    pub fn observe(&mut self, tx: &Transaction) {
        let mut dirty = BTreeSet::new();
        self.observe_tracking(tx, &mut dirty);
    }

    /// Records one transaction, adding every address whose classification
    /// inputs *changed* (a new contract in its participation set, or a
    /// fresh direct-transacting flag — including multi-input side effects
    /// on input accounts) to `dirty`.
    ///
    /// [`CallGraph::classify`] is a pure function of the participation
    /// record, so an address absent from `dirty` is guaranteed to classify
    /// exactly as it did before the observation — the invariant that lets
    /// the pipeline's classify stage carry cached assignments forward.
    fn observe_tracking(&mut self, tx: &Transaction, dirty: &mut BTreeSet<Address>) {
        let p = self.senders.entry(tx.sender).or_default();
        match &tx.kind {
            TxKind::ContractCall { contract, .. } => {
                if p.contracts.insert(*contract) {
                    dirty.insert(tx.sender);
                }
            }
            TxKind::DirectTransfer { .. } => {
                if !p.direct {
                    p.direct = true;
                    dirty.insert(tx.sender);
                }
            }
            TxKind::MultiInput { inputs, .. } => {
                // Every input account's funds are touched, so each input is
                // "transacting directly" for classification purposes.
                if !p.direct {
                    p.direct = true;
                    dirty.insert(tx.sender);
                }
                for input in inputs {
                    if *input != tx.sender {
                        let q = self.senders.entry(*input).or_default();
                        if !q.direct {
                            q.direct = true;
                            dirty.insert(*input);
                        }
                    }
                }
            }
        }
    }

    /// Records a whole batch (e.g. an injected workload) and returns the
    /// set of addresses whose classification inputs changed — the *dirty
    /// senders*. A first-ever observation always dirties its sender;
    /// repeat observations that add no new participation (the same sender
    /// calling its usual contract, or transacting directly again) leave
    /// the sender clean, so classification work can scale with batch
    /// churn instead of batch size.
    pub fn observe_all<'a>(
        &mut self,
        txs: impl IntoIterator<Item = &'a Transaction>,
    ) -> BTreeSet<Address> {
        let mut dirty = BTreeSet::new();
        for tx in txs {
            self.observe_tracking(tx, &mut dirty);
        }
        dirty
    }

    /// Classifies a sender from its observed history.
    pub fn classify(&self, sender: Address) -> SenderClass {
        match self.senders.get(&sender) {
            None => SenderClass::Unknown,
            Some(p) if p.direct => SenderClass::Direct,
            Some(p) => match p.contracts.len() {
                0 => SenderClass::Unknown,
                1 => p
                    .contracts
                    .first()
                    .map(|c| SenderClass::SingleContract(*c))
                    .unwrap_or(SenderClass::Unknown),
                _ => SenderClass::MultiContract,
            },
        }
    }

    /// Classifies the *transaction*: the shard-formation predicate.
    ///
    /// A transaction is isolable to a contract shard iff it is a contract
    /// call **and** its sender's entire history (including this
    /// transaction) involves only that contract. Everything else belongs to
    /// the MaxShard.
    pub fn isolable_contract(&self, tx: &Transaction) -> Option<ContractId> {
        let TxKind::ContractCall { contract, .. } = &tx.kind else {
            return None;
        };
        match self.classify(tx.sender) {
            SenderClass::SingleContract(c) if c == *contract => Some(c),
            // An unknown sender invoking a contract is single-contract so
            // far; the caller must have already observed the workload, so
            // Unknown means "no other history" — still isolable.
            SenderClass::Unknown => Some(*contract),
            _ => None,
        }
    }

    /// Number of tracked senders.
    pub fn sender_count(&self) -> usize {
        self.senders.len()
    }

    /// Every tracked address, in ascending order (deterministic: the
    /// graph is a `BTreeMap`). Callers seeding a classification cache
    /// from pre-existing history iterate this.
    pub fn senders(&self) -> impl Iterator<Item = Address> + '_ {
        self.senders.keys().copied()
    }

    /// All contracts a sender participates in, in ascending id order
    /// (`BTreeSet` iteration is already sorted).
    pub fn contracts_of(&self, sender: Address) -> Vec<ContractId> {
        self.senders
            .get(&sender)
            .map(|p| p.contracts.iter().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_primitives::Amount;

    fn call(user: u64, contract: u32) -> Transaction {
        Transaction::call(
            Address::user(user),
            0,
            ContractId::new(contract),
            Amount::from_coins(1),
            Amount::from_raw(1),
        )
    }

    fn direct(user: u64, to: u64) -> Transaction {
        Transaction::direct(
            Address::user(user),
            0,
            Address::user(to),
            Amount::from_coins(1),
            Amount::from_raw(1),
        )
    }

    #[test]
    fn fig1a_single_contract_sender_is_isolable() {
        // User A only sends through contract 1.
        let mut g = CallGraph::new();
        let t = call(1, 1);
        g.observe(&t);
        assert_eq!(
            g.classify(Address::user(1)),
            SenderClass::SingleContract(ContractId::new(1))
        );
        assert_eq!(g.isolable_contract(&t), Some(ContractId::new(1)));
    }

    #[test]
    fn fig1b_multi_contract_sender_goes_to_maxshard() {
        // User C invokes contracts 2 and 3.
        let mut g = CallGraph::new();
        let t2 = call(3, 2);
        let t3 = call(3, 3);
        g.observe(&t2);
        g.observe(&t3);
        assert_eq!(g.classify(Address::user(3)), SenderClass::MultiContract);
        assert_eq!(g.isolable_contract(&t2), None);
        assert_eq!(g.isolable_contract(&t3), None);
    }

    #[test]
    fn fig1c_direct_transactor_goes_to_maxshard() {
        // User F invokes contract 1 AND pays H directly.
        let mut g = CallGraph::new();
        let t4 = call(6, 1);
        let t5 = direct(6, 8);
        g.observe(&t4);
        g.observe(&t5);
        assert_eq!(g.classify(Address::user(6)), SenderClass::Direct);
        assert_eq!(g.isolable_contract(&t4), None);
    }

    #[test]
    fn unknown_sender_calling_a_contract_is_isolable() {
        let g = CallGraph::new();
        let t = call(9, 4);
        assert_eq!(g.classify(Address::user(9)), SenderClass::Unknown);
        assert_eq!(g.isolable_contract(&t), Some(ContractId::new(4)));
    }

    #[test]
    fn direct_transfer_is_never_isolable() {
        let mut g = CallGraph::new();
        let t = direct(1, 2);
        g.observe(&t);
        assert_eq!(g.isolable_contract(&t), None);
    }

    #[test]
    fn multi_input_marks_all_inputs_direct() {
        let mut g = CallGraph::new();
        let t = Transaction::multi_input(
            Address::user(1),
            0,
            vec![Address::user(1), Address::user(2), Address::user(3)],
            Address::user(4),
            Amount::from_coins(3),
            Amount::ZERO,
        );
        g.observe(&t);
        for u in 1..=3 {
            assert_eq!(
                g.classify(Address::user(u)),
                SenderClass::Direct,
                "user {u}"
            );
        }
        // The recipient is not an input; untouched.
        assert_eq!(g.classify(Address::user(4)), SenderClass::Unknown);
    }

    #[test]
    fn repeated_same_contract_calls_stay_single() {
        let mut g = CallGraph::new();
        for _ in 0..5 {
            g.observe(&call(1, 2));
        }
        assert_eq!(
            g.classify(Address::user(1)),
            SenderClass::SingleContract(ContractId::new(2))
        );
        assert_eq!(g.contracts_of(Address::user(1)), vec![ContractId::new(2)]);
    }

    #[test]
    fn contract_call_after_direct_is_not_isolable() {
        let mut g = CallGraph::new();
        g.observe(&direct(1, 2));
        let t = call(1, 1);
        g.observe(&t);
        assert_eq!(g.isolable_contract(&t), None);
    }

    #[test]
    fn observe_all_reports_exactly_the_changed_senders() {
        let mut g = CallGraph::new();
        // First sight of user 1: dirty.
        let first = g.observe_all([call(1, 0)].iter());
        assert_eq!(
            first.into_iter().collect::<Vec<_>>(),
            vec![Address::user(1)]
        );
        // Same sender, same contract: participation unchanged — clean.
        let repeat = g.observe_all([call(1, 0), call(1, 0)].iter());
        assert!(repeat.is_empty(), "repeat observation dirtied: {repeat:?}");
        // Same sender, NEW contract: dirty again.
        let diversified = g.observe_all([call(1, 1)].iter());
        assert!(diversified.contains(&Address::user(1)));
        // A repeat direct transfer only dirties the first time.
        let d1 = g.observe_all([direct(2, 3)].iter());
        assert!(d1.contains(&Address::user(2)));
        let d2 = g.observe_all([direct(2, 4)].iter());
        assert!(d2.is_empty(), "repeat direct dirtied: {d2:?}");
    }

    #[test]
    fn multi_input_dirties_every_newly_direct_input() {
        let mut g = CallGraph::new();
        // User 2 is already direct; users 1 and 3 are not.
        g.observe(&direct(2, 9));
        let t = Transaction::multi_input(
            Address::user(1),
            0,
            vec![Address::user(1), Address::user(2), Address::user(3)],
            Address::user(4),
            Amount::from_coins(3),
            Amount::ZERO,
        );
        let dirty = g.observe_all([t].iter());
        assert!(dirty.contains(&Address::user(1)));
        assert!(!dirty.contains(&Address::user(2)), "already direct");
        assert!(dirty.contains(&Address::user(3)));
        assert!(!dirty.contains(&Address::user(4)), "recipient untouched");
    }

    #[test]
    fn clean_senders_classify_identically_before_and_after() {
        // The carry-forward invariant: an address outside the dirty set
        // classifies exactly as it did before the batch was observed.
        let mut g = CallGraph::new();
        g.observe_all([call(1, 0), direct(2, 9), call(3, 1)].iter());
        let before: Vec<SenderClass> = (1..=3).map(|u| g.classify(Address::user(u))).collect();
        let dirty = g.observe_all([call(1, 0), direct(2, 5), call(3, 2)].iter());
        for u in 1..=3u64 {
            if !dirty.contains(&Address::user(u)) {
                assert_eq!(
                    g.classify(Address::user(u)),
                    before[(u - 1) as usize],
                    "clean sender {u} changed class"
                );
            }
        }
        // User 3 diversified and must be dirty.
        assert!(dirty.contains(&Address::user(3)));
    }

    #[test]
    fn senders_iterates_in_address_order() {
        let mut g = CallGraph::new();
        g.observe(&call(5, 0));
        g.observe(&call(2, 0));
        g.observe(&direct(9, 1));
        let all: Vec<Address> = g.senders().collect();
        assert_eq!(
            all,
            vec![Address::user(2), Address::user(5), Address::user(9)]
        );
    }

    #[test]
    fn sender_count_tracks_distinct_senders() {
        let mut g = CallGraph::new();
        g.observe(&call(1, 0));
        g.observe(&call(1, 0));
        g.observe(&call(2, 0));
        assert_eq!(g.sender_count(), 2);
    }
}
