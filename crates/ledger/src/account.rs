//! Accounts: externally-owned user accounts and contract accounts.

use cshard_primitives::{Amount, ContractId, Nonce};

/// What kind of account an address denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccountKind {
    /// An externally-owned account controlled by a user key.
    User,
    /// A smart-contract account; its behaviour lives in the contract
    /// registry under the given id.
    Contract(ContractId),
}

/// A ledger account.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Account {
    /// Spendable balance.
    pub balance: Amount,
    /// Next expected transaction nonce (starts at 0).
    pub nonce: Nonce,
    /// User or contract.
    pub kind: AccountKind,
}

impl Account {
    /// A fresh user account with the given starting balance.
    pub fn user(balance: Amount) -> Self {
        Account {
            balance,
            nonce: 0,
            kind: AccountKind::User,
        }
    }

    /// A fresh contract account.
    ///
    /// Contract accounts in this model never hold value themselves: the
    /// contract mediates transfers between user accounts (the paper's
    /// "a new transaction is conducted between user A and that smart
    /// contract account", with the balance change recorded on users A and
    /// B). Keeping them value-free simplifies conservation invariants.
    pub fn contract(id: ContractId) -> Self {
        Account {
            balance: Amount::ZERO,
            nonce: 0,
            kind: AccountKind::Contract(id),
        }
    }

    /// True for user accounts.
    pub fn is_user(&self) -> bool {
        matches!(self.kind, AccountKind::User)
    }

    /// True for contract accounts.
    pub fn is_contract(&self) -> bool {
        matches!(self.kind, AccountKind::Contract(_))
    }

    /// The contract id, if this is a contract account.
    pub fn contract_id(&self) -> Option<ContractId> {
        match self.kind {
            AccountKind::Contract(id) => Some(id),
            AccountKind::User => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_account_basics() {
        let a = Account::user(Amount::from_coins(10));
        assert!(a.is_user());
        assert!(!a.is_contract());
        assert_eq!(a.nonce, 0);
        assert_eq!(a.contract_id(), None);
    }

    #[test]
    fn contract_account_basics() {
        let c = Account::contract(ContractId::new(4));
        assert!(c.is_contract());
        assert!(c.balance.is_zero());
        assert_eq!(c.contract_id(), Some(ContractId::new(4)));
    }
}
