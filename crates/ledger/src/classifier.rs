//! Compact sender classification — the paper's future-work item.
//!
//! Sec. III-C: checking "whether a user incorporates multiple smart
//! contracts" by querying full history is expensive; the call graph helps,
//! but a [`CallGraph`](crate::callgraph::CallGraph) stores a `HashSet<ContractId>` per sender. The
//! paper's conclusion names "reducing the query cost" as future work; this
//! module is that reduction, exploiting the key observation that shard
//! formation never needs the *set* of contracts — only which of four
//! states a sender is in:
//!
//! ```text
//! Unknown → SingleContract(c) → MultiContract     (absorbing)
//!        ↘ ----------------- → Direct             (absorbing)
//! ```
//!
//! [`CompactClassifier`] keeps one 8-byte word per sender (a tagged
//! contract id), is drop-in compatible with the [`CallGraph`](crate::callgraph::CallGraph) predicate,
//! and classifies in O(1) with ~6× less memory than the set-based graph.
//! Equivalence with [`CallGraph`](crate::callgraph::CallGraph) is property-tested below.

use crate::callgraph::SenderClass;
use crate::transaction::{Transaction, TxKind};
use cshard_primitives::{Address, ContractId};
use std::collections::HashMap;

/// Packed per-sender state: a tagged word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Packed {
    Single(ContractId),
    Multi,
    Direct,
}

/// The compact, absorbing-state classifier.
#[derive(Clone, Debug, Default)]
pub struct CompactClassifier {
    senders: HashMap<Address, Packed>,
}

impl CompactClassifier {
    /// An empty classifier.
    pub fn new() -> Self {
        CompactClassifier::default()
    }

    /// Records one observed transaction (same contract as
    /// `CallGraph::observe`).
    pub fn observe(&mut self, tx: &Transaction) {
        match &tx.kind {
            TxKind::ContractCall { contract, .. } => {
                self.touch_contract(tx.sender, *contract);
            }
            TxKind::DirectTransfer { .. } => {
                self.mark_direct(tx.sender);
            }
            TxKind::MultiInput { inputs, .. } => {
                self.mark_direct(tx.sender);
                for input in inputs {
                    self.mark_direct(*input);
                }
            }
        }
    }

    fn touch_contract(&mut self, sender: Address, contract: ContractId) {
        use std::collections::hash_map::Entry;
        match self.senders.entry(sender) {
            Entry::Vacant(v) => {
                v.insert(Packed::Single(contract));
            }
            Entry::Occupied(mut o) => match *o.get() {
                Packed::Single(c) if c == contract => {}
                Packed::Single(_) => {
                    o.insert(Packed::Multi);
                }
                // Direct and Multi are absorbing.
                Packed::Multi | Packed::Direct => {}
            },
        }
    }

    fn mark_direct(&mut self, sender: Address) {
        self.senders.insert(sender, Packed::Direct);
    }

    /// Records a batch.
    pub fn observe_all<'a>(&mut self, txs: impl IntoIterator<Item = &'a Transaction>) {
        for tx in txs {
            self.observe(tx);
        }
    }

    /// Classifies a sender — same semantics as `CallGraph::classify`.
    pub fn classify(&self, sender: Address) -> SenderClass {
        match self.senders.get(&sender) {
            None => SenderClass::Unknown,
            Some(Packed::Single(c)) => SenderClass::SingleContract(*c),
            Some(Packed::Multi) => SenderClass::MultiContract,
            Some(Packed::Direct) => SenderClass::Direct,
        }
    }

    /// The shard-formation predicate — same semantics as
    /// `CallGraph::isolable_contract`.
    pub fn isolable_contract(&self, tx: &Transaction) -> Option<ContractId> {
        let TxKind::ContractCall { contract, .. } = &tx.kind else {
            return None;
        };
        match self.classify(tx.sender) {
            SenderClass::SingleContract(c) if c == *contract => Some(c),
            SenderClass::Unknown => Some(*contract),
            _ => None,
        }
    }

    /// Number of tracked senders.
    pub fn sender_count(&self) -> usize {
        self.senders.len()
    }

    /// Approximate bytes held per sender entry (for the memory claim in
    /// module docs and the bench report).
    pub const BYTES_PER_SENDER: usize =
        std::mem::size_of::<Address>() + std::mem::size_of::<Packed>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use cshard_primitives::Amount;
    use proptest::prelude::*;

    fn call(user: u64, contract: u32) -> Transaction {
        Transaction::call(
            Address::user(user),
            0,
            ContractId::new(contract),
            Amount(100),
            Amount(1),
        )
    }

    fn direct(user: u64, to: u64) -> Transaction {
        Transaction::direct(
            Address::user(user),
            0,
            Address::user(to),
            Amount(100),
            Amount(1),
        )
    }

    #[test]
    fn state_machine_transitions() {
        let mut c = CompactClassifier::new();
        assert_eq!(c.classify(Address::user(1)), SenderClass::Unknown);
        c.observe(&call(1, 0));
        assert_eq!(
            c.classify(Address::user(1)),
            SenderClass::SingleContract(ContractId::new(0))
        );
        c.observe(&call(1, 0)); // same contract: stays Single
        assert_eq!(
            c.classify(Address::user(1)),
            SenderClass::SingleContract(ContractId::new(0))
        );
        c.observe(&call(1, 1)); // second contract: Multi
        assert_eq!(c.classify(Address::user(1)), SenderClass::MultiContract);
        c.observe(&call(1, 0)); // absorbing
        assert_eq!(c.classify(Address::user(1)), SenderClass::MultiContract);
    }

    #[test]
    fn direct_is_absorbing_over_everything() {
        let mut c = CompactClassifier::new();
        c.observe(&call(2, 0));
        c.observe(&direct(2, 9));
        assert_eq!(c.classify(Address::user(2)), SenderClass::Direct);
        c.observe(&call(2, 0));
        assert_eq!(c.classify(Address::user(2)), SenderClass::Direct);
    }

    #[test]
    fn multi_input_marks_all_inputs() {
        let mut c = CompactClassifier::new();
        let tx = Transaction::multi_input(
            Address::user(1),
            0,
            vec![Address::user(1), Address::user(2)],
            Address::user(3),
            Amount(10),
            Amount(1),
        );
        c.observe(&tx);
        assert_eq!(c.classify(Address::user(1)), SenderClass::Direct);
        assert_eq!(c.classify(Address::user(2)), SenderClass::Direct);
        assert_eq!(c.classify(Address::user(3)), SenderClass::Unknown);
    }

    #[test]
    fn entry_is_one_small_word() {
        // The memory claim: ≤ 32 bytes of payload per sender (the
        // set-based graph stores a HashSet per sender, ≥ 48 bytes empty).
        const _: () = assert!(CompactClassifier::BYTES_PER_SENDER <= 32);
    }

    /// Random transaction streams for equivalence testing. `Direct` at a
    /// MultiContract sender differs — CallGraph keeps `direct=true`
    /// overriding, and so does the compact machine, so full equivalence
    /// should hold on any stream.
    fn arb_tx() -> impl Strategy<Value = Transaction> {
        (
            0u64..12,
            0u32..4,
            0u64..12,
            prop::bool::ANY,
            prop::bool::ANY,
        )
            .prop_map(|(user, contract, other, is_call, is_multi)| {
                if is_call {
                    call(user, contract)
                } else if is_multi {
                    Transaction::multi_input(
                        Address::user(user),
                        0,
                        vec![Address::user(user), Address::user(other)],
                        Address::user(other.wrapping_add(100)),
                        Amount(10),
                        Amount(1),
                    )
                } else {
                    direct(user, other)
                }
            })
    }

    proptest! {
        /// The compact machine is observationally equivalent to the
        /// set-based call graph on every stream: same classification and
        /// same shard-formation predicate for every transaction.
        #[test]
        fn prop_equivalent_to_callgraph(txs in proptest::collection::vec(arb_tx(), 0..60)) {
            let mut graph = CallGraph::new();
            let mut compact = CompactClassifier::new();
            graph.observe_all(txs.iter());
            compact.observe_all(txs.iter());
            for u in 0..12u64 {
                prop_assert_eq!(
                    graph.classify(Address::user(u)),
                    compact.classify(Address::user(u)),
                    "user {}", u
                );
            }
            for tx in &txs {
                prop_assert_eq!(graph.isolable_contract(tx), compact.isolable_contract(tx));
            }
            prop_assert_eq!(graph.sender_count(), compact.sender_count());
        }
    }
}
