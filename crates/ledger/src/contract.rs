//! Smart contracts as condition-guarded transfer records.
//!
//! Sec. II-A: "A smart contract records a transaction and the conditions
//! under which that transaction is valid. For instance, user A can enforce a
//! contract to transfer 2 ETH to user B if B's balance is below 1 ETH."
//!
//! Sec. VI-A: the evaluation registers "multiple smart contracts, and each
//! of them records an unconditional transaction that transfers money to a
//! specified destination. Transactions in our experiments will invoke these
//! smart contracts." Both shapes are supported here.

use cshard_primitives::{Address, Amount, ContractId};

/// The condition a contract checks before allowing its transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Condition {
    /// Always allow (the unconditional contracts of Sec. VI-A).
    Always,
    /// Allow only while the account's balance is strictly below the
    /// threshold (Sec. II-A's motivating example).
    BalanceBelow(Address, Amount),
    /// Allow only while the account's balance is at least the threshold.
    BalanceAtLeast(Address, Amount),
    /// Never allow — useful for negative tests and expiring offers.
    Never,
}

/// A smart contract: when invoked by a sender, transfer the invocation value
/// from the sender to `destination`, provided `condition` holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmartContract {
    /// Dense registry id.
    pub id: ContractId,
    /// The contract's own account address.
    pub address: Address,
    /// Where the guarded transfer sends value.
    pub destination: Address,
    /// The recorded condition.
    pub condition: Condition,
    /// Number of times the contract has been successfully invoked — the
    /// per-contract activity statistic shard formation sizes shards with.
    pub invocations: u64,
}

impl SmartContract {
    /// A contract that unconditionally forwards invocation value to
    /// `destination` (the Sec. VI-A experimental shape).
    pub fn unconditional(id: ContractId, destination: Address) -> Self {
        SmartContract {
            id,
            address: Address::contract(id.0 as u64),
            destination,
            condition: Condition::Always,
            invocations: 0,
        }
    }

    /// A contract with an explicit condition.
    pub fn conditional(id: ContractId, destination: Address, condition: Condition) -> Self {
        SmartContract {
            id,
            address: Address::contract(id.0 as u64),
            destination,
            condition,
            invocations: 0,
        }
    }

    /// Evaluates the condition against a balance oracle.
    ///
    /// `balance_of` returns the *current* balance of an address (zero for
    /// unknown accounts, matching Ethereum semantics for empty accounts).
    pub fn condition_holds(&self, balance_of: impl Fn(Address) -> Amount) -> bool {
        match self.condition {
            Condition::Always => true,
            Condition::Never => false,
            Condition::BalanceBelow(addr, limit) => balance_of(addr) < limit,
            Condition::BalanceAtLeast(addr, floor) => balance_of(addr) >= floor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(balance: Amount) -> impl Fn(Address) -> Amount {
        move |_| balance
    }

    #[test]
    fn unconditional_always_holds() {
        let c = SmartContract::unconditional(ContractId::new(0), Address::user(1));
        assert!(c.condition_holds(oracle(Amount::ZERO)));
        assert!(c.condition_holds(oracle(Amount::from_coins(100))));
    }

    #[test]
    fn never_never_holds() {
        let c = SmartContract::conditional(ContractId::new(0), Address::user(1), Condition::Never);
        assert!(!c.condition_holds(oracle(Amount::from_coins(5))));
    }

    #[test]
    fn balance_below_is_strict() {
        let limit = Amount::from_coins(1);
        let c = SmartContract::conditional(
            ContractId::new(0),
            Address::user(1),
            Condition::BalanceBelow(Address::user(2), limit),
        );
        assert!(c.condition_holds(oracle(Amount::ZERO)));
        assert!(!c.condition_holds(oracle(limit))); // equal fails
        assert!(!c.condition_holds(oracle(Amount::from_coins(2))));
    }

    #[test]
    fn balance_at_least_is_inclusive() {
        let floor = Amount::from_coins(3);
        let c = SmartContract::conditional(
            ContractId::new(0),
            Address::user(1),
            Condition::BalanceAtLeast(Address::user(2), floor),
        );
        assert!(c.condition_holds(oracle(floor)));
        assert!(c.condition_holds(oracle(Amount::from_coins(4))));
        assert!(!c.condition_holds(oracle(Amount::from_coins(2))));
    }

    #[test]
    fn contract_address_derivation_is_stable() {
        let a = SmartContract::unconditional(ContractId::new(7), Address::user(1));
        let b = SmartContract::unconditional(ContractId::new(7), Address::user(2));
        assert_eq!(a.address, b.address);
        assert_eq!(a.address, Address::contract(7));
    }
}
