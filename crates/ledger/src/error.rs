//! Ledger error types.

use cshard_primitives::{Address, Amount, BlockHeight, ContractId, Hash32, Nonce};
use std::fmt;

/// Everything that can go wrong when validating transactions or blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// The sending account does not exist.
    UnknownSender(Address),
    /// The transaction references a contract that is not registered.
    UnknownContract(ContractId),
    /// The transaction nonce does not match the account's next nonce —
    /// either a replay (too low) or a gap (too high).
    BadNonce {
        /// Account whose nonce mismatched.
        sender: Address,
        /// Nonce the transaction carried.
        got: Nonce,
        /// Nonce the state expected.
        expected: Nonce,
    },
    /// The sender cannot cover value + fee. This is the double-spend guard.
    InsufficientBalance {
        /// Account with the shortfall.
        sender: Address,
        /// Amount the transaction needs (value + fee).
        needed: Amount,
        /// Amount actually available.
        available: Amount,
    },
    /// The contract's recorded condition evaluated to false, so the
    /// transfer it guards must not happen.
    ConditionNotMet(ContractId),
    /// A multi-input transaction listed no inputs.
    EmptyInputs,
    /// An input of a multi-input transaction failed (index + reason).
    InputFailed(usize, Box<LedgerError>),
    /// The value would be transferred to a contract account directly, which
    /// this model does not allow (contracts hold no balance).
    TransferToContract(Address),
    /// The block's parent hash is not known to this chain.
    UnknownParent(Hash32),
    /// The block's height is not parent height + 1.
    BadHeight {
        /// Height the header claimed.
        got: BlockHeight,
        /// Height the chain expected.
        expected: BlockHeight,
    },
    /// The header's Merkle root does not commit to the block's transactions.
    BadTxRoot,
    /// The block hash does not meet the required PoW difficulty.
    InsufficientWork {
        /// Difficulty the chain requires (leading zero bits).
        required_bits: u32,
        /// Bits of work the block hash actually shows.
        got_bits: u32,
    },
    /// A transaction appears twice in the same block.
    DuplicateTxInBlock(Hash32),
    /// The block was already recorded.
    DuplicateBlock(Hash32),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::UnknownSender(a) => write!(f, "unknown sender {a:?}"),
            LedgerError::UnknownContract(c) => write!(f, "unknown contract {c}"),
            LedgerError::BadNonce {
                sender,
                got,
                expected,
            } => write!(
                f,
                "bad nonce for {sender:?}: got {got}, expected {expected}"
            ),
            LedgerError::InsufficientBalance {
                sender,
                needed,
                available,
            } => write!(
                f,
                "insufficient balance for {sender:?}: needs {needed}, has {available}"
            ),
            LedgerError::ConditionNotMet(c) => {
                write!(f, "condition of {c} not met")
            }
            LedgerError::EmptyInputs => write!(f, "multi-input transaction with no inputs"),
            LedgerError::InputFailed(i, e) => write!(f, "input {i} failed: {e}"),
            LedgerError::TransferToContract(a) => {
                write!(f, "direct value transfer to contract account {a:?}")
            }
            LedgerError::UnknownParent(h) => write!(f, "unknown parent block {h}"),
            LedgerError::BadHeight { got, expected } => {
                write!(f, "bad block height: got {got}, expected {expected}")
            }
            LedgerError::BadTxRoot => write!(f, "transaction merkle root mismatch"),
            LedgerError::InsufficientWork {
                required_bits,
                got_bits,
            } => write!(
                f,
                "insufficient proof of work: {got_bits} bits, need {required_bits}"
            ),
            LedgerError::DuplicateTxInBlock(h) => {
                write!(f, "transaction {h} duplicated within block")
            }
            LedgerError::DuplicateBlock(h) => write!(f, "block {h} already recorded"),
        }
    }
}

impl std::error::Error for LedgerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LedgerError::BadNonce {
            sender: Address::user(1),
            got: 5,
            expected: 3,
        };
        let s = e.to_string();
        assert!(s.contains("got 5"));
        assert!(s.contains("expected 3"));
    }

    #[test]
    fn nested_input_error_displays() {
        let inner = LedgerError::UnknownSender(Address::user(9));
        let e = LedgerError::InputFailed(2, Box::new(inner));
        assert!(e.to_string().contains("input 2"));
        assert!(e.to_string().contains("unknown sender"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LedgerError::EmptyInputs, LedgerError::EmptyInputs);
        assert_ne!(LedgerError::EmptyInputs, LedgerError::BadTxRoot);
    }
}
