//! Transactions: contract calls, direct transfers, multi-input transfers.

use cshard_crypto::Sha256;
use cshard_primitives::{Address, Amount, ContractId, Nonce, TxId};

/// What a transaction does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxKind {
    /// Invoke a smart contract with `value`; if the contract's condition
    /// holds, `value` moves from the sender to the contract's destination.
    /// This is the dominant shape in the paper (Sec. II-A).
    ContractCall {
        /// The contract being invoked.
        contract: ContractId,
        /// Value the guarded transfer moves.
        value: Amount,
    },
    /// A plain user-to-user transfer (Fig. 1(c)'s "transaction 5").
    DirectTransfer {
        /// Recipient user account.
        to: Address,
        /// Value transferred.
        value: Amount,
    },
    /// A transfer funded by several input accounts (the "3-input
    /// transactions" of Fig. 4(b)). Each input contributes `value /
    /// inputs.len()` (remainder charged to the first input). The sender must
    /// be one of the inputs and authorises the whole transaction.
    MultiInput {
        /// Funding accounts (the sender must appear among them).
        inputs: Vec<Address>,
        /// Recipient user account.
        to: Address,
        /// Total value transferred.
        value: Amount,
    },
}

impl TxKind {
    /// Number of distinct input accounts whose state is read/written.
    pub fn input_count(&self) -> usize {
        match self {
            TxKind::ContractCall { .. } | TxKind::DirectTransfer { .. } => 1,
            TxKind::MultiInput { inputs, .. } => inputs.len(),
        }
    }

    /// The contract invoked, if any.
    pub fn contract(&self) -> Option<ContractId> {
        match self {
            TxKind::ContractCall { contract, .. } => Some(*contract),
            _ => None,
        }
    }

    /// Total value moved by the transaction.
    pub fn value(&self) -> Amount {
        match self {
            TxKind::ContractCall { value, .. }
            | TxKind::DirectTransfer { value, .. }
            | TxKind::MultiInput { value, .. } => *value,
        }
    }
}

/// A signed transaction.
///
/// Signatures are modelled, not computed: within the simulation the sender
/// field is authoritative (an honest-channel assumption; the paper's
/// adversary does not forge signatures either).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// The (authenticated) sender.
    pub sender: Address,
    /// Replay-protection nonce; must equal the sender's account nonce.
    pub nonce: Nonce,
    /// Fee paid to the miner that confirms the transaction.
    pub fee: Amount,
    /// The action.
    pub kind: TxKind,
}

impl Transaction {
    /// Convenience constructor for a contract call.
    pub fn call(
        sender: Address,
        nonce: Nonce,
        contract: ContractId,
        value: Amount,
        fee: Amount,
    ) -> Self {
        Transaction {
            sender,
            nonce,
            fee,
            kind: TxKind::ContractCall { contract, value },
        }
    }

    /// Convenience constructor for a direct transfer.
    pub fn direct(sender: Address, nonce: Nonce, to: Address, value: Amount, fee: Amount) -> Self {
        Transaction {
            sender,
            nonce,
            fee,
            kind: TxKind::DirectTransfer { to, value },
        }
    }

    /// Convenience constructor for a multi-input transfer.
    pub fn multi_input(
        sender: Address,
        nonce: Nonce,
        inputs: Vec<Address>,
        to: Address,
        value: Amount,
        fee: Amount,
    ) -> Self {
        Transaction {
            sender,
            nonce,
            fee,
            kind: TxKind::MultiInput { inputs, to, value },
        }
    }

    /// The transaction id: SHA-256 of the canonical binary encoding.
    pub fn id(&self) -> TxId {
        let mut h = Sha256::new();
        h.update(b"cshard-tx-v1");
        h.update(self.sender.as_bytes());
        h.update(self.nonce.to_be_bytes());
        h.update(self.fee.raw().to_be_bytes());
        match &self.kind {
            TxKind::ContractCall { contract, value } => {
                h.update([0u8]);
                h.update(contract.0.to_be_bytes());
                h.update(value.raw().to_be_bytes());
            }
            TxKind::DirectTransfer { to, value } => {
                h.update([1u8]);
                h.update(to.as_bytes());
                h.update(value.raw().to_be_bytes());
            }
            TxKind::MultiInput { inputs, to, value } => {
                h.update([2u8]);
                h.update((inputs.len() as u64).to_be_bytes());
                for input in inputs {
                    h.update(input.as_bytes());
                }
                h.update(to.as_bytes());
                h.update(value.raw().to_be_bytes());
            }
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_call() -> Transaction {
        Transaction::call(
            Address::user(1),
            0,
            ContractId::new(2),
            Amount::from_coins(1),
            Amount::from_raw(50),
        )
    }

    #[test]
    fn id_is_deterministic() {
        assert_eq!(sample_call().id(), sample_call().id());
    }

    #[test]
    fn id_depends_on_every_field() {
        let base = sample_call();
        let mut other = base.clone();
        other.nonce = 1;
        assert_ne!(base.id(), other.id());

        let mut other = base.clone();
        other.fee = Amount::from_raw(51);
        assert_ne!(base.id(), other.id());

        let mut other = base.clone();
        other.sender = Address::user(2);
        assert_ne!(base.id(), other.id());

        let mut other = base.clone();
        other.kind = TxKind::ContractCall {
            contract: ContractId::new(3),
            value: Amount::from_coins(1),
        };
        assert_ne!(base.id(), other.id());
    }

    #[test]
    fn id_separates_kinds_with_same_payload_bytes() {
        // A direct transfer and a multi-input with one input move the same
        // value to the same place; their ids must still differ.
        let direct = Transaction::direct(
            Address::user(1),
            0,
            Address::user(2),
            Amount::from_coins(1),
            Amount::from_raw(10),
        );
        let multi = Transaction::multi_input(
            Address::user(1),
            0,
            vec![Address::user(1)],
            Address::user(2),
            Amount::from_coins(1),
            Amount::from_raw(10),
        );
        assert_ne!(direct.id(), multi.id());
    }

    #[test]
    fn input_counts() {
        assert_eq!(sample_call().kind.input_count(), 1);
        let multi = Transaction::multi_input(
            Address::user(1),
            0,
            vec![Address::user(1), Address::user(2), Address::user(3)],
            Address::user(4),
            Amount::from_coins(3),
            Amount::ZERO,
        );
        assert_eq!(multi.kind.input_count(), 3);
    }

    #[test]
    fn contract_accessor() {
        assert_eq!(sample_call().kind.contract(), Some(ContractId::new(2)));
        let direct = Transaction::direct(
            Address::user(1),
            0,
            Address::user(2),
            Amount::ZERO,
            Amount::ZERO,
        );
        assert_eq!(direct.kind.contract(), None);
    }
}
