//! Account-based ledger substrate (the "go-Ethereum" of this reproduction).
//!
//! The paper's prototype runs on go-Ethereum 1.8.0; its evaluation exercises
//! a narrow slice of it: account balances and nonces, smart contracts that
//! record a (possibly conditional) transfer, fee-carrying transactions that
//! invoke those contracts, 10-transaction blocks mined by PoW, and local
//! ledgers (chains) maintained per shard. This crate implements that slice
//! completely and from scratch:
//!
//! * [`account`] / [`state`] — the world state: balances, nonces, contract
//!   storage, transaction application with full validation.
//! * [`contract`] — smart contracts as *condition → transfer* records
//!   (Sec. II-A's "transfer 2 ETH to B if B's balance is below 1 ETH", and
//!   the unconditional variant used throughout Sec. VI).
//! * [`transaction`] — contract calls, direct user-to-user transfers and
//!   multi-input transactions (the 3-input workload of Fig. 4(b)).
//! * [`merkle`] / [`block`] — transaction Merkle roots and blocks whose
//!   headers carry the packer's `ShardId` (Sec. III-C).
//! * [`chain`] — per-shard ledgers with longest-chain fork choice.
//! * [`mempool`] — the unvalidated-transaction pool with fee-greedy
//!   selection (the behaviour that serializes vanilla Ethereum, Sec. II-B).
//! * [`callgraph`] — the user↔contract call graph miners maintain locally to
//!   classify senders (Sec. III-C's "more elegant way").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod account;
pub mod block;
pub mod callgraph;
pub mod chain;
pub mod classifier;
pub mod codec;
pub mod contract;
pub mod error;
pub mod light;
pub mod mempool;
pub mod merkle;
pub mod snapshot;
pub mod state;
pub mod transaction;

pub use account::{Account, AccountKind};
pub use block::{Block, BlockHeader};
pub use callgraph::{CallGraph, SenderClass};
pub use chain::Chain;
pub use classifier::CompactClassifier;
pub use contract::{Condition, SmartContract};
pub use error::LedgerError;
pub use light::{InclusionProof, LightClient, LightError};
pub use mempool::Mempool;
pub use merkle::merkle_root;
pub use snapshot::StateSnapshot;
pub use state::State;
pub use transaction::{Transaction, TxKind};
