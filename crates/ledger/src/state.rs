//! The world state and the transaction/block application rules.
//!
//! `State` is what each miner's "local ledger" resolves to after applying
//! its chain. Validation here is the double-spend guard the paper's shard
//! formation relies on: a transaction is only valid against the sender's
//! current balance and nonce, so two conflicting spends can never both
//! apply.

use crate::account::{Account, AccountKind};
use crate::block::Block;
use crate::contract::SmartContract;
use crate::error::LedgerError;
use crate::transaction::{Transaction, TxKind};
use cshard_primitives::{Address, Amount, ContractId};
use std::collections::BTreeMap;

/// Reward minted for every block, empty or not (Sec. III-D: "even if the
/// block does not contain any transactions, that miner can still get the
/// block reward" — the incentive that makes empty blocks profitable and
/// motivates inter-shard merging).
pub const BLOCK_REWARD: Amount = Amount(2_000_000_000);

/// The account/contract world state.
#[derive(Clone, Debug, Default)]
pub struct State {
    accounts: BTreeMap<Address, Account>,
    contracts: Vec<SmartContract>,
    /// Total value minted by rewards since genesis — lets tests assert
    /// conservation: Σ balances == Σ genesis + minted.
    minted: Amount,
}

impl State {
    /// An empty state.
    pub fn new() -> Self {
        State::default()
    }

    /// Creates (or tops up) a user account at genesis.
    pub fn fund_user(&mut self, addr: Address, balance: Amount) {
        let entry = self
            .accounts
            .entry(addr)
            .or_insert_with(|| Account::user(Amount::ZERO));
        assert!(
            entry.is_user(),
            "cannot fund contract account {addr:?} as a user"
        );
        entry.balance += balance;
    }

    /// Registers a smart contract, creating its account. Returns its id.
    pub fn register_contract(&mut self, contract: SmartContract) -> ContractId {
        assert_eq!(
            contract.id.0 as usize,
            self.contracts.len(),
            "contracts must be registered densely in id order"
        );
        let id = contract.id;
        self.accounts
            .insert(contract.address, Account::contract(id));
        self.contracts.push(contract);
        id
    }

    /// Looks up a contract.
    pub fn contract(&self, id: ContractId) -> Option<&SmartContract> {
        self.contracts.get(id.0 as usize)
    }

    /// Number of registered contracts.
    pub fn contract_count(&self) -> usize {
        self.contracts.len()
    }

    /// Looks up an account.
    pub fn account(&self, addr: Address) -> Option<&Account> {
        self.accounts.get(&addr)
    }

    /// The balance of an address (zero for unknown accounts, matching
    /// Ethereum's empty-account semantics).
    pub fn balance_of(&self, addr: Address) -> Amount {
        self.accounts
            .get(&addr)
            .map(|a| a.balance)
            .unwrap_or(Amount::ZERO)
    }

    /// The next expected nonce of an address.
    pub fn nonce_of(&self, addr: Address) -> u64 {
        self.accounts.get(&addr).map(|a| a.nonce).unwrap_or(0)
    }

    /// Total minted rewards.
    pub fn minted(&self) -> Amount {
        self.minted
    }

    /// Iterates over all accounts in address order (`BTreeMap`, so the
    /// order is deterministic — audit rule ND003) — snapshot capture.
    pub fn accounts_iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Rebuilds a state from snapshot parts. The contracts must be dense
    /// in id order (as `register_contract` enforces on the write path).
    pub fn from_parts(
        accounts: impl IntoIterator<Item = (Address, Account)>,
        contracts: Vec<SmartContract>,
        minted: Amount,
    ) -> State {
        for (i, c) in contracts.iter().enumerate() {
            assert_eq!(c.id.0 as usize, i, "snapshot contracts must be dense");
        }
        State {
            accounts: accounts.into_iter().collect(),
            contracts,
            minted,
        }
    }

    /// Sum of all account balances (for conservation checks).
    pub fn total_balance(&self) -> Amount {
        self.accounts.values().map(|a| a.balance).sum()
    }

    /// Validates a transaction against the current state without applying
    /// it. Exactly the checks `apply_transaction` performs.
    pub fn validate_transaction(&self, tx: &Transaction) -> Result<(), LedgerError> {
        let sender = self
            .accounts
            .get(&tx.sender)
            .ok_or(LedgerError::UnknownSender(tx.sender))?;
        if !sender.is_user() {
            // Contract accounts never originate transactions in this model.
            return Err(LedgerError::UnknownSender(tx.sender));
        }
        if sender.nonce != tx.nonce {
            return Err(LedgerError::BadNonce {
                sender: tx.sender,
                got: tx.nonce,
                expected: sender.nonce,
            });
        }
        match &tx.kind {
            TxKind::ContractCall { contract, value } => {
                let c = self
                    .contract(*contract)
                    .ok_or(LedgerError::UnknownContract(*contract))?;
                if !c.condition_holds(|a| self.balance_of(a)) {
                    return Err(LedgerError::ConditionNotMet(*contract));
                }
                let needed = *value + tx.fee;
                if sender.balance < needed {
                    return Err(LedgerError::InsufficientBalance {
                        sender: tx.sender,
                        needed,
                        available: sender.balance,
                    });
                }
                // Destination must not be a contract account.
                if self
                    .accounts
                    .get(&c.destination)
                    .is_some_and(|a| a.is_contract())
                {
                    return Err(LedgerError::TransferToContract(c.destination));
                }
                Ok(())
            }
            TxKind::DirectTransfer { to, value } => {
                if self.accounts.get(to).is_some_and(|a| a.is_contract()) {
                    return Err(LedgerError::TransferToContract(*to));
                }
                let needed = *value + tx.fee;
                if sender.balance < needed {
                    return Err(LedgerError::InsufficientBalance {
                        sender: tx.sender,
                        needed,
                        available: sender.balance,
                    });
                }
                Ok(())
            }
            TxKind::MultiInput { inputs, to, value } => {
                if inputs.is_empty() {
                    return Err(LedgerError::EmptyInputs);
                }
                if self.accounts.get(to).is_some_and(|a| a.is_contract()) {
                    return Err(LedgerError::TransferToContract(*to));
                }
                let shares = split_shares(*value, inputs.len());
                for (i, (input, share)) in inputs.iter().zip(shares.iter()).enumerate() {
                    let acct = self.accounts.get(input).ok_or_else(|| {
                        LedgerError::InputFailed(i, Box::new(LedgerError::UnknownSender(*input)))
                    })?;
                    if !acct.is_user() {
                        return Err(LedgerError::InputFailed(
                            i,
                            Box::new(LedgerError::UnknownSender(*input)),
                        ));
                    }
                    // The sender additionally covers the fee.
                    let needed = if *input == tx.sender {
                        *share + tx.fee
                    } else {
                        *share
                    };
                    if acct.balance < needed {
                        return Err(LedgerError::InputFailed(
                            i,
                            Box::new(LedgerError::InsufficientBalance {
                                sender: *input,
                                needed,
                                available: acct.balance,
                            }),
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Applies a transaction, paying its fee to `fee_recipient`.
    ///
    /// On error the state is unchanged (validation runs first).
    pub fn apply_transaction(
        &mut self,
        tx: &Transaction,
        fee_recipient: Address,
    ) -> Result<(), LedgerError> {
        self.validate_transaction(tx)?;
        match tx.kind.clone() {
            TxKind::ContractCall { contract, value } => {
                let destination = self.contracts[contract.0 as usize].destination;
                self.debit(tx.sender, value + tx.fee);
                self.credit(destination, value);
                self.contracts[contract.0 as usize].invocations += 1;
            }
            TxKind::DirectTransfer { to, value } => {
                self.debit(tx.sender, value + tx.fee);
                self.credit(to, value);
            }
            TxKind::MultiInput { inputs, to, value } => {
                let shares = split_shares(value, inputs.len());
                for (input, share) in inputs.iter().zip(shares) {
                    self.debit(*input, share);
                }
                self.debit(tx.sender, tx.fee);
                self.credit(to, value);
            }
        }
        self.credit(fee_recipient, tx.fee);
        let sender = self.accounts.get_mut(&tx.sender).expect("validated");
        sender.nonce += 1;
        Ok(())
    }

    /// Applies a block: all transactions in order, then mints the block
    /// reward to the coinbase address derived from the header's miner id.
    ///
    /// Fails atomically — on any invalid transaction the state is rolled
    /// back to its pre-block value.
    pub fn apply_block(&mut self, block: &Block) -> Result<(), LedgerError> {
        if !block.tx_root_matches() {
            return Err(LedgerError::BadTxRoot);
        }
        let mut seen = std::collections::HashSet::with_capacity(block.transactions.len());
        for tx in &block.transactions {
            if !seen.insert(tx.id()) {
                return Err(LedgerError::DuplicateTxInBlock(tx.id()));
            }
        }
        let coinbase = Address::miner(block.header.miner.0 as u64);
        let snapshot = self.clone();
        for tx in &block.transactions {
            if let Err(e) = self.apply_transaction(tx, coinbase) {
                *self = snapshot;
                return Err(e);
            }
        }
        self.mint(coinbase, BLOCK_REWARD);
        Ok(())
    }

    /// Mints new value to an address — block rewards and the merging game's
    /// shard reward (Sec. IV-A: "the shard reward is also transferred to
    /// miners' accounts by the system").
    pub fn mint(&mut self, to: Address, amount: Amount) {
        self.credit(to, amount);
        self.minted += amount;
    }

    fn credit(&mut self, addr: Address, amount: Amount) {
        let entry = self
            .accounts
            .entry(addr)
            .or_insert_with(|| Account::user(Amount::ZERO));
        debug_assert!(
            !matches!(entry.kind, AccountKind::Contract(_)),
            "credits to contract accounts are rejected during validation"
        );
        entry.balance += amount;
    }

    fn debit(&mut self, addr: Address, amount: Amount) {
        let entry = self
            .accounts
            .get_mut(&addr)
            .expect("debit of validated account");
        entry.balance = entry
            .balance
            .checked_sub(amount)
            .expect("debit exceeds validated balance");
    }
}

/// Splits `value` into `n` near-equal shares; the remainder lands on the
/// first share so the shares always sum to `value` exactly.
fn split_shares(value: Amount, n: usize) -> Vec<Amount> {
    assert!(n > 0);
    let each = value.raw() / n as u64;
    let remainder = value.raw() % n as u64;
    (0..n)
        .map(|i| {
            if i == 0 {
                Amount::from_raw(each + remainder)
            } else {
                Amount::from_raw(each)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Condition;
    use cshard_primitives::{Hash32, MinerId, ShardId, SimTime};
    use proptest::prelude::*;

    fn setup() -> State {
        let mut s = State::new();
        s.fund_user(Address::user(1), Amount::from_coins(10));
        s.fund_user(Address::user(2), Amount::from_coins(10));
        s.register_contract(SmartContract::unconditional(
            ContractId::new(0),
            Address::user(3),
        ));
        s
    }

    const FEE: Amount = Amount(50);
    const COLLECTOR: Address = Address::SYSTEM;

    #[test]
    fn contract_call_moves_value_and_fee() {
        let mut s = setup();
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(2),
            FEE,
        );
        s.apply_transaction(&tx, COLLECTOR).unwrap();
        assert_eq!(s.balance_of(Address::user(1)), Amount::from_coins(8) - FEE);
        assert_eq!(s.balance_of(Address::user(3)), Amount::from_coins(2));
        assert_eq!(s.balance_of(COLLECTOR), FEE);
        assert_eq!(s.nonce_of(Address::user(1)), 1);
        assert_eq!(s.contract(ContractId::new(0)).unwrap().invocations, 1);
    }

    #[test]
    fn replay_is_rejected() {
        let mut s = setup();
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            FEE,
        );
        s.apply_transaction(&tx, COLLECTOR).unwrap();
        let err = s.apply_transaction(&tx, COLLECTOR).unwrap_err();
        assert!(matches!(
            err,
            LedgerError::BadNonce {
                got: 0,
                expected: 1,
                ..
            }
        ));
    }

    #[test]
    fn overspend_is_rejected_without_mutation() {
        let mut s = setup();
        let before = s.clone();
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(100),
            FEE,
        );
        let err = s.apply_transaction(&tx, COLLECTOR).unwrap_err();
        assert!(matches!(err, LedgerError::InsufficientBalance { .. }));
        assert_eq!(
            s.balance_of(Address::user(1)),
            before.balance_of(Address::user(1))
        );
        assert_eq!(s.nonce_of(Address::user(1)), 0);
    }

    #[test]
    fn double_spend_second_leg_fails() {
        // Balance 10: two txs of 6 each conflict — only one can apply.
        let mut s = setup();
        let tx1 = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(6),
            FEE,
        );
        let tx2 = Transaction::direct(
            Address::user(1),
            1,
            Address::user(2),
            Amount::from_coins(6),
            FEE,
        );
        s.apply_transaction(&tx1, COLLECTOR).unwrap();
        let err = s.apply_transaction(&tx2, COLLECTOR).unwrap_err();
        assert!(matches!(err, LedgerError::InsufficientBalance { .. }));
    }

    #[test]
    fn condition_gates_contract_calls() {
        let mut s = State::new();
        s.fund_user(Address::user(1), Amount::from_coins(10));
        s.fund_user(Address::user(2), Amount::from_coins(5)); // B: 5 coins
                                                              // "Transfer to B only if B's balance is below 1 coin."
        s.register_contract(SmartContract::conditional(
            ContractId::new(0),
            Address::user(2),
            Condition::BalanceBelow(Address::user(2), Amount::from_coins(1)),
        ));
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(2),
            FEE,
        );
        let err = s.apply_transaction(&tx, COLLECTOR).unwrap_err();
        assert_eq!(err, LedgerError::ConditionNotMet(ContractId::new(0)));
    }

    #[test]
    fn unknown_contract_and_sender_rejected() {
        let mut s = setup();
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(9),
            Amount::from_coins(1),
            FEE,
        );
        assert_eq!(
            s.apply_transaction(&tx, COLLECTOR).unwrap_err(),
            LedgerError::UnknownContract(ContractId::new(9))
        );
        let tx = Transaction::direct(
            Address::user(99),
            0,
            Address::user(1),
            Amount::from_coins(1),
            FEE,
        );
        assert_eq!(
            s.apply_transaction(&tx, COLLECTOR).unwrap_err(),
            LedgerError::UnknownSender(Address::user(99))
        );
    }

    #[test]
    fn direct_transfer_to_contract_account_rejected() {
        let mut s = setup();
        let contract_addr = s.contract(ContractId::new(0)).unwrap().address;
        let tx = Transaction::direct(
            Address::user(1),
            0,
            contract_addr,
            Amount::from_coins(1),
            FEE,
        );
        assert_eq!(
            s.apply_transaction(&tx, COLLECTOR).unwrap_err(),
            LedgerError::TransferToContract(contract_addr)
        );
    }

    #[test]
    fn multi_input_draws_from_every_input() {
        let mut s = setup();
        s.fund_user(Address::user(4), Amount::from_coins(10));
        let tx = Transaction::multi_input(
            Address::user(1),
            0,
            vec![Address::user(1), Address::user(2), Address::user(4)],
            Address::user(5),
            Amount::from_raw(9),
            FEE,
        );
        s.apply_transaction(&tx, COLLECTOR).unwrap();
        assert_eq!(s.balance_of(Address::user(5)), Amount::from_raw(9));
        assert_eq!(
            s.balance_of(Address::user(1)),
            Amount::from_coins(10) - Amount::from_raw(3) - FEE
        );
        assert_eq!(
            s.balance_of(Address::user(2)),
            Amount::from_coins(10) - Amount::from_raw(3)
        );
    }

    #[test]
    fn multi_input_failure_names_the_input() {
        let mut s = setup();
        let tx = Transaction::multi_input(
            Address::user(1),
            0,
            vec![Address::user(1), Address::user(42)],
            Address::user(5),
            Amount::from_raw(2),
            FEE,
        );
        match s.apply_transaction(&tx, COLLECTOR).unwrap_err() {
            LedgerError::InputFailed(1, inner) => {
                assert_eq!(*inner, LedgerError::UnknownSender(Address::user(42)));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_inputs_rejected() {
        let mut s = setup();
        let tx = Transaction::multi_input(
            Address::user(1),
            0,
            vec![],
            Address::user(5),
            Amount::from_raw(2),
            FEE,
        );
        assert_eq!(
            s.apply_transaction(&tx, COLLECTOR).unwrap_err(),
            LedgerError::EmptyInputs
        );
    }

    #[test]
    fn block_application_mints_reward_and_pays_fees() {
        let mut s = setup();
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            FEE,
        );
        let block = Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::new(0),
            MinerId::new(7),
            SimTime::from_secs(60),
            0,
            vec![tx],
        );
        let supply_before = s.total_balance();
        s.apply_block(&block).unwrap();
        let coinbase = Address::miner(7);
        assert_eq!(s.balance_of(coinbase), BLOCK_REWARD + FEE);
        assert_eq!(s.minted(), BLOCK_REWARD);
        assert_eq!(s.total_balance(), supply_before + BLOCK_REWARD);
    }

    #[test]
    fn block_with_invalid_tx_rolls_back_entirely() {
        let mut s = setup();
        let good = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            FEE,
        );
        let bad = Transaction::call(
            Address::user(2),
            5, // wrong nonce
            ContractId::new(0),
            Amount::from_coins(1),
            FEE,
        );
        let block = Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::new(0),
            MinerId::new(0),
            SimTime::ZERO,
            0,
            vec![good, bad],
        );
        let before = s.clone();
        assert!(s.apply_block(&block).is_err());
        assert_eq!(s.total_balance(), before.total_balance());
        assert_eq!(s.nonce_of(Address::user(1)), 0);
        assert_eq!(s.minted(), Amount::ZERO);
    }

    #[test]
    fn block_with_duplicate_tx_rejected() {
        let mut s = setup();
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            FEE,
        );
        let block = Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::new(0),
            MinerId::new(0),
            SimTime::ZERO,
            0,
            vec![tx.clone(), tx.clone()],
        );
        assert_eq!(
            s.apply_block(&block).unwrap_err(),
            LedgerError::DuplicateTxInBlock(tx.id())
        );
    }

    #[test]
    fn tampered_block_body_rejected() {
        let mut s = setup();
        let tx = Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            FEE,
        );
        let mut block = Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::new(0),
            MinerId::new(0),
            SimTime::ZERO,
            0,
            vec![tx],
        );
        block.transactions[0].fee = Amount::from_raw(9999);
        assert_eq!(s.apply_block(&block).unwrap_err(), LedgerError::BadTxRoot);
    }

    #[test]
    fn shares_sum_exactly() {
        for value in [0u64, 1, 9, 10, 100, 101] {
            for n in 1..=7usize {
                let shares = split_shares(Amount::from_raw(value), n);
                assert_eq!(shares.len(), n);
                let total: Amount = shares.into_iter().sum();
                assert_eq!(total, Amount::from_raw(value));
            }
        }
    }

    proptest! {
        /// Value conservation: any sequence of applied transactions keeps
        /// Σ balances == Σ genesis funds (fees move, never vanish).
        #[test]
        fn prop_conservation(ops in proptest::collection::vec((0u64..4, 0u64..4, 1u64..1000, 0u64..50), 0..40)) {
            let mut s = State::new();
            for u in 0..4 {
                s.fund_user(Address::user(u), Amount::from_coins(100));
            }
            s.register_contract(SmartContract::unconditional(
                ContractId::new(0),
                Address::user(2),
            ));
            let genesis = s.total_balance();
            let mut applied = 0u32;
            for (from, to, value, fee) in ops {
                let sender = Address::user(from);
                let tx = if value % 2 == 0 {
                    Transaction::call(
                        sender,
                        s.nonce_of(sender),
                        ContractId::new(0),
                        Amount::from_raw(value),
                        Amount::from_raw(fee),
                    )
                } else {
                    Transaction::direct(
                        sender,
                        s.nonce_of(sender),
                        Address::user(to),
                        Amount::from_raw(value),
                        Amount::from_raw(fee),
                    )
                };
                if s.apply_transaction(&tx, COLLECTOR).is_ok() {
                    applied += 1;
                }
                prop_assert_eq!(s.total_balance(), genesis + s.minted());
            }
            // Sanity: with 100-coin balances, nearly all small ops apply.
            prop_assert!(applied > 0 || s.total_balance() == genesis);
        }
    }
}
