//! State snapshots: canonical serialization, digests, and restore.
//!
//! New miners joining a shard need the shard's state without replaying its
//! whole history (the paper's future-work concern about MaxShard storage).
//! A snapshot is a canonical, deterministic encoding of a [`State`]:
//! accounts sorted by address, contracts in id order — so two honest nodes
//! produce byte-identical snapshots and the SHA-256 [`StateSnapshot::digest`]
//! doubles as a state commitment that can be pinned in checkpoints.

use crate::account::{Account, AccountKind};
use crate::contract::{Condition, SmartContract};
use crate::state::State;
use cshard_crypto::Sha256;
use cshard_json as json;
use cshard_primitives::{Address, Amount, ContractId, Hash32};

/// A serializable snapshot of a [`State`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateSnapshot {
    /// Accounts in ascending address order (canonical).
    pub accounts: Vec<(Address, Account)>,
    /// Contracts in id order.
    pub contracts: Vec<SmartContract>,
    /// Total minted rewards.
    pub minted: Amount,
}

impl StateSnapshot {
    /// Captures a state.
    pub fn capture(state: &State) -> StateSnapshot {
        let mut accounts: Vec<(Address, Account)> = state
            .accounts_iter()
            .map(|(a, acct)| (*a, acct.clone()))
            .collect();
        accounts.sort_by_key(|&(a, _)| a);
        let contracts = (0..state.contract_count() as u32)
            .map(|c| {
                state
                    .contract(cshard_primitives::ContractId::new(c))
                    .expect("dense registry")
                    .clone()
            })
            .collect();
        StateSnapshot {
            accounts,
            contracts,
            minted: state.minted(),
        }
    }

    /// Rebuilds the state. The result is equivalent to the captured one:
    /// same balances, nonces, contracts and mint counter.
    pub fn restore(&self) -> State {
        State::from_parts(
            self.accounts.iter().cloned(),
            self.contracts.clone(),
            self.minted,
        )
    }

    /// The canonical SHA-256 commitment of the snapshot.
    pub fn digest(&self) -> Hash32 {
        let mut h = Sha256::new();
        h.update(b"cshard-state-v1");
        h.update((self.accounts.len() as u64).to_be_bytes());
        for (addr, acct) in &self.accounts {
            h.update(addr.as_bytes());
            h.update(acct.balance.raw().to_be_bytes());
            h.update(acct.nonce.to_be_bytes());
            match acct.kind {
                crate::account::AccountKind::User => {
                    h.update([0u8]);
                }
                crate::account::AccountKind::Contract(id) => {
                    h.update([1u8]);
                    h.update(id.0.to_be_bytes());
                }
            }
        }
        h.update((self.contracts.len() as u64).to_be_bytes());
        for c in &self.contracts {
            h.update(c.id.0.to_be_bytes());
            h.update(c.address.as_bytes());
            h.update(c.destination.as_bytes());
            h.update(c.invocations.to_be_bytes());
            match c.condition {
                crate::contract::Condition::Always => {
                    h.update([0u8]);
                }
                crate::contract::Condition::Never => {
                    h.update([1u8]);
                }
                crate::contract::Condition::BalanceBelow(a, v) => {
                    h.update([2u8]);
                    h.update(a.as_bytes());
                    h.update(v.raw().to_be_bytes());
                }
                crate::contract::Condition::BalanceAtLeast(a, v) => {
                    h.update([3u8]);
                    h.update(a.as_bytes());
                    h.update(v.raw().to_be_bytes());
                }
            }
        }
        h.update(self.minted.raw().to_be_bytes());
        h.finalize()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        json::ObjectBuilder::new()
            .field(
                "accounts",
                json::Value::Array(
                    self.accounts
                        .iter()
                        .map(|(addr, acct)| {
                            json::ObjectBuilder::new()
                                .field("address", addr_to_json(addr))
                                .field("balance", acct.balance.raw())
                                .field("nonce", acct.nonce)
                                .field(
                                    "kind",
                                    match acct.kind {
                                        AccountKind::User => json::Value::from("user"),
                                        AccountKind::Contract(id) => json::ObjectBuilder::new()
                                            .field("contract", id.0)
                                            .build(),
                                    },
                                )
                                .build()
                        })
                        .collect(),
                ),
            )
            .field(
                "contracts",
                json::Value::Array(
                    self.contracts
                        .iter()
                        .map(|c| {
                            json::ObjectBuilder::new()
                                .field("id", c.id.0)
                                .field("address", addr_to_json(&c.address))
                                .field("destination", addr_to_json(&c.destination))
                                .field("invocations", c.invocations)
                                .field("condition", condition_to_json(&c.condition))
                                .build()
                        })
                        .collect(),
                ),
            )
            .field("minted", self.minted.raw())
            .build()
            .to_string_compact()
    }

    /// Parses a JSON snapshot.
    pub fn from_json(text: &str) -> Result<StateSnapshot, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let accounts = doc
            .get("accounts")
            .and_then(|v| v.as_array())
            .ok_or("snapshot: missing accounts")?
            .iter()
            .map(|entry| {
                let addr = addr_from_json(entry.get("address"))?;
                let balance = entry
                    .get("balance")
                    .and_then(|v| v.as_u64())
                    .ok_or("account: missing balance")?;
                let nonce = entry
                    .get("nonce")
                    .and_then(|v| v.as_u64())
                    .ok_or("account: missing nonce")?;
                let kind = match entry.get("kind") {
                    Some(k) if k.as_str() == Some("user") => AccountKind::User,
                    Some(k) => AccountKind::Contract(ContractId::new(
                        k.get("contract")
                            .and_then(|v| v.as_u64())
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or("account: bad kind")?,
                    )),
                    None => return Err("account: missing kind".to_string()),
                };
                Ok((
                    addr,
                    Account {
                        balance: Amount::from_raw(balance),
                        nonce,
                        kind,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let contracts = doc
            .get("contracts")
            .and_then(|v| v.as_array())
            .ok_or("snapshot: missing contracts")?
            .iter()
            .map(|entry| {
                Ok(SmartContract {
                    id: ContractId::new(
                        entry
                            .get("id")
                            .and_then(|v| v.as_u64())
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or("contract: missing id")?,
                    ),
                    address: addr_from_json(entry.get("address"))?,
                    destination: addr_from_json(entry.get("destination"))?,
                    invocations: entry
                        .get("invocations")
                        .and_then(|v| v.as_u64())
                        .ok_or("contract: missing invocations")?,
                    condition: condition_from_json(entry.get("condition"))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let minted = doc
            .get("minted")
            .and_then(|v| v.as_u64())
            .ok_or("snapshot: missing minted")?;
        Ok(StateSnapshot {
            accounts,
            contracts,
            minted: Amount::from_raw(minted),
        })
    }
}

fn addr_to_json(addr: &Address) -> json::Value {
    json::Value::from(cshard_primitives::hex::encode(addr.as_bytes()))
}

fn addr_from_json(v: Option<&json::Value>) -> Result<Address, String> {
    let text = v.and_then(|v| v.as_str()).ok_or("missing address")?;
    let bytes = cshard_primitives::hex::decode(text).ok_or("bad address hex")?;
    let arr: [u8; 20] = bytes.try_into().map_err(|_| "address must be 20 bytes")?;
    Ok(Address::from_bytes(arr))
}

fn condition_to_json(condition: &Condition) -> json::Value {
    let guarded = |tag: &str, a: &Address, v: &Amount| {
        json::ObjectBuilder::new()
            .field(
                tag,
                json::ObjectBuilder::new()
                    .field("address", addr_to_json(a))
                    .field("value", v.raw())
                    .build(),
            )
            .build()
    };
    match condition {
        Condition::Always => json::Value::from("always"),
        Condition::Never => json::Value::from("never"),
        Condition::BalanceBelow(a, v) => guarded("balance_below", a, v),
        Condition::BalanceAtLeast(a, v) => guarded("balance_at_least", a, v),
    }
}

fn condition_from_json(v: Option<&json::Value>) -> Result<Condition, String> {
    let v = v.ok_or("contract: missing condition")?;
    if let Some(tag) = v.as_str() {
        return match tag {
            "always" => Ok(Condition::Always),
            "never" => Ok(Condition::Never),
            other => Err(format!("unknown condition {other:?}")),
        };
    }
    let guarded = |inner: &json::Value| -> Result<(Address, Amount), String> {
        let addr = addr_from_json(inner.get("address"))?;
        let value = inner
            .get("value")
            .and_then(|v| v.as_u64())
            .ok_or("condition: missing value")?;
        Ok((addr, Amount::from_raw(value)))
    };
    if let Some(inner) = v.get("balance_below") {
        let (a, amt) = guarded(inner)?;
        Ok(Condition::BalanceBelow(a, amt))
    } else if let Some(inner) = v.get("balance_at_least") {
        let (a, amt) = guarded(inner)?;
        Ok(Condition::BalanceAtLeast(a, amt))
    } else {
        Err("unknown condition shape".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use cshard_primitives::ContractId;

    fn busy_state() -> State {
        let mut s = State::new();
        for u in 0..10 {
            s.fund_user(Address::user(u), Amount::from_coins(20));
        }
        s.register_contract(SmartContract::unconditional(
            ContractId::new(0),
            Address::user(99),
        ));
        for u in 0..5 {
            let tx = Transaction::call(
                Address::user(u),
                0,
                ContractId::new(0),
                Amount::from_coins(1),
                Amount::from_raw(7),
            );
            s.apply_transaction(&tx, Address::miner(0)).unwrap();
        }
        s.mint(Address::miner(0), Amount::from_coins(2));
        s
    }

    #[test]
    fn capture_restore_round_trips_semantics() {
        let s = busy_state();
        let restored = StateSnapshot::capture(&s).restore();
        assert_eq!(restored.total_balance(), s.total_balance());
        assert_eq!(restored.minted(), s.minted());
        for u in 0..10 {
            assert_eq!(
                restored.balance_of(Address::user(u)),
                s.balance_of(Address::user(u))
            );
            assert_eq!(
                restored.nonce_of(Address::user(u)),
                s.nonce_of(Address::user(u))
            );
        }
        assert_eq!(
            restored.contract(ContractId::new(0)).unwrap().invocations,
            5
        );
    }

    #[test]
    fn restored_state_accepts_further_transactions() {
        let s = busy_state();
        let mut restored = StateSnapshot::capture(&s).restore();
        // User 0's nonce is 1 now; the next transaction must use it.
        let tx = Transaction::call(
            Address::user(0),
            1,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(3),
        );
        restored.apply_transaction(&tx, Address::miner(0)).unwrap();
    }

    #[test]
    fn digest_is_canonical_across_replicas() {
        // Build "the same" state along two different operation orders; the
        // snapshots and digests must agree.
        let mut a = State::new();
        a.fund_user(Address::user(1), Amount::from_coins(5));
        a.fund_user(Address::user(2), Amount::from_coins(7));
        let mut b = State::new();
        b.fund_user(Address::user(2), Amount::from_coins(7));
        b.fund_user(Address::user(1), Amount::from_coins(5));
        let sa = StateSnapshot::capture(&a);
        let sb = StateSnapshot::capture(&b);
        assert_eq!(sa, sb);
        assert_eq!(sa.digest(), sb.digest());
    }

    #[test]
    fn digest_detects_any_tampering() {
        let snap = StateSnapshot::capture(&busy_state());
        let base = snap.digest();
        let mut t = snap.clone();
        t.accounts[0].1.balance += Amount::from_raw(1);
        assert_ne!(t.digest(), base);
        let mut t = snap.clone();
        t.minted += Amount::from_raw(1);
        assert_ne!(t.digest(), base);
        let mut t = snap.clone();
        t.contracts[0].invocations += 1;
        assert_ne!(t.digest(), base);
    }

    #[test]
    fn json_round_trip() {
        let snap = StateSnapshot::capture(&busy_state());
        let back = StateSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(snap.digest(), back.digest());
        assert!(StateSnapshot::from_json("nope").is_err());
    }
}
