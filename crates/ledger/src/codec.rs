//! Canonical binary wire format for transactions and blocks.
//!
//! Gossiping blocks needs a deterministic byte encoding; JSON (the snapshot
//! format) is neither compact nor canonical. This codec is a minimal
//! length-prefixed binary format with explicit version tags, strict decode
//! validation (no trailing bytes, length caps) and exhaustive round-trip
//! property tests. The transaction encoding here is byte-compatible with
//! the preimage of [`Transaction::id`] where it matters: re-encoding a
//! decoded transaction reproduces identical bytes, so ids survive the wire.

use crate::block::{Block, BlockHeader};
use crate::transaction::{Transaction, TxKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cshard_primitives::{Address, Amount, ContractId, Hash32, MinerId, ShardId, SimTime};
use std::fmt;

/// Maximum transactions in one decoded block — rejects absurd length
/// prefixes before allocating.
pub const MAX_BLOCK_TXS: u64 = 100_000;
/// Maximum inputs in one multi-input transaction.
pub const MAX_TX_INPUTS: u64 = 10_000;

/// Wire format version tag.
const VERSION: u8 = 1;

/// Decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Unknown version tag.
    BadVersion(u8),
    /// Unknown enum discriminant.
    BadTag(u8),
    /// A length prefix exceeded its cap.
    LengthOverflow(u64),
    /// Bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds cap"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn get_hash(buf: &mut impl Buf) -> Result<Hash32, CodecError> {
    need(buf, 32)?;
    let mut b = [0u8; 32];
    buf.copy_to_slice(&mut b);
    Ok(Hash32(b))
}

fn get_address(buf: &mut impl Buf) -> Result<Address, CodecError> {
    need(buf, 20)?;
    let mut b = [0u8; 20];
    buf.copy_to_slice(&mut b);
    Ok(Address(b))
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, CodecError> {
    need(buf, 8)?;
    Ok(buf.get_u64())
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, CodecError> {
    need(buf, 4)?;
    Ok(buf.get_u32())
}

fn get_u8(buf: &mut impl Buf) -> Result<u8, CodecError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

/// Encodes a transaction.
pub fn encode_tx(tx: &Transaction, out: &mut BytesMut) {
    out.put_u8(VERSION);
    out.put_slice(tx.sender.as_bytes());
    out.put_u64(tx.nonce);
    out.put_u64(tx.fee.raw());
    match &tx.kind {
        TxKind::ContractCall { contract, value } => {
            out.put_u8(0);
            out.put_u32(contract.0);
            out.put_u64(value.raw());
        }
        TxKind::DirectTransfer { to, value } => {
            out.put_u8(1);
            out.put_slice(to.as_bytes());
            out.put_u64(value.raw());
        }
        TxKind::MultiInput { inputs, to, value } => {
            out.put_u8(2);
            out.put_u64(inputs.len() as u64);
            for input in inputs {
                out.put_slice(input.as_bytes());
            }
            out.put_slice(to.as_bytes());
            out.put_u64(value.raw());
        }
    }
}

/// Decodes a transaction from the front of `buf` (consumes exactly the
/// encoded bytes, allowing sequential decode inside blocks).
pub fn decode_tx(buf: &mut impl Buf) -> Result<Transaction, CodecError> {
    let version = get_u8(buf)?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let sender = get_address(buf)?;
    let nonce = get_u64(buf)?;
    let fee = Amount::from_raw(get_u64(buf)?);
    let kind = match get_u8(buf)? {
        0 => TxKind::ContractCall {
            contract: ContractId::new(get_u32(buf)?),
            value: Amount::from_raw(get_u64(buf)?),
        },
        1 => TxKind::DirectTransfer {
            to: get_address(buf)?,
            value: Amount::from_raw(get_u64(buf)?),
        },
        2 => {
            let n = get_u64(buf)?;
            if n > MAX_TX_INPUTS {
                return Err(CodecError::LengthOverflow(n));
            }
            let mut inputs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                inputs.push(get_address(buf)?);
            }
            TxKind::MultiInput {
                inputs,
                to: get_address(buf)?,
                value: Amount::from_raw(get_u64(buf)?),
            }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(Transaction {
        sender,
        nonce,
        fee,
        kind,
    })
}

/// Encodes a whole block.
pub fn encode_block(block: &Block) -> Bytes {
    let mut out = BytesMut::with_capacity(160 + block.transactions.len() * 64);
    out.put_u8(VERSION);
    let h = &block.header;
    out.put_slice(h.parent.as_bytes());
    out.put_u64(h.height);
    out.put_u32(h.shard.0);
    out.put_u32(h.miner.0);
    out.put_u64(h.timestamp.as_millis());
    out.put_slice(h.tx_root.as_bytes());
    out.put_u32(h.difficulty_bits);
    out.put_u64(h.pow_nonce);
    out.put_u64(block.transactions.len() as u64);
    for tx in &block.transactions {
        encode_tx(tx, &mut out);
    }
    out.freeze()
}

/// Decodes a block, requiring the input to be exactly one block.
pub fn decode_block(bytes: &[u8]) -> Result<Block, CodecError> {
    let mut buf = bytes;
    let version = get_u8(&mut buf)?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let header = BlockHeader {
        parent: get_hash(&mut buf)?,
        height: get_u64(&mut buf)?,
        shard: ShardId(get_u32(&mut buf)?),
        miner: MinerId(get_u32(&mut buf)?),
        timestamp: SimTime::from_millis(get_u64(&mut buf)?),
        tx_root: get_hash(&mut buf)?,
        difficulty_bits: get_u32(&mut buf)?,
        pow_nonce: get_u64(&mut buf)?,
    };
    let n = get_u64(&mut buf)?;
    if n > MAX_BLOCK_TXS {
        return Err(CodecError::LengthOverflow(n));
    }
    let mut transactions = Vec::with_capacity(n as usize);
    for _ in 0..n {
        transactions.push(decode_tx(&mut buf)?);
    }
    if buf.remaining() > 0 {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(Block {
        header,
        transactions,
    })
}

/// Convenience: encode one transaction standalone.
pub fn tx_bytes(tx: &Transaction) -> Bytes {
    let mut out = BytesMut::with_capacity(80);
    encode_tx(tx, &mut out);
    out.freeze()
}

/// Convenience: decode one standalone transaction (must consume all input).
pub fn tx_from_bytes(bytes: &[u8]) -> Result<Transaction, CodecError> {
    let mut buf = bytes;
    let tx = decode_tx(&mut buf)?;
    if buf.remaining() > 0 {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_txs() -> Vec<Transaction> {
        vec![
            Transaction::call(
                Address::user(1),
                3,
                ContractId::new(7),
                Amount::from_coins(2),
                Amount::from_raw(55),
            ),
            Transaction::direct(
                Address::user(2),
                0,
                Address::user(9),
                Amount::from_raw(123),
                Amount::from_raw(1),
            ),
            Transaction::multi_input(
                Address::user(3),
                9,
                vec![Address::user(3), Address::user(4), Address::user(5)],
                Address::user(6),
                Amount::from_raw(999),
                Amount::from_raw(77),
            ),
        ]
    }

    #[test]
    fn tx_round_trip_preserves_identity() {
        for tx in sample_txs() {
            let bytes = tx_bytes(&tx);
            let back = tx_from_bytes(&bytes).unwrap();
            assert_eq!(back, tx);
            assert_eq!(back.id(), tx.id(), "wire transport must preserve ids");
            // Canonical: re-encoding yields identical bytes.
            assert_eq!(tx_bytes(&back), bytes);
        }
    }

    #[test]
    fn block_round_trip() {
        let block = Block::assemble(
            Hash32::ZERO,
            4,
            ShardId::new(2),
            MinerId::new(8),
            SimTime::from_secs(240),
            12,
            sample_txs(),
        );
        let bytes = encode_block(&block);
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.hash(), block.hash());
        assert!(back.tx_root_matches());
    }

    #[test]
    fn empty_block_round_trip() {
        let block = Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::MAX_SHARD,
            MinerId::new(0),
            SimTime::ZERO,
            0,
            vec![],
        );
        let back = decode_block(&encode_block(&block)).unwrap();
        assert_eq!(back, block);
    }

    #[test]
    fn truncation_is_detected_at_every_byte() {
        let block = Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::new(0),
            MinerId::new(0),
            SimTime::from_secs(1),
            0,
            sample_txs(),
        );
        let bytes = encode_block(&block);
        for cut in 0..bytes.len() {
            let err = decode_block(&bytes[..cut]).unwrap_err();
            assert_eq!(err, CodecError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let tx = &sample_txs()[0];
        let mut bytes = tx_bytes(tx).to_vec();
        bytes.push(0xAB);
        assert_eq!(
            tx_from_bytes(&bytes).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_version_and_tag_rejected() {
        let tx = &sample_txs()[0];
        let mut bytes = tx_bytes(tx).to_vec();
        bytes[0] = 9;
        assert_eq!(
            tx_from_bytes(&bytes).unwrap_err(),
            CodecError::BadVersion(9)
        );
        let mut bytes = tx_bytes(tx).to_vec();
        // kind tag sits after version(1)+sender(20)+nonce(8)+fee(8).
        bytes[37] = 7;
        assert_eq!(tx_from_bytes(&bytes).unwrap_err(), CodecError::BadTag(7));
    }

    #[test]
    fn absurd_length_prefixes_rejected_without_allocation() {
        // A multi-input tx claiming 2^60 inputs.
        let mut out = BytesMut::new();
        out.put_u8(1);
        out.put_slice(Address::user(1).as_bytes());
        out.put_u64(0);
        out.put_u64(1);
        out.put_u8(2);
        out.put_u64(1 << 60);
        let err = tx_from_bytes(&out).unwrap_err();
        assert_eq!(err, CodecError::LengthOverflow(1 << 60));
    }

    fn arb_tx() -> impl Strategy<Value = Transaction> {
        let call = (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(u, n, c, v, f)| Transaction {
                sender: Address::user(u),
                nonce: n,
                fee: Amount::from_raw(f),
                kind: TxKind::ContractCall {
                    contract: ContractId::new(c),
                    value: Amount::from_raw(v),
                },
            });
        let direct = (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(u, n, t, v, f)| Transaction {
                sender: Address::user(u),
                nonce: n,
                fee: Amount::from_raw(f),
                kind: TxKind::DirectTransfer {
                    to: Address::user(t),
                    value: Amount::from_raw(v),
                },
            });
        let multi = (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>(), 0..6),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(u, n, ins, v, f)| Transaction {
                sender: Address::user(u),
                nonce: n,
                fee: Amount::from_raw(f),
                kind: TxKind::MultiInput {
                    inputs: ins.into_iter().map(Address::user).collect(),
                    to: Address::user(u ^ 0xFF),
                    value: Amount::from_raw(v),
                },
            });
        prop_oneof![call, direct, multi]
    }

    proptest! {
        #[test]
        fn prop_tx_round_trip(tx in arb_tx()) {
            let bytes = tx_bytes(&tx);
            let back = tx_from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, &tx);
            prop_assert_eq!(back.id(), tx.id());
        }

        #[test]
        fn prop_block_round_trip(txs in proptest::collection::vec(arb_tx(), 0..12), height in any::<u64>(), bits in 0u32..64) {
            let block = Block::assemble(
                Hash32::ZERO,
                height,
                ShardId::new(3),
                MinerId::new(1),
                SimTime::from_millis(height % 1_000_000),
                bits,
                txs,
            );
            let back = decode_block(&encode_block(&block)).unwrap();
            prop_assert_eq!(back.hash(), block.hash());
            prop_assert_eq!(back, block);
        }

        #[test]
        fn prop_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary bytes returns an error or a valid value;
            // it must never panic.
            let _ = decode_block(&bytes);
            let _ = tx_from_bytes(&bytes);
        }
    }
}
