//! Light clients: header-chain tracking plus Merkle inclusion proofs.
//!
//! A user who sent a transaction into some shard should not need that
//! shard's full ledger to learn it confirmed — contract-centric sharding
//! explicitly wants most participants to hold *less* state, not more. A
//! [`LightClient`] follows a shard with headers only (96-ish bytes each),
//! verifying PoW and linkage, and accepts [`InclusionProof`]s that tie a
//! transaction to a header's `tx_root` through the Merkle path.

use crate::block::{Block, BlockHeader};
use crate::merkle::{merkle_proof, verify_proof, MerkleProof};
use crate::transaction::Transaction;
use cshard_primitives::{BlockHeight, Hash32, ShardId, TxId};
use std::collections::HashMap;

/// Why a light client rejected a header or proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LightError {
    /// The header's parent is not the current tip (light clients follow
    /// one canonical chain; forks require a resync).
    NotOnTip {
        /// Expected parent (the current tip).
        expected: Hash32,
        /// Parent the header claimed.
        got: Hash32,
    },
    /// Height must increase by one.
    BadHeight {
        /// Claimed height.
        got: BlockHeight,
        /// Expected height.
        expected: BlockHeight,
    },
    /// Wrong shard.
    WrongShard(ShardId),
    /// The header fails its proof of work.
    InsufficientWork,
    /// The referenced header is unknown.
    UnknownHeader(Hash32),
    /// The Merkle path does not connect the transaction to the root.
    BadProof,
}

/// A transaction inclusion proof, produced by a full node.
#[derive(Clone, Debug)]
pub struct InclusionProof {
    /// Hash of the block the transaction is in.
    pub block_hash: Hash32,
    /// The Merkle path.
    pub path: MerkleProof,
}

/// Builds an inclusion proof from a full block (full-node side).
pub fn prove_inclusion(block: &Block, tx_id: &TxId) -> Option<InclusionProof> {
    let ids: Vec<TxId> = block.transactions.iter().map(|t| t.id()).collect();
    let index = ids.iter().position(|id| id == tx_id)?;
    let path = merkle_proof(&ids, index)?;
    Some(InclusionProof {
        block_hash: block.hash(),
        path,
    })
}

/// A header-only follower of one shard's chain.
#[derive(Clone, Debug)]
pub struct LightClient {
    shard: ShardId,
    difficulty_bits: u32,
    headers: HashMap<Hash32, BlockHeader>,
    tip: Hash32,
    height: BlockHeight,
}

impl LightClient {
    /// A client synced to genesis of `shard`.
    pub fn new(shard: ShardId, difficulty_bits: u32) -> Self {
        LightClient {
            shard,
            difficulty_bits,
            headers: HashMap::new(),
            tip: Hash32::ZERO,
            height: 0,
        }
    }

    /// The current tip hash.
    pub fn tip(&self) -> Hash32 {
        self.tip
    }

    /// The current height.
    pub fn height(&self) -> BlockHeight {
        self.height
    }

    /// Number of stored headers.
    pub fn header_count(&self) -> usize {
        self.headers.len()
    }

    /// Accepts the next canonical header after verifying shard id, PoW,
    /// linkage and height.
    pub fn accept_header(&mut self, header: BlockHeader) -> Result<(), LightError> {
        if header.shard != self.shard {
            return Err(LightError::WrongShard(header.shard));
        }
        if header.parent != self.tip {
            return Err(LightError::NotOnTip {
                expected: self.tip,
                got: header.parent,
            });
        }
        let expected = self.height + 1;
        if header.height != expected {
            return Err(LightError::BadHeight {
                got: header.height,
                expected,
            });
        }
        if header.difficulty_bits != self.difficulty_bits
            || !header.hash().meets_difficulty(self.difficulty_bits)
        {
            return Err(LightError::InsufficientWork);
        }
        let hash = header.hash();
        self.headers.insert(hash, header);
        self.tip = hash;
        self.height = expected;
        Ok(())
    }

    /// Verifies that `tx` is included in a block this client has accepted.
    pub fn verify_inclusion(
        &self,
        tx: &Transaction,
        proof: &InclusionProof,
    ) -> Result<BlockHeight, LightError> {
        let header = self
            .headers
            .get(&proof.block_hash)
            .ok_or(LightError::UnknownHeader(proof.block_hash))?;
        if verify_proof(&tx.id(), &proof.path, &header.tx_root) {
            Ok(header.height)
        } else {
            Err(LightError::BadProof)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_primitives::{Address, Amount, ContractId, MinerId, SimTime};

    const BITS: u32 = 8;

    fn tx(n: u64) -> Transaction {
        Transaction::call(
            Address::user(n),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(n),
        )
    }

    /// A local nonce search (the consensus crate cannot be a dev-dep here
    /// without a dependency cycle producing duplicate crate types).
    fn grind(b: &mut Block) {
        while !b.header.hash().meets_difficulty(b.header.difficulty_bits) {
            b.header.pow_nonce += 1;
        }
    }

    fn mined_block(parent: Hash32, height: u64, txs: Vec<Transaction>) -> Block {
        let mut b = Block::assemble(
            parent,
            height,
            ShardId::new(0),
            MinerId::new(0),
            SimTime::from_secs(height * 60),
            BITS,
            txs,
        );
        grind(&mut b);
        b
    }

    #[test]
    fn follows_a_chain_and_verifies_inclusion() {
        let mut client = LightClient::new(ShardId::new(0), BITS);
        let b1 = mined_block(Hash32::ZERO, 1, vec![tx(1), tx(2), tx(3)]);
        let b2 = mined_block(b1.hash(), 2, vec![tx(4)]);
        client.accept_header(b1.header.clone()).unwrap();
        client.accept_header(b2.header.clone()).unwrap();
        assert_eq!(client.height(), 2);
        assert_eq!(client.header_count(), 2);

        // Full node builds proofs; the light client checks them.
        let p2 = prove_inclusion(&b1, &tx(2).id()).unwrap();
        assert_eq!(client.verify_inclusion(&tx(2), &p2), Ok(1));
        let p4 = prove_inclusion(&b2, &tx(4).id()).unwrap();
        assert_eq!(client.verify_inclusion(&tx(4), &p4), Ok(2));
    }

    #[test]
    fn rejects_wrong_tx_against_a_valid_proof() {
        let mut client = LightClient::new(ShardId::new(0), BITS);
        let b1 = mined_block(Hash32::ZERO, 1, vec![tx(1), tx(2)]);
        client.accept_header(b1.header.clone()).unwrap();
        let proof = prove_inclusion(&b1, &tx(1).id()).unwrap();
        // Claiming tx 9 with tx 1's proof fails.
        assert_eq!(
            client.verify_inclusion(&tx(9), &proof),
            Err(LightError::BadProof)
        );
    }

    #[test]
    fn rejects_unlinked_headers_and_bad_pow() {
        let mut client = LightClient::new(ShardId::new(0), BITS);
        let b1 = mined_block(Hash32::ZERO, 1, vec![tx(1)]);
        let orphan = mined_block(b1.hash(), 2, vec![]);
        assert!(matches!(
            client.accept_header(orphan.header.clone()),
            Err(LightError::NotOnTip { .. })
        ));
        client.accept_header(b1.header.clone()).unwrap();

        // Tampered header: PoW breaks.
        let mut weak = mined_block(b1.hash(), 2, vec![]);
        weak.header.timestamp = SimTime::from_secs(999);
        assert_eq!(
            client.accept_header(weak.header),
            Err(LightError::InsufficientWork)
        );
    }

    #[test]
    fn rejects_foreign_shard_and_unknown_header_proofs() {
        let mut client = LightClient::new(ShardId::new(1), BITS);
        let b1 = mined_block(Hash32::ZERO, 1, vec![tx(1)]);
        assert_eq!(
            client.accept_header(b1.header.clone()),
            Err(LightError::WrongShard(ShardId::new(0)))
        );
        let proof = prove_inclusion(&b1, &tx(1).id()).unwrap();
        assert!(matches!(
            client.verify_inclusion(&tx(1), &proof),
            Err(LightError::UnknownHeader(_))
        ));
    }

    #[test]
    fn proof_for_absent_tx_is_none() {
        let b1 = mined_block(Hash32::ZERO, 1, vec![tx(1)]);
        assert!(prove_inclusion(&b1, &tx(9).id()).is_none());
    }

    #[test]
    fn inclusion_survives_the_wire_codec() {
        // Full node ships the block as bytes; a proof built from the
        // decoded block verifies against headers accepted from the same
        // bytes.
        let mut client = LightClient::new(ShardId::new(0), BITS);
        let b1 = mined_block(Hash32::ZERO, 1, vec![tx(1), tx(2), tx(3)]);
        let bytes = crate::codec::encode_block(&b1);
        let decoded = crate::codec::decode_block(&bytes).unwrap();
        client.accept_header(decoded.header.clone()).unwrap();
        let proof = prove_inclusion(&decoded, &tx(3).id()).unwrap();
        assert_eq!(client.verify_inclusion(&tx(3), &proof), Ok(1));
    }
}
