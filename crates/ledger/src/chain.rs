//! A per-shard ledger: block storage, validation and longest-chain fork
//! choice.
//!
//! Every miner in a shard maintains one of these ("blocks are recorded by
//! all the miners locally in the form of linked lists, called ledgers",
//! Sec. II-A). The chain owns the shard's world state at its canonical tip
//! and re-derives states on forks.

use crate::block::Block;
use crate::error::LedgerError;
use crate::state::State;
use cshard_primitives::{BlockHeight, Hash32, ShardId, TxId};
use std::collections::{BTreeMap, BTreeSet};

/// A shard-local blockchain.
#[derive(Clone, Debug)]
pub struct Chain {
    shard: ShardId,
    /// Required PoW difficulty for every non-genesis block.
    difficulty_bits: u32,
    genesis_hash: Hash32,
    genesis_state: State,
    blocks: BTreeMap<Hash32, Block>,
    heights: BTreeMap<Hash32, BlockHeight>,
    tip: Hash32,
    /// World state at the canonical tip (cached).
    tip_state: State,
}

impl Chain {
    /// Creates a chain for `shard` rooted at an implicit genesis "block"
    /// with hash `Hash32::ZERO`, height 0 and the given genesis state.
    pub fn new(shard: ShardId, difficulty_bits: u32, genesis_state: State) -> Self {
        let mut heights = BTreeMap::new();
        heights.insert(Hash32::ZERO, 0);
        Chain {
            shard,
            difficulty_bits,
            genesis_hash: Hash32::ZERO,
            tip: Hash32::ZERO,
            tip_state: genesis_state.clone(),
            genesis_state,
            blocks: BTreeMap::new(),
            heights,
        }
    }

    /// The shard this chain belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The canonical tip hash (genesis = `Hash32::ZERO`).
    pub fn tip(&self) -> Hash32 {
        self.tip
    }

    /// Height of the canonical tip.
    pub fn height(&self) -> BlockHeight {
        self.heights[&self.tip]
    }

    /// The world state at the canonical tip.
    pub fn state(&self) -> &State {
        &self.tip_state
    }

    /// Number of stored blocks (across all branches, genesis excluded).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Looks up a stored block.
    pub fn block(&self, hash: &Hash32) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// Validates and stores a block; adopts it as the new tip when it
    /// extends the longest chain (ties keep the current tip — first seen
    /// wins, the standard rule).
    ///
    /// Checks, in order: duplicate, shard id, parent known, height, PoW,
    /// Merkle root, and full transaction validity against the parent state.
    pub fn accept_block(&mut self, block: Block) -> Result<(), LedgerError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Err(LedgerError::DuplicateBlock(hash));
        }
        // A block for another shard is simply not ours to record; the outer
        // node logic filters those, so reaching here with one is an error.
        assert_eq!(
            block.header.shard, self.shard,
            "block routed to the wrong shard's chain"
        );
        let parent = block.header.parent;
        let parent_height = *self
            .heights
            .get(&parent)
            .ok_or(LedgerError::UnknownParent(parent))?;
        let expected = parent_height + 1;
        if block.header.height != expected {
            return Err(LedgerError::BadHeight {
                got: block.header.height,
                expected,
            });
        }
        if !block.hash().meets_difficulty(self.difficulty_bits) {
            return Err(LedgerError::InsufficientWork {
                required_bits: self.difficulty_bits,
                got_bits: block.hash().leading_zero_bits(),
            });
        }
        // State transition: apply onto the parent's state.
        let mut state = self.state_at(parent);
        state.apply_block(&block)?; // checks root, duplicates, txs

        self.heights.insert(hash, expected);
        self.blocks.insert(hash, block);
        if expected > self.height() {
            self.tip = hash;
            self.tip_state = state;
        }
        Ok(())
    }

    /// Recomputes the world state at an arbitrary stored block by replaying
    /// the branch from genesis. The canonical tip is served from cache.
    pub fn state_at(&self, hash: Hash32) -> State {
        if hash == self.tip {
            return self.tip_state.clone();
        }
        if hash == self.genesis_hash {
            return self.genesis_state.clone();
        }
        // Walk back to genesis collecting the branch…
        let mut branch = Vec::new();
        let mut cursor = hash;
        while cursor != self.genesis_hash {
            let block = self.blocks.get(&cursor).expect("state_at of unknown block");
            branch.push(cursor);
            cursor = block.header.parent;
        }
        // …then replay forward.
        let mut state = self.genesis_state.clone();
        for h in branch.iter().rev() {
            state
                .apply_block(&self.blocks[h])
                .expect("stored blocks were validated on acceptance");
        }
        state
    }

    /// The canonical chain's blocks, genesis-exclusive, oldest first.
    pub fn canonical_blocks(&self) -> Vec<&Block> {
        let mut branch = Vec::new();
        let mut cursor = self.tip;
        while cursor != self.genesis_hash {
            let block = &self.blocks[&cursor];
            branch.push(block);
            cursor = block.header.parent;
        }
        branch.reverse();
        branch
    }

    /// Ids of every transaction confirmed on the canonical chain.
    pub fn confirmed_tx_ids(&self) -> BTreeSet<TxId> {
        self.canonical_blocks()
            .iter()
            .flat_map(|b| b.transactions.iter().map(|t| t.id()))
            .collect()
    }

    /// Number of empty blocks on the canonical chain — the waste metric the
    /// merging algorithm targets.
    pub fn empty_block_count(&self) -> usize {
        self.canonical_blocks()
            .iter()
            .filter(|b| b.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::SmartContract;
    use crate::transaction::Transaction;
    use cshard_primitives::{Address, Amount, ContractId, MinerId, SimTime};

    fn genesis_state() -> State {
        let mut s = State::new();
        for u in 0..10 {
            s.fund_user(Address::user(u), Amount::from_coins(100));
        }
        s.register_contract(SmartContract::unconditional(
            ContractId::new(0),
            Address::user(99),
        ));
        s
    }

    fn chain() -> Chain {
        Chain::new(ShardId::new(0), 0, genesis_state())
    }

    fn tx(user: u64, nonce: u64, fee: u64) -> Transaction {
        Transaction::call(
            Address::user(user),
            nonce,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(fee),
        )
    }

    fn make_block(parent: Hash32, height: u64, miner: u32, txs: Vec<Transaction>) -> Block {
        Block::assemble(
            parent,
            height,
            ShardId::new(0),
            MinerId::new(miner),
            SimTime::from_secs(height * 60),
            0,
            txs,
        )
    }

    #[test]
    fn extends_and_updates_tip() {
        let mut c = chain();
        let b1 = make_block(Hash32::ZERO, 1, 0, vec![tx(1, 0, 10)]);
        let h1 = b1.hash();
        c.accept_block(b1).unwrap();
        assert_eq!(c.tip(), h1);
        assert_eq!(c.height(), 1);
        assert_eq!(c.state().nonce_of(Address::user(1)), 1);

        let b2 = make_block(h1, 2, 1, vec![tx(2, 0, 10)]);
        let h2 = b2.hash();
        c.accept_block(b2).unwrap();
        assert_eq!(c.tip(), h2);
        assert_eq!(c.height(), 2);
        assert_eq!(c.confirmed_tx_ids().len(), 2);
    }

    #[test]
    fn rejects_unknown_parent_and_bad_height() {
        let mut c = chain();
        let orphan = make_block(cshard_crypto::sha256(b"nope"), 1, 0, vec![]);
        assert!(matches!(
            c.accept_block(orphan).unwrap_err(),
            LedgerError::UnknownParent(_)
        ));
        let wrong_height = make_block(Hash32::ZERO, 5, 0, vec![]);
        assert_eq!(
            c.accept_block(wrong_height).unwrap_err(),
            LedgerError::BadHeight {
                got: 5,
                expected: 1
            }
        );
    }

    #[test]
    fn rejects_duplicate_block() {
        let mut c = chain();
        let b = make_block(Hash32::ZERO, 1, 0, vec![]);
        c.accept_block(b.clone()).unwrap();
        assert!(matches!(
            c.accept_block(b).unwrap_err(),
            LedgerError::DuplicateBlock(_)
        ));
    }

    #[test]
    fn rejects_invalid_transactions_in_block() {
        let mut c = chain();
        // Nonce 3 is wrong for a fresh account.
        let b = make_block(Hash32::ZERO, 1, 0, vec![tx(1, 3, 10)]);
        assert!(matches!(
            c.accept_block(b).unwrap_err(),
            LedgerError::BadNonce { .. }
        ));
        assert_eq!(c.height(), 0);
    }

    #[test]
    fn pow_difficulty_is_enforced() {
        let mut c = Chain::new(ShardId::new(0), 16, genesis_state());
        let b = make_block(Hash32::ZERO, 1, 0, vec![]);
        // Nonce 0 almost surely fails 16 bits.
        assert!(matches!(
            c.accept_block(b).unwrap_err(),
            LedgerError::InsufficientWork {
                required_bits: 16,
                ..
            }
        ));
    }

    #[test]
    fn fork_choice_prefers_longer_branch_first_seen_on_tie() {
        let mut c = chain();
        let a1 = make_block(Hash32::ZERO, 1, 0, vec![tx(1, 0, 10)]);
        let a1h = a1.hash();
        c.accept_block(a1).unwrap();

        // Competing branch at the same height: tip unchanged.
        let b1 = make_block(Hash32::ZERO, 1, 1, vec![tx(2, 0, 10)]);
        let b1h = b1.hash();
        c.accept_block(b1).unwrap();
        assert_eq!(c.tip(), a1h, "tie keeps first-seen tip");

        // Extend the competing branch: reorg.
        let b2 = make_block(b1h, 2, 1, vec![tx(3, 0, 10)]);
        let b2h = b2.hash();
        c.accept_block(b2).unwrap();
        assert_eq!(c.tip(), b2h);
        // After the reorg, user 1's tx is no longer confirmed.
        let confirmed = c.confirmed_tx_ids();
        assert!(confirmed.contains(&tx(2, 0, 10).id()));
        assert!(confirmed.contains(&tx(3, 0, 10).id()));
        assert!(!confirmed.contains(&tx(1, 0, 10).id()));
        assert_eq!(c.state().nonce_of(Address::user(1)), 0);
        assert_eq!(c.state().nonce_of(Address::user(2)), 1);
    }

    #[test]
    fn conflicting_spend_is_valid_on_its_own_fork_only() {
        // The same nonce-0 tx on two forks is fine; within one branch the
        // second would be a replay. This is the shard-consistency property.
        let mut c = chain();
        let t = tx(1, 0, 10);
        let a1 = make_block(Hash32::ZERO, 1, 0, vec![t.clone()]);
        let a1h = a1.hash();
        c.accept_block(a1).unwrap();
        let b1 = make_block(Hash32::ZERO, 1, 1, vec![t.clone()]);
        c.accept_block(b1).unwrap();
        // Replay on top of branch A is rejected.
        let a2 = make_block(a1h, 2, 0, vec![t]);
        assert!(matches!(
            c.accept_block(a2).unwrap_err(),
            LedgerError::BadNonce { .. }
        ));
    }

    #[test]
    fn empty_block_counting() {
        let mut c = chain();
        let b1 = make_block(Hash32::ZERO, 1, 0, vec![]);
        let h1 = b1.hash();
        c.accept_block(b1).unwrap();
        let b2 = make_block(h1, 2, 0, vec![tx(1, 0, 5)]);
        let h2 = b2.hash();
        c.accept_block(b2).unwrap();
        let b3 = make_block(h2, 3, 0, vec![]);
        c.accept_block(b3).unwrap();
        assert_eq!(c.empty_block_count(), 2);
        assert_eq!(c.block_count(), 3);
    }

    #[test]
    fn state_at_replays_branches() {
        let mut c = chain();
        let b1 = make_block(Hash32::ZERO, 1, 0, vec![tx(1, 0, 10)]);
        let h1 = b1.hash();
        c.accept_block(b1).unwrap();
        let b2 = make_block(h1, 2, 0, vec![tx(1, 1, 10)]);
        let h2 = b2.hash();
        c.accept_block(b2).unwrap();
        assert_eq!(c.state_at(h1).nonce_of(Address::user(1)), 1);
        assert_eq!(c.state_at(h2).nonce_of(Address::user(1)), 2);
        assert_eq!(c.state_at(Hash32::ZERO).nonce_of(Address::user(1)), 0);
    }
}
