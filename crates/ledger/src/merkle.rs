//! Binary Merkle tree over transaction ids.
//!
//! Block headers commit to their transaction list through the root computed
//! here. The construction is the Bitcoin-style binary tree with the last
//! node duplicated on odd levels, plus domain-separated leaf/node hashing to
//! rule out second-preimage tricks between leaves and interior nodes.

use cshard_crypto::sha256_concat;
use cshard_primitives::Hash32;

/// Root of an empty tree — a fixed domain-separated constant so that an
/// empty block still has a well-defined commitment.
pub fn empty_root() -> Hash32 {
    sha256_concat(&[b"cshard-merkle-empty".as_slice()])
}

fn leaf(id: &Hash32) -> Hash32 {
    sha256_concat(&[b"cshard-merkle-leaf".as_slice(), id.as_bytes()])
}

fn node(left: &Hash32, right: &Hash32) -> Hash32 {
    sha256_concat(&[
        b"cshard-merkle-node".as_slice(),
        left.as_bytes(),
        right.as_bytes(),
    ])
}

/// Computes the Merkle root of a list of transaction ids.
pub fn merkle_root(ids: &[Hash32]) -> Hash32 {
    if ids.is_empty() {
        return empty_root();
    }
    let mut level: Vec<Hash32> = ids.iter().map(leaf).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let right = pair.get(1).unwrap_or(&pair[0]);
            next.push(node(&pair[0], right));
        }
        level = next;
    }
    level[0]
}

/// A Merkle inclusion proof: sibling hashes from leaf to root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hash at each level, bottom-up.
    pub siblings: Vec<Hash32>,
}

/// Builds an inclusion proof for leaf `index`.
///
/// Returns `None` when `index` is out of range.
pub fn merkle_proof(ids: &[Hash32], index: usize) -> Option<MerkleProof> {
    if index >= ids.len() {
        return None;
    }
    let mut level: Vec<Hash32> = ids.iter().map(leaf).collect();
    let mut idx = index;
    let mut siblings = Vec::new();
    while level.len() > 1 {
        let sib = if idx.is_multiple_of(2) {
            // Right sibling, or self-duplicate at an odd tail.
            *level.get(idx + 1).unwrap_or(&level[idx])
        } else {
            level[idx - 1]
        };
        siblings.push(sib);
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let right = pair.get(1).unwrap_or(&pair[0]);
            next.push(node(&pair[0], right));
        }
        level = next;
        idx /= 2;
    }
    Some(MerkleProof { index, siblings })
}

/// Verifies an inclusion proof against a root.
pub fn verify_proof(id: &Hash32, proof: &MerkleProof, root: &Hash32) -> bool {
    let mut acc = leaf(id);
    let mut idx = proof.index;
    for sib in &proof.siblings {
        acc = if idx.is_multiple_of(2) {
            node(&acc, sib)
        } else {
            node(sib, &acc)
        };
        idx /= 2;
    }
    acc == *root
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_crypto::sha256;
    use proptest::prelude::*;

    fn ids(n: usize) -> Vec<Hash32> {
        (0..n as u64).map(|i| sha256(i.to_be_bytes())).collect()
    }

    #[test]
    fn empty_root_is_stable_and_distinct() {
        assert_eq!(merkle_root(&[]), empty_root());
        assert_ne!(merkle_root(&[]), merkle_root(&ids(1)));
    }

    #[test]
    fn single_leaf_root_is_not_the_leaf_id() {
        let v = ids(1);
        assert_ne!(merkle_root(&v), v[0]);
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let mut v = ids(5);
        let r0 = merkle_root(&v);
        v[3] = sha256(b"mutated");
        assert_ne!(merkle_root(&v), r0);
    }

    #[test]
    fn root_depends_on_order() {
        let v = ids(4);
        let mut w = v.clone();
        w.swap(0, 1);
        assert_ne!(merkle_root(&v), merkle_root(&w));
    }

    #[test]
    fn proofs_verify_for_all_sizes_and_positions() {
        for n in 1..=17 {
            let v = ids(n);
            let root = merkle_root(&v);
            for i in 0..n {
                let p = merkle_proof(&v, i).unwrap();
                assert!(verify_proof(&v[i], &p, &root), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let v = ids(8);
        let root = merkle_root(&v);
        let p = merkle_proof(&v, 3).unwrap();
        assert!(!verify_proof(&v[4], &p, &root));
        assert!(!verify_proof(&v[3], &p, &sha256(b"other-root")));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        assert!(merkle_proof(&ids(3), 3).is_none());
        assert!(merkle_proof(&[], 0).is_none());
    }

    proptest! {
        #[test]
        fn prop_every_proof_verifies(n in 1usize..64, seed in any::<u64>()) {
            let v: Vec<Hash32> = (0..n as u64)
                .map(|i| sha256((seed ^ i).to_be_bytes()))
                .collect();
            let root = merkle_root(&v);
            for i in 0..n {
                let p = merkle_proof(&v, i).unwrap();
                prop_assert!(verify_proof(&v[i], &p, &root));
            }
        }

        #[test]
        fn prop_tampered_leaf_fails(n in 2usize..64, at in any::<prop::sample::Index>()) {
            let v = ids(n);
            let root = merkle_root(&v);
            let i = at.index(n);
            let p = merkle_proof(&v, i).unwrap();
            let wrong = sha256(b"tampered");
            prop_assert!(!verify_proof(&wrong, &p, &root));
        }
    }
}
