//! Blocks and block headers.
//!
//! Headers carry the packer's `ShardId` (Sec. III-C): "a miner will generate
//! and broadcast a block whose body contains that transaction and whose
//! header contains the current ShardID", which receivers verify against the
//! miner-separation randomness before accepting the block.

use crate::merkle::merkle_root;
use crate::transaction::Transaction;
use cshard_crypto::Sha256;
use cshard_primitives::{BlockHeight, Hash32, MinerId, ShardId, SimTime};

/// A block header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Hash of the parent block (`Hash32::ZERO` for genesis).
    pub parent: Hash32,
    /// Height in the shard's chain (genesis = 0).
    pub height: BlockHeight,
    /// The shard this block belongs to — checked by every receiver.
    pub shard: ShardId,
    /// The miner that packed the block (coinbase for rewards).
    pub miner: MinerId,
    /// Simulated timestamp the block was found at.
    pub timestamp: SimTime,
    /// Merkle root of the body's transaction ids.
    pub tx_root: Hash32,
    /// PoW difficulty, in required leading zero bits of the block hash.
    pub difficulty_bits: u32,
    /// PoW nonce.
    pub pow_nonce: u64,
}

impl BlockHeader {
    /// The block hash: SHA-256 of the canonical header encoding.
    pub fn hash(&self) -> Hash32 {
        let mut h = Sha256::new();
        h.update(b"cshard-header-v1");
        h.update(self.parent.as_bytes());
        h.update(self.height.to_be_bytes());
        h.update(self.shard.0.to_be_bytes());
        h.update(self.miner.0.to_be_bytes());
        h.update(self.timestamp.as_millis().to_be_bytes());
        h.update(self.tx_root.as_bytes());
        h.update(self.difficulty_bits.to_be_bytes());
        h.update(self.pow_nonce.to_be_bytes());
        h.finalize()
    }

    /// True when the header's hash satisfies its own difficulty claim.
    pub fn has_valid_pow(&self) -> bool {
        self.hash().meets_difficulty(self.difficulty_bits)
    }
}

/// A block: header plus the confirmed transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The body.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Assembles a block, computing the transaction Merkle root.
    ///
    /// The PoW nonce starts at zero; the consensus crate's miner searches
    /// for a satisfying nonce. `difficulty_bits = 0` makes any nonce valid,
    /// which is what the pure-simulation paths use.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        parent: Hash32,
        height: BlockHeight,
        shard: ShardId,
        miner: MinerId,
        timestamp: SimTime,
        difficulty_bits: u32,
        transactions: Vec<Transaction>,
    ) -> Self {
        let ids: Vec<Hash32> = transactions.iter().map(|t| t.id()).collect();
        Block {
            header: BlockHeader {
                parent,
                height,
                shard,
                miner,
                timestamp,
                tx_root: merkle_root(&ids),
                difficulty_bits,
                pow_nonce: 0,
            },
            transactions,
        }
    }

    /// The block hash.
    pub fn hash(&self) -> Hash32 {
        self.header.hash()
    }

    /// True when the block carries no transactions — the "empty blocks"
    /// whose count the merging algorithm minimises (Sec. III-D).
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Recomputes the body's Merkle root and compares with the header.
    pub fn tx_root_matches(&self) -> bool {
        let ids: Vec<Hash32> = self.transactions.iter().map(|t| t.id()).collect();
        merkle_root(&ids) == self.header.tx_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_primitives::{Address, Amount, ContractId};

    fn tx(n: u64) -> Transaction {
        Transaction::call(
            Address::user(n),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(n),
        )
    }

    fn block(txs: Vec<Transaction>) -> Block {
        Block::assemble(
            Hash32::ZERO,
            1,
            ShardId::new(0),
            MinerId::new(0),
            SimTime::from_secs(60),
            0,
            txs,
        )
    }

    #[test]
    fn assemble_commits_to_transactions() {
        let b = block(vec![tx(1), tx(2)]);
        assert!(b.tx_root_matches());
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_block_has_empty_root() {
        let b = block(vec![]);
        assert!(b.is_empty());
        assert!(b.tx_root_matches());
        assert_eq!(b.header.tx_root, crate::merkle::empty_root());
    }

    #[test]
    fn tampering_with_body_breaks_root() {
        let mut b = block(vec![tx(1), tx(2)]);
        b.transactions[0] = tx(3);
        assert!(!b.tx_root_matches());
    }

    #[test]
    fn hash_depends_on_header_fields() {
        let b = block(vec![tx(1)]);
        let h0 = b.hash();

        let mut c = b.clone();
        c.header.pow_nonce = 1;
        assert_ne!(c.hash(), h0);

        let mut c = b.clone();
        c.header.shard = ShardId::new(1);
        assert_ne!(c.hash(), h0);

        let mut c = b.clone();
        c.header.height = 2;
        assert_ne!(c.hash(), h0);

        let mut c = b;
        c.header.miner = MinerId::new(9);
        assert_ne!(c.hash(), h0);
    }

    #[test]
    fn zero_difficulty_pow_is_always_valid() {
        let b = block(vec![tx(1)]);
        assert_eq!(b.header.difficulty_bits, 0);
        assert!(b.header.has_valid_pow());
    }

    #[test]
    fn nonzero_difficulty_usually_requires_search() {
        let mut b = block(vec![tx(1)]);
        b.header.difficulty_bits = 20;
        // Overwhelmingly unlikely that nonce 0 already meets 20 bits.
        assert!(!b.header.has_valid_pow());
    }
}
