//! The unvalidated-transaction pool.
//!
//! Sec. II-B: "miners in a blockchain system keep track of unvalidated
//! transactions … miners always select transactions with the highest fees".
//! [`Mempool::select_greedy`] is exactly that behaviour — the root cause of
//! serialized confirmation that the intra-shard selection game replaces.

use crate::transaction::Transaction;
use cshard_primitives::{Amount, TxId};
use std::collections::BTreeMap;

/// A pool of pending transactions with fee-ordered selection.
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    txs: BTreeMap<TxId, Transaction>,
}

impl Mempool {
    /// An empty pool.
    pub fn new() -> Self {
        Mempool::default()
    }

    /// Inserts a transaction; returns false when it was already present.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        self.txs.insert(tx.id(), tx).is_none()
    }

    /// Removes a confirmed transaction.
    pub fn remove(&mut self, id: &TxId) -> Option<Transaction> {
        self.txs.remove(id)
    }

    /// Removes a batch of confirmed transactions (e.g. after receiving a
    /// block).
    pub fn remove_all<'a>(&mut self, ids: impl IntoIterator<Item = &'a TxId>) {
        for id in ids {
            self.txs.remove(id);
        }
    }

    /// True when the pool holds no transactions — a miner in this situation
    /// packs an empty block.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether a transaction is pending.
    pub fn contains(&self, id: &TxId) -> bool {
        self.txs.contains_key(id)
    }

    /// Iterates over pending transactions in transaction-id order (the
    /// map is a `BTreeMap`, so iteration is deterministic — audit rule
    /// ND003).
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.txs.values()
    }

    /// All pending transactions sorted by descending fee, ties broken by
    /// tx id so every miner computes the identical order (which is exactly
    /// why vanilla miners collide on the same set).
    pub fn sorted_by_fee(&self) -> Vec<&Transaction> {
        let mut v: Vec<(&TxId, &Transaction)> = self.txs.iter().collect();
        // The id is the map key — no re-hashing during the sort.
        v.sort_by(|(ida, a), (idb, b)| b.fee.cmp(&a.fee).then_with(|| ida.cmp(idb)));
        v.into_iter().map(|(_, tx)| tx).collect()
    }

    /// Greedy selection: the `limit` highest-fee transactions.
    pub fn select_greedy(&self, limit: usize) -> Vec<Transaction> {
        self.sorted_by_fee()
            .into_iter()
            .take(limit)
            .cloned()
            .collect()
    }

    /// Sum of all pending fees.
    pub fn total_fees(&self) -> Amount {
        self.txs.values().map(|t| t.fee).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_primitives::{Address, Amount, ContractId};

    fn tx(user: u64, fee: u64) -> Transaction {
        Transaction::call(
            Address::user(user),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(fee),
        )
    }

    #[test]
    fn insert_and_remove() {
        let mut m = Mempool::new();
        let t = tx(1, 10);
        assert!(m.insert(t.clone()));
        assert!(!m.insert(t.clone()), "duplicate insert reports false");
        assert_eq!(m.len(), 1);
        assert!(m.contains(&t.id()));
        assert!(m.remove(&t.id()).is_some());
        assert!(m.is_empty());
    }

    #[test]
    fn greedy_selects_highest_fees() {
        let mut m = Mempool::new();
        for (u, fee) in [(1, 5), (2, 50), (3, 20), (4, 40)] {
            m.insert(tx(u, fee));
        }
        let picked = m.select_greedy(2);
        let fees: Vec<u64> = picked.iter().map(|t| t.fee.raw()).collect();
        assert_eq!(fees, vec![50, 40]);
    }

    #[test]
    fn greedy_order_is_deterministic_across_clones() {
        // Two miners with the same pool must compute the same order — the
        // serialization premise of Sec. II-B.
        let mut m = Mempool::new();
        for u in 0..20 {
            m.insert(tx(u, 7)); // all fees equal: order falls to tx id
        }
        let a = m.clone().select_greedy(10);
        let b = m.select_greedy(10);
        assert_eq!(a, b);
    }

    #[test]
    fn select_more_than_available_returns_all() {
        let mut m = Mempool::new();
        m.insert(tx(1, 1));
        assert_eq!(m.select_greedy(10).len(), 1);
        assert_eq!(m.select_greedy(0).len(), 0);
    }

    #[test]
    fn remove_all_clears_confirmed() {
        let mut m = Mempool::new();
        let txs: Vec<Transaction> = (0..5).map(|u| tx(u, u)).collect();
        for t in &txs {
            m.insert(t.clone());
        }
        let ids: Vec<_> = txs[..3].iter().map(|t| t.id()).collect();
        m.remove_all(ids.iter());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn total_fees_sums() {
        let mut m = Mempool::new();
        m.insert(tx(1, 10));
        m.insert(tx(2, 15));
        assert_eq!(m.total_fees(), Amount::from_raw(25));
    }
}
