//! Property tests for the streaming workload generator — the three
//! invariants the scale experiments lean on:
//!
//! * **Seeded determinism** — a stream is a pure function of its
//!   configuration: the same seed replays the identical `(time, tx)`
//!   sequence (audit rule ND002: no ambient entropy).
//! * **Zipf rank-frequency monotonicity** — hotter contract ranks draw at
//!   least as much traffic as colder ones (within sampling noise), for any
//!   positive exponent.
//! * **Bursts never reorder sim time** — burst episodes scale the arrival
//!   *rate*, never the clock, so timestamps stay monotone non-decreasing
//!   under arbitrary episode layouts.

use cshard_primitives::SimTime;
use cshard_workload::{BurstEpisode, StreamConfig, TxStream};
use proptest::prelude::*;

fn config_with_seed(seed: u64) -> StreamConfig {
    StreamConfig {
        seed,
        ..StreamConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn same_seed_replays_the_identical_stream(seed in any::<u64>()) {
        let a: Vec<_> = TxStream::new(config_with_seed(seed)).take(300).collect();
        let b: Vec<_> = TxStream::new(config_with_seed(seed)).take(300).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zipf_rank_frequency_is_monotone(
        seed in any::<u64>(),
        // Exponent in [0.5, 2.5), sampled in millis (the vendored
        // proptest has no float range strategy).
        s_milli in 500u64..2_500,
    ) {
        let s = s_milli as f64 / 1_000.0;
        // Pure contract traffic over 8 ranks, 20k draws: rank k must not
        // be (significantly) colder than rank k+1. The slack term absorbs
        // multinomial sampling noise (≈ 4σ of a 20k-draw bucket), so the
        // property is about the distribution, not one sample path.
        let stream = TxStream::new(StreamConfig {
            contracts: 8,
            zipf_s: s,
            direct_fraction: 0.0,
            diversify: 0.0,
            seed,
            ..StreamConfig::default()
        });
        let n = 20_000usize;
        let mut counts = vec![0i64; 8];
        for (_, tx) in stream.take(n) {
            let c = tx.kind.contract().expect("pure contract traffic");
            counts[c.0 as usize] += 1;
        }
        let slack = 4.0 * (n as f64 / 8.0).sqrt();
        for k in 0..7 {
            prop_assert!(
                counts[k] as f64 + slack >= counts[k + 1] as f64,
                "rank {k} ({}) colder than rank {} ({}), exponent {s}",
                counts[k], k + 1, counts[k + 1]
            );
        }
        // And the head is strictly hot: rank 0 beats the coldest rank.
        prop_assert!(counts[0] > counts[7], "no concentration: {counts:?}");
    }

    #[test]
    fn bursts_never_reorder_sim_time(
        seed in any::<u64>(),
        // Arbitrary (possibly overlapping) episode layout: offsets in
        // seconds, multipliers spanning lulls (0.1×) to floods (50×),
        // sampled in percent (no float range strategy in the vendored
        // proptest).
        episodes in proptest::collection::vec(
            (0u64..300, 1u64..120, 10u64..5_000),
            0..4,
        ),
    ) {
        let bursts: Vec<BurstEpisode> = episodes
            .into_iter()
            .map(|(start, len, mult_pct)| BurstEpisode {
                start: SimTime::from_secs(start),
                end: SimTime::from_secs(start + len),
                rate_multiplier: mult_pct as f64 / 100.0,
            })
            .collect();
        let stream = TxStream::new(StreamConfig {
            bursts,
            seed,
            ..StreamConfig::default()
        });
        let mut last = SimTime::ZERO;
        for (at, _) in stream.take(2_000) {
            prop_assert!(at >= last, "clock rewound: {last} -> {at}");
            last = at;
        }
    }
}
