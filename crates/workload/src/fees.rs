//! Transaction-fee distributions.

use rand::Rng;

/// How transaction fees are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FeeDistribution {
    /// Every transaction pays the same fee.
    Constant(u64),
    /// Uniform integer fee in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// `Bin(n, ½)` — the Sec. IV-D assumption ("we assume that the
    /// transaction fees obey the binomial distribution", Eq. 4).
    Binomial {
        /// Total fee units `N`.
        n: u64,
    },
    /// Geometric-ish heavy tail: `⌈Exp(1/mean)⌉`, clamped to at least 1.
    Exponential {
        /// Mean fee.
        mean: f64,
    },
    /// Zipf over `{1..=max}` with exponent `s` — a few transactions carry
    /// most of the fee mass (the degenerate case of Fig. 5(b)).
    Zipf {
        /// Support size.
        max: u64,
        /// Exponent (> 0); larger = heavier concentration.
        s: f64,
    },
}

impl FeeDistribution {
    /// Draws one fee.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            FeeDistribution::Constant(v) => v,
            FeeDistribution::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted");
                rng.gen_range(lo..=hi)
            }
            FeeDistribution::Binomial { n } => {
                // Sum of n fair coin flips; n is small (≈200) in all uses.
                (0..n).filter(|_| rng.gen::<bool>()).count() as u64
            }
            FeeDistribution::Exponential { mean } => {
                assert!(mean > 0.0);
                let u: f64 = rng.gen();
                ((-(1.0 - u).ln() * mean).ceil() as u64).max(1)
            }
            FeeDistribution::Zipf { max, s } => {
                assert!(max >= 1 && s > 0.0);
                // Inverse-CDF over the normalised Zipf pmf. max is small
                // (≤ a few thousand) everywhere we use this.
                let norm: f64 = (1..=max).map(|k| (k as f64).powf(-s)).sum();
                let mut u: f64 = rng.gen::<f64>() * norm;
                for k in 1..=max {
                    u -= (k as f64).powf(-s);
                    if u <= 0.0 {
                        return k;
                    }
                }
                max
            }
        }
    }

    /// Draws `count` fees.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        let fees = FeeDistribution::Constant(7).sample_many(&mut r, 50);
        assert!(fees.iter().all(|&f| f == 7));
    }

    #[test]
    fn uniform_stays_in_bounds_and_covers() {
        let mut r = rng();
        let fees = FeeDistribution::Uniform { lo: 3, hi: 6 }.sample_many(&mut r, 400);
        assert!(fees.iter().all(|&f| (3..=6).contains(&f)));
        for v in 3..=6 {
            assert!(fees.contains(&v), "value {v} never drawn");
        }
    }

    #[test]
    fn binomial_mean_is_half_n() {
        let mut r = rng();
        let n = 200;
        let fees = FeeDistribution::Binomial { n }.sample_many(&mut r, 3000);
        let mean = fees.iter().sum::<u64>() as f64 / fees.len() as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        assert!(fees.iter().all(|&f| f <= n));
    }

    #[test]
    fn exponential_is_positive_with_roughly_right_mean() {
        let mut r = rng();
        let fees = FeeDistribution::Exponential { mean: 50.0 }.sample_many(&mut r, 5000);
        assert!(fees.iter().all(|&f| f >= 1));
        let mean = fees.iter().sum::<u64>() as f64 / fees.len() as f64;
        assert!((mean - 50.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn zipf_concentrates_on_small_values() {
        let mut r = rng();
        let fees = FeeDistribution::Zipf { max: 100, s: 1.2 }.sample_many(&mut r, 4000);
        assert!(fees.iter().all(|&f| (1..=100).contains(&f)));
        let ones = fees.iter().filter(|&&f| f == 1).count();
        let hundreds = fees.iter().filter(|&&f| f == 100).count();
        assert!(
            ones > 20 * hundreds.max(1),
            "ones={ones} hundreds={hundreds}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = FeeDistribution::Uniform { lo: 1, hi: 100 };
        let a = d.sample_many(&mut ChaCha8Rng::seed_from_u64(5), 20);
        let b = d.sample_many(&mut ChaCha8Rng::seed_from_u64(5), 20);
        assert_eq!(a, b);
    }
}
