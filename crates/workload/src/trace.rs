//! Workload traces: serialization, replay, and a mainnet-shaped mix.
//!
//! The paper evaluates with "real-world blockchain transactions" whose
//! statistics it quotes in Sec. II-A (the most popular contract holds
//! 10 354 398 transactions; each of the top ten averages 2 998 533). Raw
//! mainnet traces are not redistributable, so this module provides
//! (a) a JSON trace format to import external transaction logs, and
//! (b) [`mainnet_shaped`], a generator calibrated to those quoted
//! statistics at a configurable scale.

use crate::fees::FeeDistribution;
use crate::generator::{Workload, WorkloadKind};
use cshard_json as json;
use cshard_ledger::{SmartContract, State, Transaction, TxKind};
use cshard_primitives::{Address, Amount, ContractId};

/// One trace record: the minimal description of an injected transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Sender index (dense user namespace).
    pub sender: u64,
    /// Contract index for a call; `None` for a direct transfer.
    pub contract: Option<u32>,
    /// Recipient user index for a direct transfer (ignored for calls).
    pub recipient: Option<u64>,
    /// Fee in base units.
    pub fee: u64,
}

/// A serializable trace: records plus the contract count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Number of contracts the records reference.
    pub contracts: u32,
    /// The records, in injection order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Extracts a trace from a generated workload (export path).
    pub fn from_workload(w: &Workload) -> Trace {
        let mut user_ids: std::collections::HashMap<Address, u64> =
            std::collections::HashMap::new();
        let mut next = 0u64;
        let mut id_of = |a: Address| -> u64 {
            *user_ids.entry(a).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        };
        let records = w
            .transactions
            .iter()
            .map(|tx| {
                let sender = id_of(tx.sender);
                match &tx.kind {
                    TxKind::ContractCall { contract, .. } => TraceRecord {
                        sender,
                        contract: Some(contract.0),
                        recipient: None,
                        fee: tx.fee.raw(),
                    },
                    TxKind::DirectTransfer { to, .. } => TraceRecord {
                        sender,
                        contract: None,
                        recipient: Some(id_of(*to)),
                        fee: tx.fee.raw(),
                    },
                    TxKind::MultiInput { to, .. } => TraceRecord {
                        sender,
                        contract: None,
                        recipient: Some(id_of(*to)),
                        fee: tx.fee.raw(),
                    },
                }
            })
            .collect();
        Trace {
            contracts: w.contracts.len() as u32,
            records,
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        json::ObjectBuilder::new()
            .field("contracts", self.contracts)
            .field(
                "records",
                json::Value::Array(
                    self.records
                        .iter()
                        .map(|r| {
                            let mut rec = json::ObjectBuilder::new().field("sender", r.sender);
                            if let Some(c) = r.contract {
                                rec = rec.field("contract", c);
                            }
                            if let Some(to) = r.recipient {
                                rec = rec.field("recipient", to);
                            }
                            rec.field("fee", r.fee).build()
                        })
                        .collect(),
                ),
            )
            .build()
            .to_string_pretty()
    }

    /// Parses a JSON trace.
    pub fn from_json(text: &str) -> Result<Trace, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let contracts = doc
            .get("contracts")
            .and_then(|v| v.as_u64())
            .and_then(|v| u32::try_from(v).ok())
            .ok_or("trace: missing contracts")?;
        let records = doc
            .get("records")
            .and_then(|v| v.as_array())
            .ok_or("trace: missing records")?
            .iter()
            .map(|entry| {
                Ok(TraceRecord {
                    sender: entry
                        .get("sender")
                        .and_then(|v| v.as_u64())
                        .ok_or("record: missing sender")?,
                    contract: match entry.get("contract") {
                        None => None,
                        Some(v) if v.is_null() => None,
                        Some(v) => Some(
                            v.as_u64()
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or("record: bad contract")?,
                        ),
                    },
                    recipient: match entry.get("recipient") {
                        None => None,
                        Some(v) if v.is_null() => None,
                        Some(v) => Some(v.as_u64().ok_or("record: bad recipient")?),
                    },
                    fee: entry
                        .get("fee")
                        .and_then(|v| v.as_u64())
                        .ok_or("record: missing fee")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Trace { contracts, records })
    }

    /// Materialises the trace into a runnable [`Workload`]: funds every
    /// sender, registers the contracts, tracks per-sender nonces.
    pub fn replay(&self) -> Workload {
        let value = Amount::from_raw(1_000);
        let funds = Amount::from_raw(2_000_000_000);
        let mut state = State::new();
        let mut contracts = Vec::new();
        for c in 0..self.contracts {
            let sink = Address::user(1_000_000 + c as u64);
            state.fund_user(sink, Amount::ZERO);
            let sc = SmartContract::unconditional(ContractId::new(c), sink);
            contracts.push(sc.clone());
            state.register_contract(sc);
        }
        let mut nonces: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut funded: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let fund = |state: &mut State, u: u64, funded: &mut std::collections::HashSet<u64>| {
            if funded.insert(u) {
                state.fund_user(Address::user(u), funds);
            }
        };
        let mut transactions = Vec::with_capacity(self.records.len());
        for r in &self.records {
            fund(&mut state, r.sender, &mut funded);
            let nonce = nonces.entry(r.sender).or_insert(0);
            let tx = match r.contract {
                Some(c) => {
                    assert!(c < self.contracts, "record references unknown contract {c}");
                    Transaction::call(
                        Address::user(r.sender),
                        *nonce,
                        ContractId::new(c),
                        value,
                        Amount::from_raw(r.fee),
                    )
                }
                None => {
                    let to = r.recipient.unwrap_or(r.sender + 1);
                    fund(&mut state, to, &mut funded);
                    Transaction::direct(
                        Address::user(r.sender),
                        *nonce,
                        Address::user(to),
                        value,
                        Amount::from_raw(r.fee),
                    )
                }
            };
            *nonce += 1;
            transactions.push(tx);
        }
        Workload {
            genesis: state,
            contracts,
            transactions,
            kind: WorkloadKind::Replayed {
                contracts: self.contracts,
            },
        }
    }
}

/// A mainnet-shaped workload, calibrated to the paper's Sec. II-A
/// statistics: the most popular contract carries ~3.45× the transactions
/// of the top-ten average (10 354 398 vs. 2 998 533 on mainnet), the rest
/// of the head follows a Zipf decay, and `direct_fraction` of traffic is
/// user-to-user.
pub fn mainnet_shaped(
    total: usize,
    contracts: usize,
    direct_fraction: f64,
    fees: FeeDistribution,
    seed: u64,
) -> Workload {
    assert!((0.0..1.0).contains(&direct_fraction));
    assert!(contracts >= 1);
    let direct = (total as f64 * direct_fraction).round() as usize;
    let calls = total - direct;
    // Zipf exponent fitted so rank 1 / mean(rank 1..10) ≈ 3.45, matching
    // the quoted mainnet ratio: s ≈ 1.08.
    let w = Workload::heavy_tail(calls, contracts, 1.08, fees, seed);
    // heavy_tail fills rounding dust with direct transfers already; append
    // the requested direct traffic on top via a trace round-trip.
    let mut trace = Trace::from_workload(&w);
    let mut user = 10_000_000u64;
    for i in 0..direct {
        trace.records.push(TraceRecord {
            sender: user,
            contract: None,
            recipient: Some(user + 1),
            fee: 1 + (seed.wrapping_add(i as u64) % 100),
        });
        user += 2;
    }
    trace.replay()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_primitives::Address;

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

    #[test]
    fn json_round_trip() {
        let w = Workload::uniform_contracts(50, 3, FEES, 1);
        let t = Trace::from_workload(&w);
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_produces_valid_transactions() {
        let w = Workload::uniform_contracts(60, 4, FEES, 2);
        let replayed = Trace::from_workload(&w).replay();
        assert_eq!(replayed.transactions.len(), 60);
        let mut state = replayed.genesis.clone();
        for tx in &replayed.transactions {
            state
                .apply_transaction(tx, Address::SYSTEM)
                .expect("replayed transactions validate");
        }
    }

    #[test]
    fn replay_preserves_fees_and_shape() {
        let w = Workload::uniform_contracts(40, 2, FEES, 3);
        let replayed = Trace::from_workload(&w).replay();
        assert_eq!(w.fees(), replayed.fees());
        assert_eq!(
            w.maxshard_tx_count(),
            replayed.maxshard_tx_count(),
            "classification-relevant shape preserved"
        );
    }

    #[test]
    fn repeat_senders_get_sequential_nonces() {
        let trace = Trace {
            contracts: 1,
            records: vec![
                TraceRecord {
                    sender: 5,
                    contract: Some(0),
                    recipient: None,
                    fee: 9,
                },
                TraceRecord {
                    sender: 5,
                    contract: Some(0),
                    recipient: None,
                    fee: 7,
                },
                TraceRecord {
                    sender: 5,
                    contract: Some(0),
                    recipient: None,
                    fee: 5,
                },
            ],
        };
        let w = trace.replay();
        let nonces: Vec<u64> = w.transactions.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2]);
        let mut state = w.genesis.clone();
        for tx in &w.transactions {
            state.apply_transaction(tx, Address::SYSTEM).unwrap();
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Trace::from_json("{not json").is_err());
        assert!(Trace::from_json("{\"contracts\": 1}").is_err());
    }

    #[test]
    #[should_panic(expected = "unknown contract")]
    fn out_of_range_contract_rejected_on_replay() {
        Trace {
            contracts: 1,
            records: vec![TraceRecord {
                sender: 0,
                contract: Some(5),
                recipient: None,
                fee: 1,
            }],
        }
        .replay();
    }

    #[test]
    fn mainnet_shape_matches_quoted_statistics() {
        let w = mainnet_shaped(20_000, 50, 0.1, FEES, 4);
        assert_eq!(w.transactions.len(), 20_000 + 2_000 - 2_000); // calls+direct = total
        let counts = w.tx_count_by_contract();
        let top = counts[0] as f64;
        let top10_avg: f64 = counts[..10].iter().sum::<u64>() as f64 / 10.0;
        let ratio = top / top10_avg;
        // Mainnet: 10,354,398 / 2,998,533 ≈ 3.45.
        assert!(
            (2.6..4.4).contains(&ratio),
            "top/top10 ratio {ratio:.2} far from mainnet's 3.45"
        );
        // Direct traffic present.
        assert!(w.maxshard_tx_count() >= 2_000);
    }

    #[test]
    fn mainnet_workload_is_valid() {
        let w = mainnet_shaped(2_000, 20, 0.2, FEES, 5);
        let mut state = w.genesis.clone();
        for tx in &w.transactions {
            state.apply_transaction(tx, Address::SYSTEM).unwrap();
        }
    }
}
