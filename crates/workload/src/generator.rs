//! The injection patterns of Sec. VI, as deterministic generators.

use crate::fees::FeeDistribution;
use cshard_ledger::{SmartContract, State, Transaction};
use cshard_primitives::{Address, Amount, ContractId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which experiment shape a workload was generated for (kept for
/// reporting/labels).
///
/// Not `Eq`: [`WorkloadKind::HeavyTail`] carries its Zipf exponent, and
/// floats have no total equality.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadKind {
    /// Uniform spread over contracts + MaxShard (Sec. VI-B1).
    UniformContracts {
        /// Number of contract shards.
        contracts: usize,
    },
    /// Small-shard mix (Sec. VI-C).
    SmallShards {
        /// Number of small shards.
        small: usize,
        /// Number of regular shards.
        regular: usize,
    },
    /// k-input transfers (Sec. VI-B2).
    MultiInput {
        /// Inputs per transaction.
        inputs: usize,
    },
    /// Zipf contract popularity.
    HeavyTail {
        /// Number of contract shards.
        contracts: usize,
        /// Zipf exponent: contract `k`'s share ∝ `k^-s`.
        zipf_s: f64,
    },
    /// Collected view of a [`crate::stream::TxStream`] prefix.
    Streamed {
        /// Configured sender account space.
        accounts: u64,
        /// Number of registered contracts.
        contracts: u32,
    },
    /// Materialised from an imported [`crate::trace::Trace`].
    Replayed {
        /// Number of contracts the trace references.
        contracts: u32,
    },
}

/// A generated workload: the genesis state, the registered contracts and
/// the transaction injection.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Genesis world state (users funded, contracts registered).
    pub genesis: State,
    /// The registered contracts (also present in `genesis`).
    pub contracts: Vec<SmartContract>,
    /// The injected transactions, in injection order.
    pub transactions: Vec<Transaction>,
    /// The shape this workload reproduces.
    pub kind: WorkloadKind,
}

/// Value carried by every generated transfer — small and constant; the
/// evaluation's metrics never depend on transfer size.
const TX_VALUE: Amount = Amount(1_000);
/// Genesis balance per user: comfortably covers value + any sampled fee.
const USER_FUNDS: Amount = Amount(2_000_000_000);

struct Builder {
    state: State,
    contracts: Vec<SmartContract>,
    txs: Vec<Transaction>,
    next_user: u64,
    rng: ChaCha8Rng,
    fees: FeeDistribution,
}

impl Builder {
    fn new(seed: u64, fees: FeeDistribution) -> Self {
        Builder {
            state: State::new(),
            contracts: Vec::new(),
            txs: Vec::new(),
            next_user: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
            fees,
        }
    }

    fn add_contracts(&mut self, n: usize) {
        for i in 0..n {
            let id = ContractId::new(i as u32);
            // Each contract unconditionally pays a dedicated sink user
            // (Sec. VI-A: "transfers money to a specified destination").
            let sink = Address::user(1_000_000 + i as u64);
            self.state.fund_user(sink, Amount::ZERO);
            let c = SmartContract::unconditional(id, sink);
            self.contracts.push(c.clone());
            self.state.register_contract(c);
        }
    }

    fn fresh_user(&mut self) -> Address {
        let addr = Address::user(self.next_user);
        self.next_user += 1;
        self.state.fund_user(addr, USER_FUNDS);
        addr
    }

    fn fee(&mut self) -> Amount {
        Amount::from_raw(self.fees.sample(&mut self.rng))
    }

    /// A single-contract sender's call: one fresh user, one invocation —
    /// the Fig. 1(a) shape that makes the transaction isolable.
    fn contract_call(&mut self, contract: ContractId) {
        let sender = self.fresh_user();
        let fee = self.fee();
        self.txs
            .push(Transaction::call(sender, 0, contract, TX_VALUE, fee));
    }

    /// A MaxShard-bound transaction: a fresh user paying another user
    /// directly (Fig. 1(c)'s direct-transfer shape).
    fn direct_transfer(&mut self) {
        let sender = self.fresh_user();
        let recipient = self.fresh_user();
        let fee = self.fee();
        self.txs
            .push(Transaction::direct(sender, 0, recipient, TX_VALUE, fee));
    }

    /// A k-input transfer (Sec. VI-B2): all inputs are fresh funded users.
    fn multi_input(&mut self, k: usize) {
        assert!(k >= 1);
        let inputs: Vec<Address> = (0..k).map(|_| self.fresh_user()).collect();
        let sender = inputs[0];
        let recipient = self.fresh_user();
        let fee = self.fee();
        self.txs.push(Transaction::multi_input(
            sender, 0, inputs, recipient, TX_VALUE, fee,
        ));
    }

    fn finish(self, kind: WorkloadKind) -> Workload {
        Workload {
            genesis: self.state,
            contracts: self.contracts,
            transactions: self.txs,
            kind,
        }
    }
}

impl Workload {
    /// Sec. VI-B1: `total` transactions over `contracts` contract shards
    /// plus the MaxShard, each group of size `total / (contracts + 1)` (the
    /// remainder goes to the MaxShard, keeping the total exact).
    ///
    /// With `contracts == 0` every transaction is a direct transfer — the
    /// non-sharded degenerate case.
    pub fn uniform_contracts(
        total: usize,
        contracts: usize,
        fees: FeeDistribution,
        seed: u64,
    ) -> Workload {
        let mut b = Builder::new(seed, fees);
        b.add_contracts(contracts);
        let groups = contracts + 1;
        let per_group = total / groups;
        for c in 0..contracts {
            for _ in 0..per_group {
                b.contract_call(ContractId::new(c as u32));
            }
        }
        let maxshard = total - per_group * contracts;
        for _ in 0..maxshard {
            b.direct_transfer();
        }
        b.finish(WorkloadKind::UniformContracts { contracts })
    }

    /// Sec. VI-C: nine shards of which `small` are small. Small shards get
    /// `small_sizes` transactions each (the paper injects 1–9); regular
    /// shards split the remainder of `total` evenly (the paper keeps the
    /// total at 200, giving regular shards "more than 22").
    pub fn with_small_shards(
        total: usize,
        shards: usize,
        small: usize,
        small_sizes: &[u64],
        fees: FeeDistribution,
        seed: u64,
    ) -> Workload {
        assert!(small <= shards, "more small shards than shards");
        assert_eq!(small_sizes.len(), small, "one size per small shard");
        let small_total: u64 = small_sizes.iter().sum();
        assert!(
            (small_total as usize) <= total,
            "small shards exceed the total"
        );
        let regular = shards - small;
        let mut b = Builder::new(seed, fees);
        b.add_contracts(shards);
        // Small shards first (contract ids 0..small).
        for (i, &size) in small_sizes.iter().enumerate() {
            for _ in 0..size {
                b.contract_call(ContractId::new(i as u32));
            }
        }
        // Regular shards split the remainder.
        let remainder = total - small_total as usize;
        #[allow(clippy::manual_checked_ops)] // the guard also skips the loop body
        if regular > 0 {
            let per_regular = remainder / regular;
            let mut extra = remainder - per_regular * regular;
            for r in 0..regular {
                let mut count = per_regular;
                if extra > 0 {
                    count += 1;
                    extra -= 1;
                }
                for _ in 0..count {
                    b.contract_call(ContractId::new((small + r) as u32));
                }
            }
        }
        b.finish(WorkloadKind::SmallShards { small, regular })
    }

    /// Sec. VI-B2 / Fig. 4(b): `total` transactions with `inputs` funding
    /// accounts each. In random sharding these are cross-shard; in
    /// contract-centric sharding they all land in the MaxShard.
    pub fn three_input(total: usize, inputs: usize, fees: FeeDistribution, seed: u64) -> Workload {
        let mut b = Builder::new(seed, fees);
        for _ in 0..total {
            b.multi_input(inputs);
        }
        b.finish(WorkloadKind::MultiInput { inputs })
    }

    /// A Zipf contract-popularity mix: contract `k`'s share ∝ `k^-s`,
    /// echoing the paper's mainnet statistics (Sec. II-A: the most popular
    /// contract holds 10.35 M transactions while the top-10 average 3 M).
    pub fn heavy_tail(
        total: usize,
        contracts: usize,
        zipf_s: f64,
        fees: FeeDistribution,
        seed: u64,
    ) -> Workload {
        assert!(contracts >= 1);
        let mut b = Builder::new(seed, fees);
        b.add_contracts(contracts);
        let norm: f64 = (1..=contracts).map(|k| (k as f64).powf(-zipf_s)).sum();
        let mut assigned = 0usize;
        for c in 0..contracts {
            let share = ((c as f64 + 1.0).powf(-zipf_s) / norm * total as f64).round() as usize;
            let share = share.min(total - assigned);
            for _ in 0..share {
                b.contract_call(ContractId::new(c as u32));
            }
            assigned += share;
        }
        // Rounding dust becomes MaxShard traffic.
        for _ in assigned..total {
            b.direct_transfer();
        }
        b.finish(WorkloadKind::HeavyTail { contracts, zipf_s })
    }

    /// Transactions per contract, indexed by contract id (isolable calls
    /// only — direct/multi-input transactions are not counted here).
    pub fn tx_count_by_contract(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.contracts.len()];
        for tx in &self.transactions {
            if let Some(c) = tx.kind.contract() {
                counts[c.0 as usize] += 1;
            }
        }
        counts
    }

    /// Number of transactions that are not single-contract calls.
    pub fn maxshard_tx_count(&self) -> usize {
        self.transactions
            .iter()
            .filter(|t| t.kind.contract().is_none())
            .count()
    }

    /// All fees in injection order (inputs to the selection game).
    pub fn fees(&self) -> Vec<u64> {
        self.transactions.iter().map(|t| t.fee.raw()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_ledger::CallGraph;

    const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

    #[test]
    fn uniform_contracts_splits_evenly() {
        // The paper's 9-shard setting: 200 txs over 8 contracts + MaxShard
        // = 22 per contract shard.
        let w = Workload::uniform_contracts(200, 8, FEES, 1);
        assert_eq!(w.transactions.len(), 200);
        let counts = w.tx_count_by_contract();
        assert_eq!(counts, vec![22; 8]);
        assert_eq!(w.maxshard_tx_count(), 200 - 8 * 22);
    }

    #[test]
    fn uniform_contracts_zero_contracts_is_all_maxshard() {
        let w = Workload::uniform_contracts(50, 0, FEES, 1);
        assert_eq!(w.transactions.len(), 50);
        assert_eq!(w.maxshard_tx_count(), 50);
        assert!(w.contracts.is_empty());
    }

    #[test]
    fn every_generated_tx_is_valid_against_genesis() {
        let w = Workload::uniform_contracts(100, 4, FEES, 7);
        let mut state = w.genesis.clone();
        for tx in &w.transactions {
            state
                .apply_transaction(tx, Address::SYSTEM)
                .expect("generated transactions must validate");
        }
    }

    #[test]
    fn generated_workloads_are_deterministic() {
        let a = Workload::uniform_contracts(60, 3, FEES, 9);
        let b = Workload::uniform_contracts(60, 3, FEES, 9);
        assert_eq!(a.transactions, b.transactions);
        let c = Workload::uniform_contracts(60, 3, FEES, 10);
        assert_ne!(a.fees(), c.fees(), "different seed, different fees");
    }

    #[test]
    fn small_shard_mix_matches_paper_shape() {
        // 9 shards, 3 small with 4 txs each, total 200.
        let w = Workload::with_small_shards(200, 9, 3, &[4, 4, 4], FEES, 2);
        assert_eq!(w.transactions.len(), 200);
        let counts = w.tx_count_by_contract();
        assert_eq!(&counts[..3], &[4, 4, 4]);
        // Regular shards share 188 over 6: sizes 31/32.
        let regular: Vec<u64> = counts[3..].to_vec();
        assert_eq!(regular.iter().sum::<u64>(), 188);
        assert!(regular.iter().all(|&c| c == 31 || c == 32));
    }

    #[test]
    fn small_shard_mix_validates_inputs() {
        let r =
            std::panic::catch_unwind(|| Workload::with_small_shards(10, 2, 3, &[1, 1, 1], FEES, 0));
        assert!(r.is_err(), "small > shards must panic");
        let r = std::panic::catch_unwind(|| Workload::with_small_shards(5, 9, 2, &[9, 9], FEES, 0));
        assert!(r.is_err(), "small total > total must panic");
    }

    #[test]
    fn three_input_transactions_have_k_inputs_and_validate() {
        let w = Workload::three_input(40, 3, FEES, 3);
        assert_eq!(w.transactions.len(), 40);
        assert!(w.transactions.iter().all(|t| t.kind.input_count() == 3));
        assert_eq!(w.maxshard_tx_count(), 40);
        let mut state = w.genesis.clone();
        for tx in &w.transactions {
            state.apply_transaction(tx, Address::SYSTEM).unwrap();
        }
    }

    #[test]
    fn call_graph_classifies_generated_workloads_as_designed() {
        // Contract calls isolable; direct transfers MaxShard-bound.
        let w = Workload::uniform_contracts(90, 2, FEES, 4);
        let mut g = CallGraph::new();
        g.observe_all(w.transactions.iter());
        let isolable = w
            .transactions
            .iter()
            .filter(|t| g.isolable_contract(t).is_some())
            .count();
        assert_eq!(isolable, 60); // 30 per contract shard
    }

    #[test]
    fn heavy_tail_is_skewed_and_exact() {
        let w = Workload::heavy_tail(1000, 10, 1.1, FEES, 5);
        assert_eq!(w.transactions.len(), 1000);
        assert_eq!(
            w.kind,
            WorkloadKind::HeavyTail {
                contracts: 10,
                zipf_s: 1.1
            },
            "the kind labels the grid precisely"
        );
        let counts = w.tx_count_by_contract();
        assert!(counts[0] > counts[9] * 3, "counts {counts:?}");
    }

    #[test]
    fn fees_follow_requested_distribution() {
        let w = Workload::uniform_contracts(500, 4, FeeDistribution::Constant(13), 6);
        assert!(w.fees().iter().all(|&f| f == 13));
    }
}
