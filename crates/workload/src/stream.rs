//! Streaming transaction generation: million-user workloads as a lazy,
//! sim-time-stamped iterator.
//!
//! The eager [`crate::Workload`] constructors materialize every
//! transaction (and a genesis funding every sender) up front — fine at the
//! paper's 160-user scale, fatal at the ROADMAP's million-user north star.
//! [`TxStream`] inverts that: it is an allocation-light iterator over
//! `(SimTime, Transaction)` pairs whose memory footprint scales with the
//! transactions *emitted* (a lazy per-sender nonce map), never with the
//! configured account space. A `10⁶`-account stream costs the same to
//! construct as a 10-account one.
//!
//! The arrival process is fully seeded (audit rule ND002: no ambient
//! entropy) and clock-free (ND001: sim time is *generated*, never read):
//!
//! * **Poisson arrivals** — inter-arrival gaps are exponential with a
//!   configurable mean, so transaction injection is a Poisson process like
//!   the PoW block-discovery model it feeds.
//! * **Zipf-hot contracts** — contract `k` is drawn with probability
//!   ∝ `k^-s`, echoing the paper's Sec. II-A mainnet statistics. Each
//!   contract owns a disjoint slice of the account space (its community);
//!   hot contracts therefore have hot, *repeating* senders, which is what
//!   makes incremental classification pay off downstream.
//! * **Burst episodes** — inside a [`BurstEpisode`] window the arrival
//!   rate is multiplied; timestamps stay monotone non-decreasing because
//!   only the gap distribution changes, never the clock.
//! * **Spam floods** — inside a [`SpamFlood`] window, a configurable
//!   fraction of arrivals is adversarial: minimum-fee direct transfers
//!   from fresh throwaway accounts that never repeat (the classifier sees
//!   an unbounded stream of new MaxShard senders).
//!
//! A bounded prefix of a stream can be collected into an ordinary
//! [`Workload`] ([`TxStream::take_workload`]) — a thin collected view
//! funding exactly the addresses the prefix touched. The eager
//! constructors are unchanged (their RNG draw order is pinned by the
//! golden fingerprints); the stream is the scalable path beside them.

use crate::fees::FeeDistribution;
use crate::generator::{Workload, WorkloadKind};
use cshard_ledger::{SmartContract, State, Transaction, TxKind};
use cshard_primitives::{Address, Amount, ContractId, SimTime};
use cshard_sim::SimRng;
use std::collections::BTreeMap;

/// Value carried by every streamed transfer (mirrors the eager
/// generators: metrics never depend on transfer size).
const TX_VALUE: Amount = Amount(1_000);
/// Genesis balance per collected user: covers value + any sampled fee.
const USER_FUNDS: Amount = Amount(2_000_000_000);
/// User-index base for contract sink accounts in collected views. Far
/// above any configurable account space (`accounts` is capped below it).
const SINK_BASE: u64 = 1 << 40;
/// User-index base for adversarial throwaway accounts.
const SPAM_BASE: u64 = 1 << 41;

/// A window during which the arrival rate is multiplied (a traffic burst).
///
/// Bursts change the *gap distribution only*: the stream's clock still
/// advances by non-negative exponential delays, so timestamps never
/// reorder — a property test pins this.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstEpisode {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Arrival-rate multiplier inside the window (≥ 1 is a burst; values
    /// in (0, 1) model lulls).
    pub rate_multiplier: f64,
}

/// An adversarial spam-flood window: a fraction of arrivals becomes
/// minimum-fee direct transfers from fresh, never-repeating accounts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpamFlood {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Probability an arrival inside the window is spam (clamped to
    /// `[0, 1]`).
    pub fraction: f64,
}

/// Configuration of a [`TxStream`].
#[derive(Clone, Debug, PartialEq)]
pub struct StreamConfig {
    /// Size of the sender account space. Only accounts that actually send
    /// are ever materialized, so `10⁶+` is cheap.
    pub accounts: u64,
    /// Number of registered contracts. Each owns `accounts / contracts`
    /// users as its community.
    pub contracts: u32,
    /// Zipf exponent for contract popularity (> 0; larger = hotter head).
    pub zipf_s: f64,
    /// Mean inter-arrival gap of the Poisson process.
    pub mean_interarrival: SimTime,
    /// Probability an arrival is a direct user-to-user transfer
    /// (MaxShard-bound traffic).
    pub direct_fraction: f64,
    /// Probability a contract call diversifies to a *second* contract —
    /// the churn knob: a diversified sender becomes multi-contract and
    /// must be reclassified.
    pub diversify: f64,
    /// Fee model for non-spam traffic (spam always pays the minimum fee).
    pub fees: FeeDistribution,
    /// Burst episodes, evaluated against the stream clock.
    pub bursts: Vec<BurstEpisode>,
    /// Optional adversarial spam-flood window.
    pub spam: Option<SpamFlood>,
    /// Master seed; the entire stream is a pure function of it.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            accounts: 1_000,
            contracts: 8,
            zipf_s: 1.1,
            mean_interarrival: SimTime::from_millis(500),
            direct_fraction: 0.1,
            diversify: 0.02,
            fees: FeeDistribution::Uniform { lo: 1, hi: 100 },
            bursts: Vec::new(),
            spam: None,
            seed: 0,
        }
    }
}

/// A deterministic, allocation-light stream of timestamped transactions.
///
/// Implements `Iterator<Item = (SimTime, Transaction)>`; the stream is
/// infinite — bound it with [`Iterator::take`], [`Iterator::take_while`]
/// on the timestamp, or [`TxStream::take_workload`].
#[derive(Debug)]
pub struct TxStream {
    config: StreamConfig,
    clock: SimTime,
    /// Inter-arrival gaps only — independent of the shape draws, so the
    /// arrival *process* is unchanged by mix parameters.
    arrivals: SimRng,
    /// Contract / sender / spam / diversify picks.
    shape: SimRng,
    /// Fee draws.
    fee_rng: SimRng,
    /// Cumulative (unnormalized) Zipf weights per contract rank.
    contract_cdf: Vec<f64>,
    /// Lazy per-sender nonces: grows with *emitted* senders only.
    nonces: BTreeMap<Address, u64>,
    /// Next throwaway spam account index.
    spam_next: u64,
    emitted: u64,
}

impl TxStream {
    /// Builds a stream from its configuration.
    ///
    /// # Panics
    /// Panics on a malformed configuration (zero accounts/contracts,
    /// non-positive Zipf exponent or mean gap, account space colliding
    /// with the reserved sink/spam index ranges) — mirroring the eager
    /// generators' input validation.
    pub fn new(config: StreamConfig) -> TxStream {
        assert!(config.accounts >= 1, "need at least one account");
        assert!(config.contracts >= 1, "need at least one contract");
        assert!(config.accounts < SINK_BASE, "account space too large");
        assert!(
            config.zipf_s > 0.0 && config.zipf_s.is_finite(),
            "zipf exponent must be positive"
        );
        assert!(
            config.mean_interarrival > SimTime::ZERO,
            "mean inter-arrival gap must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.direct_fraction),
            "direct_fraction is a probability"
        );
        assert!(
            (0.0..=1.0).contains(&config.diversify),
            "diversify is a probability"
        );
        for b in &config.bursts {
            assert!(b.start < b.end, "burst window is empty");
            assert!(
                b.rate_multiplier > 0.0 && b.rate_multiplier.is_finite(),
                "burst multiplier must be positive"
            );
        }
        let mut cum = 0.0;
        let contract_cdf = (1..=config.contracts as u64)
            .map(|k| {
                cum += (k as f64).powf(-config.zipf_s);
                cum
            })
            .collect();
        let mut root = SimRng::new(config.seed);
        let arrivals = root.fork(0);
        let shape = root.fork(1);
        let fee_rng = root.fork(2);
        TxStream {
            config,
            clock: SimTime::ZERO,
            arrivals,
            shape,
            fee_rng,
            contract_cdf,
            nonces: BTreeMap::new(),
            spam_next: 0,
            emitted: 0,
        }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Transactions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The arrival-rate multiplier in effect at `at` (product of all
    /// covering burst episodes; 1.0 outside every window).
    fn rate_multiplier(&self, at: SimTime) -> f64 {
        self.config
            .bursts
            .iter()
            .filter(|b| b.start <= at && at < b.end)
            .map(|b| b.rate_multiplier)
            .product()
    }

    /// Draws a contract rank from the Zipf CDF (0 = hottest).
    fn draw_contract(&mut self) -> u32 {
        let total = match self.contract_cdf.last() {
            Some(&t) => t,
            None => return 0,
        };
        let u = self.shape.unit() * total;
        u32::try_from(self.contract_cdf.partition_point(|&c| c < u)).unwrap_or(u32::MAX)
    }

    /// Users per contract community (at least 1).
    fn pool(&self) -> u64 {
        (self.config.accounts / self.config.contracts as u64).max(1)
    }

    /// Draws a sender from contract `c`'s community. Communities are
    /// disjoint account slices (`c * pool .. (c + 1) * pool`); when the
    /// account space is smaller than the contract count the slices wrap
    /// and overlapping members become multi-contract — a degenerate but
    /// well-defined edge.
    fn draw_member(&mut self, c: u32) -> Address {
        let pool = self.pool();
        let base = (c as u64 * pool) % self.config.accounts;
        Address::user(base + self.shape.below(pool))
    }

    fn next_nonce(&mut self, sender: Address) -> u64 {
        let n = self.nonces.entry(sender).or_insert(0);
        let v = *n;
        *n += 1;
        v
    }

    fn fee(&mut self) -> Amount {
        Amount::from_raw(self.config.fees.sample(self.fee_rng.raw()))
    }

    /// Collects the next `n` transactions into an ordinary [`Workload`]:
    /// genesis funds exactly the addresses the prefix touched, the
    /// configured contracts are registered, and transactions appear in
    /// arrival order. The timestamps are dropped — use the iterator
    /// directly to keep them.
    pub fn take_workload(mut self, n: usize) -> Workload {
        let mut state = State::new();
        let mut contracts = Vec::with_capacity(self.config.contracts as usize);
        for c in 0..self.config.contracts {
            let sink = Address::user(SINK_BASE + c as u64);
            state.fund_user(sink, Amount::ZERO);
            let sc = SmartContract::unconditional(ContractId::new(c), sink);
            contracts.push(sc.clone());
            state.register_contract(sc);
        }
        let mut funded: std::collections::BTreeSet<Address> = std::collections::BTreeSet::new();
        let mut transactions = Vec::with_capacity(n);
        for (_, tx) in self.by_ref().take(n) {
            if funded.insert(tx.sender) {
                state.fund_user(tx.sender, USER_FUNDS);
            }
            if let TxKind::DirectTransfer { to, .. } = &tx.kind {
                if funded.insert(*to) {
                    state.fund_user(*to, USER_FUNDS);
                }
            }
            transactions.push(tx);
        }
        Workload {
            genesis: state,
            contracts,
            transactions,
            kind: WorkloadKind::Streamed {
                accounts: self.config.accounts,
                contracts: self.config.contracts,
            },
        }
    }
}

impl Iterator for TxStream {
    type Item = (SimTime, Transaction);

    fn next(&mut self) -> Option<(SimTime, Transaction)> {
        // Advance the Poisson clock: the burst multiplier scales the rate
        // at the *current* time, the gap is exponential, and the clock
        // only ever moves forward (gaps are non-negative by construction).
        let mean_s = self.config.mean_interarrival.as_secs_f64();
        let rate = self.rate_multiplier(self.clock) / mean_s;
        let gap = SimTime::from_secs_f64(self.arrivals.exponential(rate));
        self.clock = self.clock.saturating_add(gap);
        let now = self.clock;

        // Spam flood: fresh throwaway sender, minimum fee, never repeats.
        if let Some(spam) = self.config.spam {
            if spam.start <= now && now < spam.end && self.shape.coin(spam.fraction) {
                let sender = Address::user(SPAM_BASE + 2 * self.spam_next);
                let sink = Address::user(SPAM_BASE + 2 * self.spam_next + 1);
                self.spam_next += 1;
                self.emitted += 1;
                return Some((
                    now,
                    Transaction::direct(sender, 0, sink, TX_VALUE, Amount::from_raw(1)),
                ));
            }
        }

        // Organic traffic: a community member transfers directly, or calls
        // its home contract (occasionally diversifying to a second one).
        let tx = if self.shape.coin(self.config.direct_fraction) {
            let c = self.draw_contract();
            let sender = self.draw_member(c);
            let to = self.draw_member(c);
            let (nonce, fee) = (self.next_nonce(sender), self.fee());
            Transaction::direct(sender, nonce, to, TX_VALUE, fee)
        } else {
            let c = self.draw_contract();
            let sender = self.draw_member(c);
            let called = if self.shape.coin(self.config.diversify) {
                ContractId::new((c + 1) % self.config.contracts)
            } else {
                ContractId::new(c)
            };
            let (nonce, fee) = (self.next_nonce(sender), self.fee());
            Transaction::call(sender, nonce, called, TX_VALUE, fee)
        };
        self.emitted += 1;
        Some((now, tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_n(config: StreamConfig, n: usize) -> Vec<(SimTime, Transaction)> {
        TxStream::new(config).take(n).collect()
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = collect_n(StreamConfig::default(), 500);
        let b = collect_n(StreamConfig::default(), 500);
        assert_eq!(a, b);
        let c = collect_n(
            StreamConfig {
                seed: 1,
                ..StreamConfig::default()
            },
            500,
        );
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn timestamps_are_monotone_non_decreasing() {
        let txs = collect_n(
            StreamConfig {
                bursts: vec![BurstEpisode {
                    start: SimTime::from_secs(10),
                    end: SimTime::from_secs(20),
                    rate_multiplier: 50.0,
                }],
                ..StreamConfig::default()
            },
            2_000,
        );
        for w in txs.windows(2) {
            assert!(w[0].0 <= w[1].0, "reordered: {:?} -> {:?}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn bursts_compress_inter_arrival_gaps() {
        let window = (SimTime::from_secs(60), SimTime::from_secs(120));
        let txs = collect_n(
            StreamConfig {
                mean_interarrival: SimTime::from_millis(200),
                bursts: vec![BurstEpisode {
                    start: window.0,
                    end: window.1,
                    rate_multiplier: 10.0,
                }],
                ..StreamConfig::default()
            },
            5_000,
        );
        let inside = txs
            .iter()
            .filter(|(t, _)| window.0 <= *t && *t < window.1)
            .count();
        let outside_same_span = txs
            .iter()
            .filter(|(t, _)| *t < window.0 && *t >= SimTime::ZERO)
            .count()
            .max(1);
        // 60 s of burst at 10× vs the first 60 s at 1×.
        assert!(
            inside > 3 * outside_same_span,
            "burst invisible: {inside} inside vs {outside_same_span} before"
        );
    }

    #[test]
    fn million_account_stream_is_cheap_and_lazy() {
        let mut s = TxStream::new(StreamConfig {
            accounts: 1_000_000,
            contracts: 64,
            ..StreamConfig::default()
        });
        let txs: Vec<_> = s.by_ref().take(1_000).collect();
        assert_eq!(txs.len(), 1_000);
        // Memory scales with emitted senders, not the account space.
        assert!(s.nonces.len() <= 1_000);
        assert_eq!(s.emitted(), 1_000);
    }

    #[test]
    fn hot_contracts_dominate() {
        let stream = TxStream::new(StreamConfig {
            contracts: 16,
            zipf_s: 1.2,
            direct_fraction: 0.0,
            diversify: 0.0,
            ..StreamConfig::default()
        });
        let mut counts = vec![0u64; 16];
        for (_, tx) in stream.take(8_000) {
            if let Some(c) = tx.kind.contract() {
                counts[c.0 as usize] += 1;
            }
        }
        assert!(
            counts[0] > counts[15] * 4,
            "no zipf concentration: {counts:?}"
        );
    }

    #[test]
    fn spam_flood_uses_fresh_min_fee_accounts() {
        let window = SpamFlood {
            start: SimTime::ZERO,
            end: SimTime::MAX,
            fraction: 1.0,
        };
        let txs = collect_n(
            StreamConfig {
                spam: Some(window),
                ..StreamConfig::default()
            },
            200,
        );
        let mut seen = std::collections::BTreeSet::new();
        for (_, tx) in &txs {
            assert!(matches!(tx.kind, TxKind::DirectTransfer { .. }));
            assert_eq!(tx.fee, Amount::from_raw(1), "spam pays the minimum fee");
            assert!(seen.insert(tx.sender), "spam sender repeated");
        }
    }

    #[test]
    fn repeat_senders_get_sequential_nonces() {
        // A tiny account space forces repeats quickly.
        let txs = collect_n(
            StreamConfig {
                accounts: 4,
                contracts: 2,
                direct_fraction: 0.0,
                diversify: 0.0,
                ..StreamConfig::default()
            },
            100,
        );
        let mut last: BTreeMap<Address, u64> = BTreeMap::new();
        for (_, tx) in &txs {
            let expect = last.get(&tx.sender).map_or(0, |n| n + 1);
            assert_eq!(tx.nonce, expect, "nonce gap for {:?}", tx.sender);
            last.insert(tx.sender, tx.nonce);
        }
    }

    #[test]
    fn collected_view_validates_against_its_genesis() {
        let w = TxStream::new(StreamConfig::default()).take_workload(300);
        assert_eq!(w.transactions.len(), 300);
        assert!(matches!(
            w.kind,
            WorkloadKind::Streamed {
                accounts: 1_000,
                contracts: 8
            }
        ));
        let mut state = w.genesis.clone();
        for tx in &w.transactions {
            state
                .apply_transaction(tx, Address::SYSTEM)
                .expect("collected stream transactions must validate");
        }
    }

    #[test]
    fn diversified_senders_touch_two_contracts() {
        let txs = collect_n(
            StreamConfig {
                accounts: 32,
                contracts: 4,
                direct_fraction: 0.0,
                diversify: 0.5,
                ..StreamConfig::default()
            },
            600,
        );
        let mut per_sender: BTreeMap<Address, std::collections::BTreeSet<u32>> = BTreeMap::new();
        for (_, tx) in &txs {
            if let Some(c) = tx.kind.contract() {
                per_sender.entry(tx.sender).or_default().insert(c.0);
            }
        }
        assert!(
            per_sender.values().any(|s| s.len() > 1),
            "diversification never happened"
        );
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn zero_zipf_exponent_rejected() {
        TxStream::new(StreamConfig {
            zipf_s: 0.0,
            ..StreamConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "burst window")]
    fn empty_burst_window_rejected() {
        TxStream::new(StreamConfig {
            bursts: vec![BurstEpisode {
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(5),
                rate_multiplier: 2.0,
            }],
            ..StreamConfig::default()
        });
    }
}
