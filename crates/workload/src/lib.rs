//! Workload generation for the Sec. VI evaluation.
//!
//! The paper does not replay mainnet transactions; it registers synthetic
//! contracts and injects transactions that invoke them ("We do not use real
//! transactions in the Ethereum. Instead, we register multiple smart
//! contracts, and each of them records an unconditional transaction…",
//! Sec. VI-A). This crate reproduces every injection pattern the evaluation
//! uses, deterministically from a seed:
//!
//! * [`generator::Workload::uniform_contracts`] — Sec. VI-B1: `total` txs
//!   spread uniformly over `s` contract shards plus the MaxShard.
//! * [`generator::Workload::with_small_shards`] — Sec. VI-C: 9 shards of
//!   which 2–7 are *small* (1–9 txs each), total fixed at 200.
//! * [`generator::Workload::three_input`] — Sec. VI-B2 / Fig. 4(b): k-input
//!   transactions that force cross-shard validation in random sharding.
//! * [`generator::Workload::heavy_tail`] — a Zipf-distributed contract mix
//!   modelled on the paper's quoted mainnet statistics (top contracts own
//!   millions of transactions), used by examples and ablations.
//!
//! [`fees::FeeDistribution`] covers the fee models: constant, uniform,
//! binomial (the Sec. IV-D security assumption), exponential and Zipf.
//!
//! For million-user scale, [`stream::TxStream`] generates transactions
//! *lazily* as a seeded `(SimTime, Transaction)` iterator — Poisson
//! arrivals, Zipf-hot contract communities, burst episodes and an
//! adversarial spam-flood mode — without materializing a genesis-sized
//! vector. A bounded prefix collects into an ordinary [`Workload`] via
//! [`stream::TxStream::take_workload`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fees;
pub mod generator;
pub mod stream;
pub mod trace;

pub use fees::FeeDistribution;
pub use generator::{Workload, WorkloadKind};
pub use stream::{BurstEpisode, SpamFlood, StreamConfig, TxStream};
pub use trace::{mainnet_shaped, Trace, TraceRecord};
