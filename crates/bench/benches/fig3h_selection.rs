//! Criterion bench behind Fig. 3(h): best-reply convergence of the
//! selection game at the testbed scale (200 txs, up to 9 miners).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cshard_games::selection::{best_reply_equilibrium, greedy_assignment, SelectionConfig};
use std::hint::black_box;

fn fees(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 1 + (i * 17) % 97).collect()
}

fn initial(miners: usize, capacity: usize, t: usize) -> Vec<Vec<usize>> {
    (0..miners)
        .map(|m| (0..capacity).map(|k| (m * capacity + k) % t).collect())
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3h_selection");
    let f = fees(200);
    let cfg = SelectionConfig {
        capacity: 10,
        max_rounds: 10_000,
    };
    for miners in [3usize, 9] {
        group.bench_with_input(BenchmarkId::new("best_reply", miners), &miners, |b, &m| {
            let init = initial(m, 10, 200);
            b.iter(|| black_box(best_reply_equilibrium(&f, &init, &cfg).rounds));
        });
    }
    group.bench_function("greedy_reference", |b| {
        b.iter(|| black_box(greedy_assignment(&f, 9, 10).distinct_set_count()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
