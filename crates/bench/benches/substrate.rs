//! Substrate microbenchmarks: the primitives every experiment rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cshard_consensus::pow;
use cshard_crypto::sha256;
use cshard_ledger::{
    codec, merkle_root, Block, CallGraph, CompactClassifier, Mempool, SmartContract, State,
    Transaction,
};
use cshard_network::{GossipNet, LatencyModel};
use cshard_primitives::{Address, Amount, ContractId, Hash32, MinerId, ShardId, SimTime};
use cshard_workload::{FeeDistribution, Workload};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(sha256(d)));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let ids: Vec<Hash32> = (0..1000u64).map(|i| sha256(i.to_be_bytes())).collect();
    c.bench_function("merkle_root_1000", |b| {
        b.iter(|| black_box(merkle_root(&ids)));
    });
}

fn bench_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow_mine");
    group.sample_size(20);
    for bits in [8u32, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let mut stamp = 0u64;
            b.iter(|| {
                stamp += 1;
                let mut block = Block::assemble(
                    Hash32::ZERO,
                    1,
                    ShardId::new(0),
                    MinerId::new(0),
                    SimTime::from_millis(stamp),
                    bits,
                    vec![],
                );
                black_box(pow::mine(&mut block))
            });
        });
    }
    group.finish();
}

fn bench_state_apply(c: &mut Criterion) {
    c.bench_function("state_apply_1000_calls", |b| {
        b.iter_with_setup(
            || {
                let mut s = State::new();
                s.register_contract(SmartContract::unconditional(
                    ContractId::new(0),
                    Address::user(999),
                ));
                s.fund_user(Address::user(999), Amount::ZERO);
                let txs: Vec<Transaction> = (0..1000u64)
                    .map(|u| {
                        s.fund_user(Address::user(u), Amount::from_coins(10));
                        Transaction::call(
                            Address::user(u),
                            0,
                            ContractId::new(0),
                            Amount::from_raw(100),
                            Amount::from_raw(u % 50),
                        )
                    })
                    .collect();
                (s, txs)
            },
            |(mut s, txs)| {
                for tx in &txs {
                    s.apply_transaction(tx, Address::SYSTEM).unwrap();
                }
                black_box(s.total_balance())
            },
        );
    });
}

fn bench_mempool(c: &mut Criterion) {
    c.bench_function("mempool_greedy_select_10_of_10000", |b| {
        let mut m = Mempool::new();
        for u in 0..10_000u64 {
            m.insert(Transaction::call(
                Address::user(u),
                0,
                ContractId::new(0),
                Amount::from_raw(1),
                Amount::from_raw(u % 997),
            ));
        }
        b.iter(|| black_box(m.select_greedy(10)));
    });
}

fn bench_classifier(c: &mut Criterion) {
    // The paper's future-work item: classification cost per transaction.
    let w = Workload::uniform_contracts(5_000, 50, FeeDistribution::Uniform { lo: 1, hi: 100 }, 1);
    let mut group = c.benchmark_group("sender_classification");
    group.throughput(Throughput::Elements(w.transactions.len() as u64));
    group.bench_function("callgraph_sets", |b| {
        b.iter(|| {
            let mut g = CallGraph::new();
            g.observe_all(w.transactions.iter());
            let isolable = w
                .transactions
                .iter()
                .filter(|t| g.isolable_contract(t).is_some())
                .count();
            black_box(isolable)
        });
    });
    group.bench_function("compact_classifier", |b| {
        b.iter(|| {
            let mut g = CompactClassifier::new();
            g.observe_all(w.transactions.iter());
            let isolable = w
                .transactions
                .iter()
                .filter(|t| g.isolable_contract(t).is_some())
                .count();
            black_box(isolable)
        });
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let w = Workload::uniform_contracts(1_000, 10, FeeDistribution::Uniform { lo: 1, hi: 100 }, 2);
    let block = Block::assemble(
        Hash32::ZERO,
        1,
        ShardId::new(0),
        MinerId::new(0),
        SimTime::from_secs(60),
        0,
        w.transactions.clone(),
    );
    let bytes = codec::encode_block(&block);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_1000tx_block", |b| {
        b.iter(|| black_box(codec::encode_block(&block)));
    });
    group.bench_function("decode_1000tx_block", |b| {
        b.iter(|| black_box(codec::decode_block(&bytes).unwrap()));
    });
    group.finish();
}

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_broadcast");
    for nodes in [100usize, 1000] {
        let net = GossipNet::random(nodes, 3, LatencyModel::wide_area(), 7);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &net, |b, net| {
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                black_box(net.full_coverage_time(0, id))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_merkle,
    bench_pow,
    bench_state_apply,
    bench_mempool,
    bench_classifier,
    bench_codec,
    bench_gossip
);
criterion_main!(benches);
